"""Setuptools packaging for the repro-eie library.

The base install depends only on numpy; the optional JIT kernel tier is a
separate extra so the default environment stays dependency-light::

    pip install -e .            # numpy tier only
    pip install -e .[native]    # + numba JIT kernels (cycle-native engine)
    pip install -e .[dev]       # + test/benchmark tooling
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

HERE = Path(__file__).resolve().parent


def _version() -> str:
    """Read ``__version__`` from the package source without importing it."""
    text = (HERE / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if not match:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-eie",
    version=_version(),
    description=(
        "Reproduction of EIE: Efficient Inference Engine on Compressed "
        "Deep Neural Network (ISCA 2016)"
    ),
    long_description=(HERE / "README.md").read_text(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        # The optional JIT kernel tier (src/repro/kernels/).  Everything
        # works without it; installing it activates the cycle-native engine
        # and the kernel fast paths inside the compression pipeline.
        "native": ["numba>=0.57"],
        "dev": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": ["repro-eie = repro.cli:main"],
    },
)
