"""Setuptools shim for environments without PEP 517 build isolation/wheel."""

from setuptools import setup

setup()
