"""Tests for the convolution lowerings (1x1 M x V and Winograd F(2x2,3x3))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.convolution import (
    ConvWorkload,
    conv1x1_as_matvec,
    conv2d_via_im2col,
    direct_conv2d,
    im2col,
    winograd_conv2d_3x3,
    winograd_multiplication_savings,
)


@pytest.fixture
def feature_map(rng):
    return rng.normal(size=(3, 8, 10))


@pytest.fixture
def kernels_3x3(rng):
    return rng.normal(size=(4, 3, 3, 3))


class TestDirectConv:
    def test_known_small_case(self):
        feature = np.arange(16, dtype=float).reshape(1, 4, 4)
        kernel = np.zeros((1, 1, 2, 2))
        kernel[0, 0] = [[1.0, 0.0], [0.0, 1.0]]
        output = direct_conv2d(feature, kernel)
        assert output.shape == (1, 3, 3)
        assert output[0, 0, 0] == feature[0, 0, 0] + feature[0, 1, 1]

    def test_padding_and_stride(self, feature_map, kernels_3x3):
        output = direct_conv2d(feature_map, kernels_3x3, stride=2, padding=1)
        assert output.shape == (4, 4, 5)

    def test_channel_mismatch_rejected(self, feature_map, rng):
        with pytest.raises(ConfigurationError):
            direct_conv2d(feature_map, rng.normal(size=(2, 5, 3, 3)))

    def test_kernel_too_large_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            direct_conv2d(rng.normal(size=(1, 2, 2)), rng.normal(size=(1, 1, 3, 3)))


class TestIm2col:
    def test_matches_direct_convolution(self, feature_map, kernels_3x3):
        direct = direct_conv2d(feature_map, kernels_3x3, stride=1, padding=1)
        lowered = conv2d_via_im2col(feature_map, kernels_3x3, stride=1, padding=1)
        assert np.allclose(lowered, direct)

    def test_column_count(self, feature_map):
        columns = im2col(feature_map, 3, 3, stride=1, padding=0)
        assert columns.shape == (3 * 9, 6 * 8)

    def test_strided(self, feature_map, kernels_3x3):
        direct = direct_conv2d(feature_map, kernels_3x3, stride=2, padding=0)
        lowered = conv2d_via_im2col(feature_map, kernels_3x3, stride=2, padding=0)
        assert np.allclose(lowered, direct)


class TestConv1x1:
    def test_matches_direct_convolution(self, feature_map, rng):
        weight = rng.normal(size=(5, 3))
        as_matvec = conv1x1_as_matvec(feature_map, weight)
        direct = direct_conv2d(feature_map, weight[:, :, None, None])
        assert np.allclose(as_matvec, direct)

    def test_each_position_is_one_matvec(self, feature_map, rng):
        weight = rng.normal(size=(5, 3))
        output = conv1x1_as_matvec(feature_map, weight)
        row, col = 2, 7
        assert np.allclose(output[:, row, col], weight @ feature_map[:, row, col])

    def test_channel_mismatch_rejected(self, feature_map, rng):
        with pytest.raises(ConfigurationError):
            conv1x1_as_matvec(feature_map, rng.normal(size=(5, 4)))


class TestWinograd:
    def test_matches_direct_convolution(self, rng):
        feature = rng.normal(size=(3, 10, 8))
        kernels = rng.normal(size=(4, 3, 3, 3))
        winograd = winograd_conv2d_3x3(feature, kernels)
        direct = direct_conv2d(feature, kernels)
        assert np.allclose(winograd, direct, atol=1e-9)

    def test_single_channel_single_filter(self, rng):
        feature = rng.normal(size=(1, 6, 6))
        kernels = rng.normal(size=(1, 1, 3, 3))
        assert np.allclose(winograd_conv2d_3x3(feature, kernels), direct_conv2d(feature, kernels))

    def test_requires_3x3_kernels(self, rng):
        with pytest.raises(ConfigurationError):
            winograd_conv2d_3x3(rng.normal(size=(1, 6, 6)), rng.normal(size=(1, 1, 5, 5)))

    def test_requires_even_output_tiles(self, rng):
        with pytest.raises(ConfigurationError):
            winograd_conv2d_3x3(rng.normal(size=(1, 5, 6)), rng.normal(size=(1, 1, 3, 3)))

    def test_multiplication_savings_is_2_25(self):
        assert winograd_multiplication_savings() == pytest.approx(2.25)


class TestConvWorkload:
    def test_1x1_mapping(self):
        workload = ConvWorkload.for_conv1x1(out_channels=256, in_channels=64, height=14, width=14)
        assert workload.matrix_shape == (256, 64)
        assert workload.num_matvecs == 14 * 14

    def test_winograd_mapping(self):
        workload = ConvWorkload.for_winograd_3x3(out_channels=64, in_channels=64, height=14, width=14)
        # 6x6 tiles of 2x2 outputs, 16 M x V each.
        assert workload.num_matvecs == 16 * 36
        assert workload.matrix_shape == (64, 64)
