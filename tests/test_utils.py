"""Tests for repro.utils (deterministic RNG helpers and validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils import (
    derive_seed,
    make_rng,
    require_between,
    require_in,
    require_matrix,
    require_non_negative,
    require_positive,
    require_power_of_two,
    require_vector,
)


class TestMakeRng:
    def test_integer_seed_is_deterministic(self):
        assert make_rng(7).integers(0, 1000, 5).tolist() == make_rng(7).integers(0, 1000, 5).tolist()

    def test_different_seeds_differ(self):
        assert make_rng(1).integers(0, 10**9) != make_rng(2).integers(0, 10**9)

    def test_none_defaults_to_zero(self):
        assert make_rng(None).integers(0, 10**9) == make_rng(0).integers(0, 10**9)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert make_rng(generator) is generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "Alex-6", "weights") == derive_seed(42, "Alex-6", "weights")

    def test_labels_change_seed(self):
        assert derive_seed(42, "Alex-6") != derive_seed(42, "Alex-7")

    def test_base_changes_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_returns_non_negative_int(self):
        seed = derive_seed(0, "anything")
        assert isinstance(seed, int)
        assert seed >= 0


class TestValidation:
    def test_require_positive_accepts(self):
        assert require_positive("x", 3.5) == 3.5

    def test_require_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x"):
            require_positive("x", 0)

    def test_require_non_negative(self):
        assert require_non_negative("x", 0) == 0
        with pytest.raises(ConfigurationError):
            require_non_negative("x", -1)

    def test_require_between(self):
        assert require_between("d", 0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ConfigurationError):
            require_between("d", 1.5, 0.0, 1.0)

    def test_require_in(self):
        assert require_in("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ConfigurationError):
            require_in("mode", "c", ("a", "b"))

    def test_require_power_of_two(self):
        assert require_power_of_two("w", 64) == 64
        for bad in (0, -4, 3, 12):
            with pytest.raises(ConfigurationError):
                require_power_of_two("w", bad)

    def test_require_vector(self):
        vector = require_vector("v", [1.0, 2.0, 3.0])
        assert vector.shape == (3,)
        with pytest.raises(ConfigurationError):
            require_vector("v", np.zeros((2, 2)))

    def test_require_matrix(self):
        matrix = require_matrix("m", np.zeros((2, 3)))
        assert matrix.shape == (2, 3)
        with pytest.raises(ConfigurationError):
            require_matrix("m", np.zeros(3))
