"""Tests for the dense/sparse reference kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.reference import CSRMatrix, csr_matrix_vector, dense_matrix_vector, sparse_density


class TestDenseMatrixVector:
    def test_matches_numpy(self, rng):
        weight = rng.normal(size=(6, 9))
        activation = rng.normal(size=9)
        assert np.allclose(dense_matrix_vector(weight, activation), weight @ activation)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            dense_matrix_vector(rng.normal(size=(3, 4)), rng.normal(size=5))


class TestSparseDensity:
    def test_density_values(self):
        assert sparse_density(np.array([0.0, 1.0, 0.0, 2.0])) == pytest.approx(0.5)
        assert sparse_density(np.zeros(4)) == 0.0
        assert sparse_density(np.array([])) == 0.0


class TestCSRMatrix:
    def test_roundtrip(self, sparse_weights):
        csr = CSRMatrix.from_dense(sparse_weights)
        assert np.allclose(csr.to_dense(), sparse_weights)

    def test_nnz_and_density(self, sparse_weights):
        csr = CSRMatrix.from_dense(sparse_weights)
        assert csr.nnz == np.count_nonzero(sparse_weights)
        assert csr.density == pytest.approx(np.count_nonzero(sparse_weights) / sparse_weights.size)

    def test_matvec_matches_dense(self, sparse_weights, rng):
        csr = CSRMatrix.from_dense(sparse_weights)
        activation = rng.normal(size=sparse_weights.shape[1])
        assert np.allclose(csr_matrix_vector(csr, activation), sparse_weights @ activation)

    def test_matvec_with_sparse_activation(self, sparse_weights, dense_activations):
        csr = CSRMatrix.from_dense(sparse_weights)
        assert np.allclose(
            csr_matrix_vector(csr, dense_activations), sparse_weights @ dense_activations
        )

    def test_empty_matrix(self):
        csr = CSRMatrix.from_dense(np.zeros((3, 4)))
        assert csr.nnz == 0
        assert np.allclose(csr_matrix_vector(csr, np.ones(4)), np.zeros(3))

    def test_matvec_length_checked(self, sparse_weights):
        csr = CSRMatrix.from_dense(sparse_weights)
        with pytest.raises(ConfigurationError):
            csr_matrix_vector(csr, np.zeros(sparse_weights.shape[1] + 1))
