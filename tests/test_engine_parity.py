"""Engine-adapter parity: the seam must not change a single bit.

Three families of guarantees, mirroring the paper's simulator-versus-golden
validation flow:

* the ``"functional"`` and ``"cycle"`` adapters reproduce the legacy
  :class:`FunctionalEIE` / :class:`CycleAccurateEIE` results bit-for-bit
  (property-tested over random sparse layers and activations);
* a batched ``run`` equals a loop of single-vector runs, element-wise;
* the ``"rtl"`` adapter agrees with the functional values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.pipeline import CompressionConfig, DeepCompressor
from repro.core.config import EIEConfig
from repro.core.cycle_model import CycleAccurateEIE, CycleStats
from repro.core.functional import FunctionalEIE
from repro.engine import EngineRegistry

SETTINGS = settings(max_examples=15, deadline=None)


@st.composite
def layer_and_activations(draw):
    """A random compressed layer, its config, and a batch of activations."""
    rows = draw(st.integers(4, 48))
    cols = draw(st.integers(2, 32))
    num_pes = draw(st.sampled_from((1, 2, 4)))
    batch = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(rows, cols))
    weights[rng.random((rows, cols)) >= draw(st.floats(0.05, 0.5))] = 0.0
    weights[rng.integers(0, rows), rng.integers(0, cols)] = 1.0
    layer = DeepCompressor(CompressionConfig()).compress(weights, num_pes=num_pes)
    activations = rng.uniform(0.1, 1.0, size=(batch, cols))
    activations[rng.random((batch, cols)) >= 0.5] = 0.0
    return layer, EIEConfig(num_pes=num_pes), activations


def assert_cycle_stats_equal(ours: CycleStats, legacy: CycleStats) -> None:
    assert ours.total_cycles == legacy.total_cycles
    assert np.array_equal(ours.busy_cycles, legacy.busy_cycles)
    assert ours.broadcasts == legacy.broadcasts
    assert ours.entries_processed == legacy.entries_processed
    assert ours.padding_entries == legacy.padding_entries
    assert ours.theoretical_cycles == legacy.theoretical_cycles
    assert ours.num_pes == legacy.num_pes
    assert ours.fifo_depth == legacy.fifo_depth
    assert ours.clock_mhz == legacy.clock_mhz


class TestFunctionalParity:
    @SETTINGS
    @given(case=layer_and_activations())
    def test_engine_matches_legacy_bit_for_bit(self, case):
        layer, config, activations = case
        engine = EngineRegistry.create("functional", config)
        result = engine.run(engine.prepare(layer), activations)
        legacy = FunctionalEIE(layer, config)
        for row, ours in zip(activations, result.functional):
            reference = legacy.run(row)
            assert np.array_equal(ours.output, reference.output)
            assert np.array_equal(ours.pre_activation, reference.pre_activation)
            assert ours.broadcasts == reference.broadcasts
            assert ours.counters == reference.counters
            assert np.array_equal(ours.per_pe_entries, reference.per_pe_entries)

    def test_fixture_layer_matches(self, compressed_layer, small_config, dense_activations):
        engine = EngineRegistry.create("functional", small_config)
        result = engine.run(engine.prepare(compressed_layer), dense_activations)
        legacy = FunctionalEIE(compressed_layer, small_config).run(dense_activations)
        assert np.array_equal(result.output, legacy.output)


class TestCycleParity:
    @SETTINGS
    @given(case=layer_and_activations())
    def test_engine_matches_legacy_bit_for_bit(self, case):
        layer, config, activations = case
        engine = EngineRegistry.create("cycle", config)
        result = engine.run(engine.prepare(layer), activations)
        legacy = CycleAccurateEIE(config)
        for row, ours in zip(activations, result.cycles):
            assert_cycle_stats_equal(ours, legacy.simulate_layer(layer, row))

    def test_fixture_layer_matches(self, compressed_layer, small_config, dense_activations):
        engine = EngineRegistry.create("cycle", small_config)
        result = engine.run(engine.prepare(compressed_layer), dense_activations)
        assert_cycle_stats_equal(
            result.stats, CycleAccurateEIE(small_config).simulate_layer(
                compressed_layer, dense_activations
            )
        )


class TestBatchedEqualsLoop:
    @SETTINGS
    @given(case=layer_and_activations())
    def test_functional_batch(self, case):
        layer, config, activations = case
        engine = EngineRegistry.create("functional", config)
        prepared = engine.prepare(layer)
        batched = engine.run(prepared, activations)
        assert batched.batch_size == activations.shape[0]
        assert batched.batched
        for index, row in enumerate(activations):
            single = engine.run(prepared, row)
            assert not single.batched
            assert np.array_equal(batched.outputs[index], single.output)

    @SETTINGS
    @given(case=layer_and_activations())
    def test_cycle_batch(self, case):
        layer, config, activations = case
        engine = EngineRegistry.create("cycle", config)
        prepared = engine.prepare(layer)
        batched = engine.run(prepared, activations)
        assert len(batched.cycles) == activations.shape[0]
        for index, row in enumerate(activations):
            assert_cycle_stats_equal(batched.cycles[index], engine.run(prepared, row).stats)

    def test_all_zero_row_in_batch(self, compressed_layer, small_config):
        # A row with no non-zero activations broadcasts nothing: zero cycles.
        batch = np.zeros((2, compressed_layer.cols))
        batch[0, 3] = 0.5
        engine = EngineRegistry.create("cycle", small_config)
        result = engine.run(engine.prepare(compressed_layer), batch)
        assert result.cycles[0].total_cycles > 0
        assert result.cycles[1].total_cycles == 0
        functional = EngineRegistry.create("functional", small_config)
        outputs = functional.run(functional.prepare(compressed_layer), batch).outputs
        assert np.array_equal(outputs[1], np.zeros(compressed_layer.rows))


class TestNativeCycleParity:
    """``cycle-native`` must agree with ``cycle`` result-for-result.

    On a numba-free machine the native engine silently falls back to the
    numpy kernels, so this parity is trivially exact — the suite still runs
    to pin the fallback path.  On the CI leg with numba installed it pins
    the JIT recurrence kernels to the numpy reference bit-for-bit.
    """

    @SETTINGS
    @given(case=layer_and_activations())
    def test_native_engine_matches_cycle_engine(self, case):
        layer, config, activations = case
        native = EngineRegistry.create("cycle-native", config)
        numpy_engine = EngineRegistry.create("cycle", config)
        native_result = native.run(native.prepare(layer), activations)
        numpy_result = numpy_engine.run(numpy_engine.prepare(layer), activations)
        assert len(native_result.cycles) == len(numpy_result.cycles)
        for ours, reference in zip(native_result.cycles, numpy_result.cycles):
            assert_cycle_stats_equal(ours, reference)

    def test_fixture_layer_matches(self, compressed_layer, small_config,
                                   dense_activations):
        native = EngineRegistry.create("cycle-native", small_config)
        result = native.run(native.prepare(compressed_layer), dense_activations)
        assert_cycle_stats_equal(
            result.stats, CycleAccurateEIE(small_config).simulate_layer(
                compressed_layer, dense_activations
            )
        )


class TestRTLParity:
    def test_rtl_matches_functional_values(self, compressed_layer, small_config,
                                           dense_activations):
        rtl = EngineRegistry.create("rtl", small_config)
        functional = EngineRegistry.create("functional", small_config)
        batch = np.stack([dense_activations, dense_activations * 0.5])
        rtl_result = rtl.run(rtl.prepare(compressed_layer), batch)
        functional_result = functional.run(functional.prepare(compressed_layer), batch)
        assert np.allclose(rtl_result.outputs, functional_result.outputs)
        per_item = rtl_result.extra["rtl"]
        assert len(per_item) == 2
        assert len(per_item[0]) == small_config.num_pes
        # Every PE retired exactly its share of the processed entries.
        total_retired = sum(r.entries_retired for r in per_item[0])
        assert total_retired == functional_result.functional[0].total_entries_processed


class TestWorkloadPath:
    def test_workload_simulate_goes_through_engine(self, tiny_spec):
        from repro.workloads.generator import WorkloadBuilder

        builder = WorkloadBuilder()
        workload = builder.build(tiny_spec, 4)
        config = EIEConfig(num_pes=4)
        stats = workload.simulate(config)
        engine = EngineRegistry.create("cycle", config)
        assert_cycle_stats_equal(stats, engine.run(engine.prepare(workload)).stats)

    def test_workload_prepared_layer_rejects_activations(self, tiny_spec):
        from repro.errors import SimulationError
        from repro.workloads.generator import WorkloadBuilder

        workload = WorkloadBuilder().build(tiny_spec, 4)
        engine = EngineRegistry.create("cycle", EIEConfig(num_pes=4))
        prepared = engine.prepare(workload)
        with pytest.raises(SimulationError):
            engine.run(prepared, np.ones(tiny_spec.cols))
