"""Tests for fully-connected layers and non-linearities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import FullyConnectedLayer, identity, relu, sigmoid, tanh


class TestActivations:
    def test_relu_clamps_negative(self):
        assert relu(np.array([-1.0, 0.0, 2.0])).tolist() == [0.0, 0.0, 2.0]

    def test_sigmoid_range_and_symmetry(self):
        values = sigmoid(np.array([-50.0, 0.0, 50.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0, abs=1e-12)

    def test_sigmoid_stable_for_large_negative(self):
        assert np.isfinite(sigmoid(np.array([-1000.0]))).all()

    def test_tanh_matches_numpy(self):
        x = np.linspace(-3, 3, 11)
        assert np.allclose(tanh(x), np.tanh(x))

    def test_identity(self):
        x = np.array([1.0, -2.0])
        assert identity(x) is not None
        assert np.array_equal(identity(x), x)


class TestFullyConnectedLayer:
    def test_forward_matches_matmul(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(5, 7))
        inputs = rng.normal(size=7)
        layer = FullyConnectedLayer(weight=weight, activation="identity")
        assert np.allclose(layer.forward(inputs), weight @ inputs)

    def test_relu_applied(self):
        weight = np.array([[1.0], [-1.0]])
        layer = FullyConnectedLayer(weight=weight, activation="relu")
        assert layer.forward(np.array([2.0])).tolist() == [2.0, 0.0]

    def test_bias(self):
        weight = np.eye(3)
        bias = np.array([1.0, 2.0, 3.0])
        layer = FullyConnectedLayer(weight=weight, bias=bias, activation="identity")
        assert np.allclose(layer.forward(np.zeros(3)), bias)

    def test_bias_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            FullyConnectedLayer(weight=np.eye(3), bias=np.zeros(2))

    def test_unknown_activation_rejected(self):
        with pytest.raises(ConfigurationError):
            FullyConnectedLayer(weight=np.eye(2), activation="swish")

    def test_input_length_checked(self):
        layer = FullyConnectedLayer(weight=np.eye(3))
        with pytest.raises(ConfigurationError):
            layer.forward(np.zeros(4))

    def test_shape_properties(self):
        layer = FullyConnectedLayer(weight=np.zeros((4, 6)) + 1.0)
        assert layer.output_size == 4
        assert layer.input_size == 6
        assert layer.num_weights == 24
        assert layer.macs == 24
        assert layer.flops == 48

    def test_weight_density(self):
        weight = np.zeros((4, 4))
        weight[0, 0] = 1.0
        layer = FullyConnectedLayer(weight=weight)
        assert layer.weight_density == pytest.approx(1 / 16)

    def test_callable(self):
        layer = FullyConnectedLayer(weight=np.eye(2), activation="identity")
        assert np.allclose(layer(np.array([1.0, 2.0])), [1.0, 2.0])
