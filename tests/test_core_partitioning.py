"""Tests for the Section VII-A workload-partitioning strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partitioning import (
    STRATEGY_NAMES,
    compare_strategies,
    simulate_block_2d,
    simulate_column_partitioned,
    simulate_row_interleaved,
)
from repro.errors import SimulationError
from repro.workloads.synthetic import generate_activations, generate_sparse_pattern


@pytest.fixture(scope="module")
def pattern():
    return generate_sparse_pattern(256, 192, density=0.1, rng=11)


@pytest.fixture(scope="module")
def activations(pattern):
    return generate_activations(pattern.cols, density=0.35, rng=12)


class TestWorkConservation:
    def test_row_and_column_strategies_do_the_same_total_work(self, pattern, activations):
        # Without padding zeros all strategies perform one MAC per non-zero
        # weight in a touched column; row interleaving adds only padding.
        column = simulate_column_partitioned(pattern, activations, num_pes=8)
        block = simulate_block_2d(pattern, activations, num_pes=8)
        row = simulate_row_interleaved(pattern, activations, num_pes=8, max_run=10**6)
        assert column.total_work == block.total_work == row.total_work

    def test_row_interleaved_padding_only_adds_work(self, pattern, activations):
        padded = simulate_row_interleaved(pattern, activations, num_pes=8, max_run=15)
        unpadded = simulate_row_interleaved(pattern, activations, num_pes=8, max_run=10**6)
        assert padded.total_work >= unpadded.total_work


class TestQualitativeConclusions:
    """The reasons the paper gives for choosing row interleaving."""

    def test_column_partitioning_idles_pes_under_activation_sparsity(self, pattern):
        # With very sparse activations many column-owners have nothing to do.
        sparse_activations = generate_activations(pattern.cols, density=0.05, rng=3)
        column = simulate_column_partitioned(pattern, sparse_activations, num_pes=32)
        row = simulate_row_interleaved(pattern, sparse_activations, num_pes=32)
        assert column.idle_pes > 0
        assert row.idle_pes == 0

    def test_row_interleaving_needs_no_reduction(self, pattern, activations):
        row = simulate_row_interleaved(pattern, activations, num_pes=16)
        column = simulate_column_partitioned(pattern, activations, num_pes=16)
        assert row.reduction_words == 0
        assert column.reduction_words > 0
        assert column.communication_cycles > 0

    def test_column_partitioning_needs_no_broadcast(self, pattern, activations):
        column = simulate_column_partitioned(pattern, activations, num_pes=16)
        assert column.broadcast_words == 0

    def test_row_interleaving_has_best_load_balance(self, pattern, activations):
        results = compare_strategies(pattern, activations, num_pes=16)
        row = results["row-interleaved"]
        assert row.load_balance_efficiency >= results["column"].load_balance_efficiency
        assert row.load_balance_efficiency > 0.7

    def test_row_interleaving_fastest_on_this_workload(self, pattern, activations):
        results = compare_strategies(pattern, activations, num_pes=16)
        assert results["row-interleaved"].total_cycles <= results["column"].total_cycles

    def test_block_2d_shrinks_both_collectives(self, pattern, activations):
        row = simulate_row_interleaved(pattern, activations, num_pes=16)
        column = simulate_column_partitioned(pattern, activations, num_pes=16)
        block = simulate_block_2d(pattern, activations, num_pes=16)
        assert 0 < block.broadcast_words < row.broadcast_words
        assert 0 < block.reduction_words < column.reduction_words


class TestInterfaces:
    def test_compare_covers_all_strategies(self, pattern, activations):
        results = compare_strategies(pattern, activations, num_pes=4)
        assert set(results) == set(STRATEGY_NAMES)
        for name, result in results.items():
            assert result.strategy == name
            assert result.total_cycles >= result.compute_cycles
            assert 0.0 < result.load_balance_efficiency <= 1.0

    def test_single_pe_degenerates_gracefully(self, pattern, activations):
        for simulate in (simulate_column_partitioned, simulate_row_interleaved, simulate_block_2d):
            result = simulate(pattern, activations, 1)
            assert result.communication_cycles == 0 or result.strategy == "column"
            assert result.per_pe_work.shape == (1,)

    def test_explicit_grid(self, pattern, activations):
        result = simulate_block_2d(pattern, activations, num_pes=8, grid=(2, 4))
        assert result.per_pe_work.shape == (8,)
        with pytest.raises(SimulationError):
            simulate_block_2d(pattern, activations, num_pes=8, grid=(3, 3))

    def test_activation_length_checked(self, pattern):
        with pytest.raises(SimulationError):
            simulate_row_interleaved(pattern, np.zeros(pattern.cols + 1), num_pes=4)

    def test_invalid_pe_count_rejected(self, pattern, activations):
        with pytest.raises(SimulationError):
            simulate_column_partitioned(pattern, activations, num_pes=0)
