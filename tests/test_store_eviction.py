"""Tests for the artifact store's size-budgeted LRU eviction and pinning."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.store import ArtifactStore


def _fill(store, count, kind="shards", size=200, prefix="entry"):
    """Publish ``count`` JSON entries of roughly ``size`` bytes each."""
    keys = []
    for index in range(count):
        key = ArtifactStore.content_key({"test": prefix, "index": index})
        store.store_json(kind, key, {"index": index, "pad": "x" * size})
        keys.append(key)
    return keys


def _set_mtimes(store, keys, kind="shards"):
    """Give entries strictly increasing mtimes in ``keys`` order."""
    base = time.time() - 1000.0
    for offset, key in enumerate(keys):
        path = store._entry_path(kind, key)
        os.utime(path, (base + offset, base + offset))


class TestBudgetPolicy:
    def test_no_budget_means_no_eviction(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        _fill(store, 5)
        assert store.evict_to_budget() == 0
        assert len(store.entries("shards")) == 5

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ArtifactStore(tmp_path / "store", size_budget_bytes=0)

    def test_publish_evicts_down_to_budget(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        keys = _fill(store, 5)
        _set_mtimes(store, keys)
        entry_size = store._entry_path("shards", keys[0]).stat().st_size
        store.size_budget_bytes = 2 * entry_size + entry_size // 2
        removed = store.evict_to_budget()
        assert removed == 3
        assert store.size_bytes() <= store.size_budget_bytes
        # The two *newest* entries survive.
        survivors = {path.stem for path in store.entries("shards")}
        assert survivors == set(keys[-2:])

    def test_oldest_unused_goes_first_and_loads_refresh_recency(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        keys = _fill(store, 4)
        _set_mtimes(store, keys)
        # Touch the oldest entry through a load: it must now outlive newer,
        # never-read entries.
        assert store.load_json("shards", keys[0]) is not None
        entry_size = store._entry_path("shards", keys[0]).stat().st_size
        store.evict_to_budget(2 * entry_size + entry_size // 2)
        survivors = {path.stem for path in store.entries("shards")}
        assert keys[0] in survivors
        assert keys[1] not in survivors

    def test_eviction_counted_per_kind_and_in_lifetime(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        keys = _fill(store, 3)
        _set_mtimes(store, keys)
        removed = store.evict_to_budget(1)
        assert removed == 3
        stats = store.stats()
        assert stats["evictions"] == 3
        assert stats["by_kind"]["shards"]["evictions"] == 3
        assert stats["by_kind"]["layers"]["evictions"] == 0
        assert store.lifetime_counters()["evicted_entries"] == 3

    def test_evicted_entry_reloads_as_clean_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        keys = _fill(store, 2)
        _set_mtimes(store, keys)
        store.evict_to_budget(1)
        assert store.load_json("shards", keys[0]) is None
        assert store.load_json("shards", keys[1]) is None
        assert store.stats()["by_kind"]["shards"]["misses"] == 2
        # Eviction is not corruption: nothing was rejected on load.
        assert store.stats()["by_kind"]["shards"]["errors"] == 0

    def test_budget_spans_every_kind(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        shard_keys = _fill(store, 2, kind="shards", prefix="s")
        model_keys = _fill(store, 2, kind="models", prefix="m")
        _set_mtimes(store, shard_keys, kind="shards")
        base = time.time() - 500.0  # models are strictly newer than shards
        for offset, key in enumerate(model_keys):
            path = store._entry_path("models", key)
            os.utime(path, (base + offset, base + offset))
        entry_size = store._entry_path("models", model_keys[0]).stat().st_size
        store.evict_to_budget(2 * entry_size + entry_size // 2)
        assert len(store.entries("shards")) == 0
        assert len(store.entries("models")) == 2


class TestPinning:
    def test_pinned_entries_survive_eviction(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        keys = _fill(store, 4)
        _set_mtimes(store, keys)
        paths = [store._entry_path("shards", key) for key in keys[:3]]
        with store.pinned("test-pin", paths):
            removed = store.evict_to_budget(1)
            assert removed == 1  # only the unpinned entry went
            survivors = {path.stem for path in store.entries("shards")}
            assert survivors == set(keys[:3])
        # After unpin the rest are fair game.
        assert store.evict_to_budget(1) == 3

    def test_expired_pins_do_not_protect(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "store")
        keys = _fill(store, 2)
        _set_mtimes(store, keys)
        store.pin("stale-pin", [store._entry_path("shards", key) for key in keys])
        monkeypatch.setattr(ArtifactStore, "PIN_TTL_SECONDS", 0.0)
        assert store.pinned_paths() == set()
        assert store.evict_to_budget(1) == 2

    def test_pin_outside_root_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ConfigurationError, match="outside the store root"):
            store.pin("bad", ["/somewhere/else/entry.json"])

    def test_unpin_missing_manifest_is_fine(self, tmp_path):
        ArtifactStore(tmp_path / "store").unpin("never-existed")


class TestConcurrentWriters:
    def test_threaded_writers_under_budget_pressure(self, tmp_path):
        """Many writers on one root with a tight budget: no exceptions, the
        budget is enforced, and every surviving entry loads intact."""
        budget = 4000
        errors: list[Exception] = []
        barrier = threading.Barrier(4)

        def writer(worker: int) -> None:
            store = ArtifactStore(tmp_path / "store", size_budget_bytes=budget)
            try:
                barrier.wait()
                for index in range(12):
                    key = ArtifactStore.content_key(
                        {"worker": worker, "index": index}
                    )
                    store.store_json(
                        "shards", key, {"worker": worker, "pad": "y" * 300}
                    )
                    store.load_json("shards", key)  # hit or clean miss, never a crash
            except Exception as error:  # pragma: no cover - the assertion target
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        audit = ArtifactStore(tmp_path / "store", size_budget_bytes=budget)
        audit.evict_to_budget()
        assert audit.size_bytes() <= budget
        # Every survivor round-trips through the CRC check.
        for path in audit.entries("shards"):
            assert audit.load_json("shards", path.stem) is not None

    def test_concurrent_writers_cannot_evict_pinned_partials(self, tmp_path):
        """A pinned shard set survives a sibling pushing the store over
        budget — the scale-out invariant run_shard/merge_shards rely on."""
        store = ArtifactStore(tmp_path / "store")
        protected = _fill(store, 3, prefix="protected")
        _set_mtimes(store, protected)  # oldest → first eviction candidates
        paths = [store._entry_path("shards", key) for key in protected]
        entry_size = paths[0].stat().st_size
        with store.pinned("sweep", paths):
            writer = ArtifactStore(
                tmp_path / "store", size_budget_bytes=4 * entry_size
            )
            _fill(writer, 6, prefix="pressure")
            for key in protected:
                assert store.load_json("shards", key) is not None
