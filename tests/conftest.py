"""Shared fixtures for the test suite.

Everything uses small matrices and few PEs so the whole suite runs in
seconds; the full-size Table III layers are exercised only by the benchmark
harness in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import CompressionConfig, DeepCompressor
from repro.core import EIEConfig
from repro.workloads import LayerSpec


@pytest.fixture(autouse=True)
def _hermetic_artifact_store(tmp_path_factory, monkeypatch):
    """Point the default artifact store at a per-session temp directory.

    Keeps the suite hermetic: CLI and runner tests that use the implicit
    default store neither read a pre-warmed machine cache nor leave entries
    behind in the user's real ``~/.cache``.
    """
    root = tmp_path_factory.getbasetemp() / "repro-store"
    monkeypatch.setenv("REPRO_STORE_DIR", str(root))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> EIEConfig:
    """A 4-PE accelerator configuration used throughout the unit tests."""
    return EIEConfig(num_pes=4, fifo_depth=8)


@pytest.fixture
def sparse_weights(rng: np.random.Generator) -> np.ndarray:
    """A 48 x 40 weight matrix with ~15% density."""
    weights = rng.normal(0.0, 1.0, size=(48, 40))
    mask = rng.random((48, 40)) < 0.15
    weights = np.where(mask, weights, 0.0)
    weights[0, 0] = 0.5  # guarantee at least one non-zero
    return weights


@pytest.fixture
def compressed_layer(sparse_weights: np.ndarray, small_config: EIEConfig):
    """The sparse_weights fixture run through the Deep Compression pipeline."""
    compressor = DeepCompressor(CompressionConfig())
    return compressor.compress(sparse_weights, num_pes=small_config.num_pes, name="test-layer")


@pytest.fixture
def dense_activations(rng: np.random.Generator) -> np.ndarray:
    """A 40-long activation vector with ~40% non-zeros (post-ReLU style)."""
    values = rng.uniform(0.1, 1.0, size=40)
    mask = rng.random(40) < 0.4
    activations = np.where(mask, values, 0.0)
    activations[3] = 0.7  # guarantee at least one non-zero
    return activations


@pytest.fixture
def tiny_spec() -> LayerSpec:
    """A small benchmark-like layer spec for workload-builder tests."""
    return LayerSpec(
        name="tiny",
        input_size=96,
        output_size=64,
        weight_density=0.12,
        activation_density=0.4,
        description="unit-test layer",
        seed=7,
    )
