"""Tests for the engine registry, the engine protocol and the session caches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.pipeline import CompressionConfig
from repro.core.config import EIEConfig
from repro.engine import (
    CycleEngine,
    EngineRegistry,
    FunctionalEngine,
    NativeCycleEngine,
    RTLEngine,
    Session,
    SimulationEngine,
    register_engine,
)
from repro.errors import ConfigurationError, SimulationError


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert EngineRegistry.names() == ("cycle", "cycle-native", "functional", "rtl")
        assert EngineRegistry.get("functional") is FunctionalEngine
        assert EngineRegistry.get("cycle") is CycleEngine
        assert EngineRegistry.get("cycle-native") is NativeCycleEngine
        assert EngineRegistry.get("rtl") is RTLEngine

    def test_create_binds_config(self):
        config = EIEConfig(num_pes=8)
        engine = EngineRegistry.create("cycle", config)
        assert isinstance(engine, CycleEngine)
        assert engine.config is config

    def test_create_uses_default_config(self):
        engine = EngineRegistry.create("functional")
        assert engine.config == EIEConfig()

    def test_unknown_engine_rejected_with_known_names(self):
        with pytest.raises(ConfigurationError, match="cycle"):
            EngineRegistry.get("verilog")

    def test_custom_backend_round_trip(self):
        @register_engine
        class NullEngine(SimulationEngine):
            name = "null-test"

            def prepare(self, layer):
                raise NotImplementedError

            def run(self, prepared, activations=None):
                raise NotImplementedError

        try:
            assert EngineRegistry.get("null-test") is NullEngine
            assert "null-test" in EngineRegistry.names()
        finally:
            EngineRegistry.unregister("null-test")
        assert "null-test" not in EngineRegistry.names()

    def test_nameless_engine_rejected(self):
        class Anonymous(SimulationEngine):
            def prepare(self, layer):
                raise NotImplementedError

            def run(self, prepared, activations=None):
                raise NotImplementedError

        with pytest.raises(ConfigurationError):
            EngineRegistry.register(Anonymous)

    def test_conflicting_registration_rejected(self):
        class Impostor(SimulationEngine):
            name = "cycle"

            def prepare(self, layer):
                raise NotImplementedError

            def run(self, prepared, activations=None):
                raise NotImplementedError

        with pytest.raises(ConfigurationError):
            EngineRegistry.register(Impostor)
        assert EngineRegistry.get("cycle") is CycleEngine


class TestEngineProtocol:
    def test_prepared_layer_records_geometry(self, compressed_layer, small_config):
        prepared = CycleEngine(small_config).prepare(compressed_layer)
        assert prepared.engine == "cycle"
        assert prepared.num_pes == small_config.num_pes
        assert (prepared.rows, prepared.cols) == compressed_layer.shape
        assert prepared.source is compressed_layer

    def test_pe_mismatch_rejected(self, compressed_layer):
        with pytest.raises(SimulationError):
            CycleEngine(EIEConfig(num_pes=16)).prepare(compressed_layer)
        with pytest.raises(SimulationError):
            FunctionalEngine(EIEConfig(num_pes=16)).prepare(compressed_layer)

    def test_foreign_prepared_layer_rejected(self, compressed_layer, small_config):
        prepared = CycleEngine(small_config).prepare(compressed_layer)
        with pytest.raises(SimulationError):
            FunctionalEngine(small_config).run(prepared, np.ones(compressed_layer.cols))

    def test_incompatible_config_rejected_at_run(self, compressed_layer, small_config,
                                                 dense_activations):
        # The functional payload bakes in the full config (access counters
        # depend on the SRAM geometry), so a different width must re-prepare.
        prepared = FunctionalEngine(small_config).prepare(compressed_layer)
        other = FunctionalEngine(EIEConfig(num_pes=small_config.num_pes,
                                           spmat_sram_width_bits=32))
        with pytest.raises(SimulationError, match="incompatible configuration"):
            other.run(prepared, dense_activations)

    def test_cycle_prepared_layer_valid_across_fifo_depths(self, compressed_layer,
                                                           small_config, dense_activations):
        prepared = CycleEngine(small_config).prepare(compressed_layer)
        deep = CycleEngine(EIEConfig(num_pes=small_config.num_pes, fifo_depth=64))
        assert deep.run(prepared, dense_activations).stats.fifo_depth == 64

    def test_wrong_activation_length_rejected(self, compressed_layer, small_config):
        engine = FunctionalEngine(small_config)
        prepared = engine.prepare(compressed_layer)
        with pytest.raises(SimulationError):
            engine.run(prepared, np.ones(compressed_layer.cols + 1))
        with pytest.raises(SimulationError):
            engine.run(prepared, np.ones((2, compressed_layer.cols + 1)))

    def test_empty_batch_rejected(self, compressed_layer, small_config):
        engine = FunctionalEngine(small_config)
        prepared = engine.prepare(compressed_layer)
        with pytest.raises(SimulationError):
            engine.run(prepared, np.empty((0, compressed_layer.cols)))

    def test_cycle_result_has_no_output_values(self, compressed_layer, small_config,
                                               dense_activations):
        engine = CycleEngine(small_config)
        result = engine.run(engine.prepare(compressed_layer), dense_activations)
        assert result.outputs is None
        with pytest.raises(SimulationError):
            _ = result.output

    def test_functional_result_has_no_cycle_stats(self, compressed_layer, small_config,
                                                  dense_activations):
        engine = FunctionalEngine(small_config)
        result = engine.run(engine.prepare(compressed_layer), dense_activations)
        with pytest.raises(SimulationError):
            _ = result.stats


class TestSession:
    def test_compress_is_cached_by_content(self, sparse_weights, small_config):
        session = Session(config=small_config)
        first = session.compress(sparse_weights, num_pes=4)
        second = session.compress(sparse_weights.copy(), num_pes=4)
        assert second is first
        assert session.cache_info()["layers"] == {"entries": 1, "hits": 1}

    def test_compress_key_includes_pe_count_and_name(self, sparse_weights, small_config):
        session = Session(config=small_config)
        base = session.compress(sparse_weights, num_pes=4)
        assert session.compress(sparse_weights, num_pes=2) is not base
        assert session.compress(sparse_weights, num_pes=4, name="other") is not base
        assert session.cache_info()["layers"]["entries"] == 3

    def test_compress_key_includes_values(self, sparse_weights, small_config):
        session = Session(config=small_config)
        base = session.compress(sparse_weights, num_pes=4)
        changed = sparse_weights.copy()
        changed[0, 0] += 1.0
        assert session.compress(changed, num_pes=4) is not base

    def test_prepared_layer_shared_across_fifo_depths(self, sparse_weights):
        session = Session()
        layer = session.compress(sparse_weights, num_pes=4)
        shallow = session.prepare("cycle", layer, EIEConfig(num_pes=4, fifo_depth=1))
        deep = session.prepare("cycle", layer, EIEConfig(num_pes=4, fifo_depth=64))
        assert deep is shallow
        assert session.cache_info()["prepared"]["hits"] == 1

    def test_prepared_layer_not_shared_across_pe_counts(self, sparse_weights):
        session = Session()
        assert session.prepare(
            "cycle", session.compress(sparse_weights, num_pes=4), EIEConfig(num_pes=4)
        ) is not session.prepare(
            "cycle", session.compress(sparse_weights, num_pes=2), EIEConfig(num_pes=2)
        )

    def test_engine_instances_cached_per_config(self, small_config):
        session = Session(config=small_config)
        assert session.engine("cycle") is session.engine("cycle")
        assert session.engine("cycle") is not session.engine("cycle", EIEConfig(num_pes=8))

    def test_run_convenience_matches_manual_steps(self, sparse_weights, small_config,
                                                  dense_activations):
        session = Session(config=small_config)
        layer = session.compress(sparse_weights, num_pes=small_config.num_pes)
        via_run = session.run("functional", layer, dense_activations)
        engine = session.engine("functional")
        manual = engine.run(session.prepare("functional", layer), dense_activations)
        assert np.array_equal(via_run.outputs, manual.outputs)

    def test_clear_drops_everything(self, sparse_weights, small_config, dense_activations):
        session = Session(config=small_config)
        layer = session.compress(sparse_weights, num_pes=small_config.num_pes)
        session.run("cycle", layer, dense_activations)
        session.clear()
        info = session.cache_info()
        store_stats = info.pop("store")
        engine_stats = info.pop("engines")
        assert engine_stats == {"entries": 0, "hits": 0, "by_engine": {}}
        assert all(cache == {"entries": 0, "hits": 0} for cache in info.values())
        # No artifact store attached: its counters are permanently zero.
        from repro.store.artifacts import ArtifactStore

        assert store_stats == ArtifactStore.zero_stats()

    def test_compression_config_respected(self, rng):
        weights = rng.normal(size=(32, 40))
        session = Session(CompressionConfig(target_density=0.25))
        layer = session.compress(weights, num_pes=4)
        assert layer.weight_density == pytest.approx(0.25, abs=0.02)

    def test_layer_cache_evicts_least_recently_used(self, rng):
        session = Session(max_layers=2)
        matrices = [rng.normal(size=(8, 10)) for _ in range(3)]
        for weights in matrices:
            weights[0, 0] = 1.0
        first = session.compress(matrices[0], num_pes=2)
        session.compress(matrices[1], num_pes=2)
        session.compress(matrices[0], num_pes=2)   # refresh: [1] is now coldest
        session.compress(matrices[2], num_pes=2)   # evicts [1]
        assert session.cache_info()["layers"]["entries"] == 2
        assert session.compress(matrices[0], num_pes=2) is first      # survived
        assert session.compress(matrices[1], num_pes=2) is not None   # recompressed

    def test_prepared_cache_bounded(self, rng, small_config):
        session = Session(config=small_config, max_prepared=1)
        weights = rng.normal(size=(16, 12))
        weights[0, 0] = 1.0
        layer = session.compress(weights, num_pes=small_config.num_pes)
        session.prepare("cycle", layer)
        session.prepare("functional", layer)
        assert session.cache_info()["prepared"]["entries"] == 1

    def test_invalid_cache_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Session(max_layers=0)
