"""The native kernel tier: capability probe, kernel parity, seam plumbing.

Three layers of coverage, none of which require numba:

* the probe — ``available()`` / ``enabled()`` / ``use_native()`` semantics,
  the ``REPRO_NATIVE=0`` override, the ``disabled()`` context manager and the
  ``status()`` inventory the CLI renders;
* kernel-body parity — the interpreted bodies in ``native.PY_FUNCS`` are
  property-tested bit-for-bit against the library's numpy implementations
  (run with the tier forced off, so they really are the numpy paths).  On a
  numba-equipped machine a second ``jit`` leg runs the same properties
  through the compiled dispatchers;
* the seams — the ``cycle-native`` engine keys the session engine cache
  separately from ``cycle``, and the perf harness's regression gate only
  compares baseline entries whose recorded backend matches.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.cli import main as cli_main
from repro.compression.csc import InterleavedCSC
from repro.compression.quantization import (
    _nearest_centroid_indices,
    kmeans_codebook,
)
from repro.core.config import EIEConfig
from repro.core.cycle_model import simulate_layer_cycles, simulate_layer_cycles_batch
from repro.engine.session import Session
from repro.kernels import native
from repro.utils.perfbench import BenchResult, check_against_baseline, merge_results

SETTINGS = settings(max_examples=20, deadline=None)

PY = native.PY_FUNCS

#: The two kernel implementations under test: the interpreted bodies always,
#: the JIT dispatchers only where numba compiled them successfully.
IMPLS = [
    "python",
    pytest.param(
        "jit",
        marks=pytest.mark.skipif(
            not kernels.available(), reason="numba unavailable"
        ),
    ),
]


def impl_funcs(impl: str) -> dict:
    if impl == "python":
        return PY
    return {name: getattr(native, name) for name in PY}


# -- the capability probe -----------------------------------------------------


class TestProbe:
    def test_available_is_a_cached_bool(self):
        first = kernels.available()
        assert isinstance(first, bool)
        assert kernels.available() is first
        if not native.NUMBA_AVAILABLE:
            assert first is False
        kernels.reset_probe_cache()
        assert kernels.available() is first

    def test_env_gate_forces_fallback(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "0")
        assert not kernels.enabled()
        assert not kernels.use_native()
        monkeypatch.setenv(kernels.ENV_VAR, "1")
        assert kernels.enabled()
        assert kernels.use_native() == kernels.available()

    def test_disabled_context_restores_unset_variable(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        with kernels.disabled():
            assert os.environ[kernels.ENV_VAR] == "0"
            assert not kernels.use_native()
        assert kernels.ENV_VAR not in os.environ

    def test_disabled_context_restores_set_variable(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "1")
        with kernels.disabled():
            assert not kernels.enabled()
        assert os.environ[kernels.ENV_VAR] == "1"

    def test_status_inventory(self):
        status = kernels.status()
        assert set(status) == {"numba", "available", "enabled", "active", "kernels"}
        assert status["kernels"] == sorted(PY)
        assert status["active"] == (status["available"] and status["enabled"])

    def test_numba_presence_probe_matches_deep_probe(self):
        version = kernels.numba_version_installed()
        if version is None:
            # No distribution metadata -> the deep probe cannot succeed.
            assert not native.NUMBA_AVAILABLE
            assert not kernels.available()

    def test_selftest_passes_on_this_machine(self):
        # Interpreted bodies trivially agree with themselves; with numba the
        # compiled dispatchers must agree with the interpreted bodies.
        assert kernels._selftest(native)


# -- kernel-body parity -------------------------------------------------------


@st.composite
def dense_matrices(draw, max_rows=80, max_cols=16):
    kind = draw(st.sampled_from(["general", "single_row", "tall", "empty"]))
    if kind == "single_row":
        rows, cols = 1, draw(st.integers(1, max_cols))
    elif kind == "tall":
        rows, cols = draw(st.integers(40, 160)), draw(st.integers(1, 4))
    elif kind == "empty":
        rows, cols = draw(st.integers(1, 8)), draw(st.integers(1, 4))
    else:
        rows, cols = draw(st.integers(1, max_rows)), draw(st.integers(1, max_cols))
    density = 0.0 if kind == "empty" else draw(st.sampled_from([0.02, 0.1, 0.4, 1.0]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    matrix = rng.normal(size=(rows, cols))
    matrix[rng.random((rows, cols)) >= density] = 0.0
    return matrix


def _column_major_nonzeros(matrix):
    """(columns, rows, values) in the encode's column-major visit order."""
    cols_list, rows_list, vals_list = [], [], []
    for j in range(matrix.shape[1]):
        nonzero = np.nonzero(matrix[:, j])[0]
        cols_list.extend([j] * nonzero.size)
        rows_list.extend(nonzero.tolist())
        vals_list.extend(matrix[nonzero, j].tolist())
    return (
        np.asarray(cols_list, dtype=np.int64),
        np.asarray(rows_list, dtype=np.int64),
        np.asarray(vals_list, dtype=np.float64),
    )


class TestRecurrenceKernels:
    @pytest.mark.parametrize("impl", IMPLS)
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        num_pes=st.sampled_from([1, 2, 5, 16]),
        broadcasts=st.sampled_from([0, 1, 7, 8, 9, 60]),
        depth=st.sampled_from([1, 2, 8, 64]),
    )
    def test_single_total_matches_numpy_simulate(
        self, impl, seed, num_pes, broadcasts, depth
    ):
        rng = np.random.default_rng(seed)
        work = rng.poisson(1.5, size=(num_pes, broadcasts)).astype(np.int64)
        with kernels.disabled():
            expected = simulate_layer_cycles(work, fifo_depth=depth).total_cycles
        fn = impl_funcs(impl)["recurrence_total_single"]
        assert int(fn(np.ascontiguousarray(work.T), depth)) == expected

    @pytest.mark.parametrize("impl", IMPLS)
    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1), depth=st.sampled_from([1, 2, 8, 32]))
    def test_batch_totals_match_numpy_batch(self, impl, seed, depth):
        rng = np.random.default_rng(seed)
        num_pes = int(rng.integers(1, 9))
        works = [
            rng.poisson(1.5, size=(num_pes, int(rng.integers(0, 50)))).astype(np.int64)
            for _ in range(int(rng.integers(1, 8)))
        ]
        with kernels.disabled():
            expected = [
                stats.total_cycles
                for stats in simulate_layer_cycles_batch(works, fifo_depth=depth)
            ]
        lengths = np.asarray([w.shape[1] for w in works], dtype=np.int64)
        offsets = np.zeros(len(works) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        flat = np.empty((int(offsets[-1]), num_pes), dtype=np.int64)
        for i, work in enumerate(works):
            flat[offsets[i] : offsets[i + 1], :] = work.T
        fn = impl_funcs(impl)["recurrence_totals_batch"]
        assert fn(flat, offsets, depth).tolist() == expected


class TestCSCEncodeKernels:
    @pytest.mark.parametrize("impl", IMPLS)
    @SETTINGS
    @given(
        matrix=dense_matrices(),
        num_pes=st.sampled_from([1, 2, 4, 7]),
        max_run=st.sampled_from([1, 3, 15]),
    )
    def test_counts_and_streams_match_from_dense(self, impl, matrix, num_pes, max_run):
        num_cols = matrix.shape[1]
        columns, rows, values = _column_major_nonzeros(matrix)
        funcs = impl_funcs(impl)
        counts, nnz = funcs["interleaved_group_counts"](
            columns, rows, num_pes, num_cols, max_run
        )
        starts = np.zeros(counts.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        total = int(counts.sum())
        out_values = np.zeros(total, dtype=np.float64)
        out_runs = np.zeros(total, dtype=np.int64)
        funcs["interleaved_fill_streams"](
            columns, rows, values, starts.copy(), num_pes, num_cols, max_run,
            out_values, out_runs,
        )
        with kernels.disabled():
            expected = InterleavedCSC.from_dense(
                matrix, num_pes=num_pes, max_run=max_run
            )
        group_offsets = np.zeros(counts.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=group_offsets[1:])
        for pe in range(num_pes):
            pe_slice = expected.per_pe[pe]
            lo = group_offsets[pe * num_cols]
            hi = group_offsets[(pe + 1) * num_cols]
            assert np.array_equal(out_values[lo:hi], pe_slice.values)
            assert np.array_equal(out_runs[lo:hi], pe_slice.runs)
            per_col = counts[pe * num_cols : (pe + 1) * num_cols]
            col_ptr = np.zeros(num_cols + 1, dtype=np.int64)
            np.cumsum(per_col, out=col_ptr[1:])
            assert np.array_equal(col_ptr, pe_slice.col_ptr)
            assert int(nnz[pe * num_cols : (pe + 1) * num_cols].sum()) == int(
                np.count_nonzero(pe_slice.values)
            )

    @pytest.mark.parametrize("impl", IMPLS)
    @SETTINGS
    @given(matrix=dense_matrices(), num_pes=st.sampled_from([1, 3, 4]))
    def test_padding_tallies_match_per_column_recount(self, impl, matrix, num_pes):
        with kernels.disabled():
            interleaved = InterleavedCSC.from_dense(matrix, num_pes=num_pes)
        num_cols = matrix.shape[1]
        streams = [pe_slice.values for pe_slice in interleaved.per_pe]
        values_concat = (
            np.concatenate(streams) if streams else np.empty(0, dtype=np.float64)
        )
        col_ptrs = np.stack([pe_slice.col_ptr for pe_slice in interleaved.per_pe])
        entries = np.asarray([stream.shape[0] for stream in streams], dtype=np.int64)
        bases = np.zeros(num_pes, dtype=np.int64)
        np.cumsum(entries[:-1], out=bases[1:])
        out = np.zeros((num_pes, num_cols), dtype=np.int64)
        impl_funcs(impl)["padding_tallies"](values_concat, col_ptrs, bases, out)
        for pe, pe_slice in enumerate(interleaved.per_pe):
            for col in range(num_cols):
                segment = pe_slice.values[
                    pe_slice.col_ptr[col] : pe_slice.col_ptr[col + 1]
                ]
                assert out[pe, col] == int(np.count_nonzero(segment == 0.0))


class TestQuantizationKernels:
    @pytest.mark.parametrize("impl", IMPLS)
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        k=st.sampled_from([2, 4, 8, 16]),
        with_duplicates=st.booleans(),
    )
    def test_nearest_assign_matches_numpy_path(self, impl, seed, k, with_duplicates):
        rng = np.random.default_rng(seed)
        if with_duplicates:
            pool = np.array([-2.0, -1.0, -0.5, 0.0, 0.0, 0.5, 0.75, 1.0, 2.0])
            centroids = rng.choice(pool, size=k)
            values = rng.choice(pool, size=64) / rng.choice([1.0, 2.0, 4.0])
        else:
            centroids = rng.normal(size=k)
            values = rng.normal(size=150)
        with kernels.disabled():
            expected = _nearest_centroid_indices(values, centroids)
        order = np.argsort(centroids, kind="stable").astype(np.int64)
        out = np.empty(values.shape[0], dtype=np.int64)
        impl_funcs(impl)["nearest_assign"](
            np.ascontiguousarray(values, dtype=np.float64),
            centroids[order],
            order,
            out,
        )
        assert np.array_equal(out, expected)

    @pytest.mark.parametrize("impl", IMPLS)
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        k=st.sampled_from([2, 4, 8, 16]),
        quantized=st.booleans(),
    )
    def test_kmeans_sweeps_matches_numpy_loop(self, impl, seed, k, quantized):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=int(rng.integers(k + 1, 400))) * 0.3
        if quantized:
            # Heavy value multiplicities: the histogram path really matters.
            values = np.round(values, 1)
        unique_values = np.unique(values)
        if unique_values.size <= k:
            values = np.concatenate([values, rng.normal(size=k + 1)])
            unique_values = np.unique(values)
        with kernels.disabled():
            expected = kmeans_codebook(values, k, rng=seed)
        # Mirror kmeans_codebook's setup for the kernel call.
        unique_values, unique_counts = np.unique(values, return_counts=True)
        counts = unique_counts.astype(np.float64)
        centroids = np.sort(
            np.asarray(np.linspace(values.min(), values.max(), k), dtype=np.float64)
        )
        counts_prefix = np.concatenate([[0.0], np.cumsum(counts)])
        actual = impl_funcs(impl)["kmeans_sweeps"](
            unique_values, counts, unique_values * counts, counts_prefix,
            centroids.copy(), 30,
        )
        assert np.array_equal(actual, expected)


# -- the seams ----------------------------------------------------------------


class TestEngineSeam:
    def test_cycle_native_falls_back_bit_identically(
        self, compressed_layer, small_config, dense_activations
    ):
        from repro.engine import EngineRegistry

        with kernels.disabled():
            native_engine = EngineRegistry.create("cycle-native", small_config)
            numpy_engine = EngineRegistry.create("cycle", small_config)
            ours = native_engine.run(
                native_engine.prepare(compressed_layer), dense_activations
            )
            reference = numpy_engine.run(
                numpy_engine.prepare(compressed_layer), dense_activations
            )
        assert ours.stats.total_cycles == reference.stats.total_cycles
        assert np.array_equal(ours.stats.busy_cycles, reference.stats.busy_cycles)

    def test_session_cache_keys_engines_by_backend(self):
        session = Session()
        config = EIEConfig(num_pes=4)
        cycle = session.engine("cycle", config)
        native_engine = session.engine("cycle-native", config)
        assert cycle is not native_engine
        info = session.cache_info()["engines"]
        assert info["entries"] == 2
        assert info["by_engine"] == {"cycle": 1, "cycle-native": 1}
        # Same (name, config) -> cache hit, not a third entry.
        assert session.engine("cycle", config) is cycle
        assert session.cache_info()["engines"]["entries"] == 2

    def test_simulate_backend_arg_falls_back_without_numba(self):
        work = np.array([[2, 0, 3], [1, 1, 1]], dtype=np.int64)
        with kernels.disabled():
            numpy_stats = simulate_layer_cycles(work, fifo_depth=2)
            forced = simulate_layer_cycles(work, fifo_depth=2, backend="native")
        assert forced.total_cycles == numpy_stats.total_cycles


class TestPerfbenchBackendMatching:
    def _result(self, backend: str, seconds: float) -> BenchResult:
        return BenchResult(
            name="simulate", seconds=seconds, repeats=1, work_items=1000.0,
            unit="entries", backend=backend,
        )

    def test_cross_backend_baseline_is_not_compared(self, tmp_path):
        baseline = tmp_path / "bench.json"
        merge_results(baseline, [self._result("native", 0.001)], "quick")
        # 100x slower, but recorded on the other backend: no failure.
        failures = check_against_baseline(
            [self._result("numpy", 0.1)], baseline, "quick"
        )
        assert failures == []

    def test_same_backend_baseline_still_gates(self, tmp_path):
        baseline = tmp_path / "bench.json"
        merge_results(baseline, [self._result("numpy", 0.001)], "quick")
        failures = check_against_baseline(
            [self._result("numpy", 0.1)], baseline, "quick"
        )
        assert len(failures) == 1
        assert "slower than the baseline" in failures[0]

    def test_entry_metadata_records_environment(self, tmp_path):
        path = tmp_path / "bench.json"
        data = merge_results(path, [self._result("numpy", 0.01)], "quick")
        entry = data["entries"]["quick/simulate"]
        assert entry["backend"] == "numpy"
        assert entry["cpu_count"] >= 1
        assert "machine" in entry and "numba_version" in entry


class TestCLISurfaces:
    def test_version_reports_native_tier(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "native kernels" in out
        if kernels.numba_version_installed() is None:
            assert "not installed" in out

    def test_engine_list_reports_backend_status(self, capsys):
        assert cli_main(["engine", "list"]) == 0
        out = capsys.readouterr().out
        assert "cycle-native" in out
        assert "Native kernel tier" in out
        if not kernels.available():
            assert "fallback to numpy" in out

    def test_engine_list_reports_env_override(self, capsys, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "0")
        assert cli_main(["engine", "list"]) == 0
        assert "disabled" in capsys.readouterr().out
