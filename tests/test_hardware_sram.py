"""Tests for the SRAM read-energy model and counting banks."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.sram import SramBank, SramConfig, sram_read_energy_pj


class TestReadEnergy:
    def test_reference_point_matches_table1(self):
        # 32-bit read of a 32 KB SRAM is the Table I anchor: 5 pJ.
        assert sram_read_energy_pj(32, 32) == pytest.approx(5.0)

    def test_energy_grows_with_width(self):
        energies = [sram_read_energy_pj(width, 128) for width in (32, 64, 128, 256, 512)]
        assert all(b > a for a, b in zip(energies, energies[1:]))

    def test_energy_grows_with_capacity(self):
        assert sram_read_energy_pj(64, 128) > sram_read_energy_pj(64, 32)

    def test_width_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            sram_read_energy_pj(48, 128)

    def test_wider_read_cheaper_per_bit(self):
        per_bit_64 = sram_read_energy_pj(64, 128) / 64
        per_bit_512 = sram_read_energy_pj(512, 128) / 512
        assert per_bit_512 < per_bit_64


class TestSramConfig:
    def test_rows_and_capacity(self):
        config = SramConfig(capacity_kb=128, width_bits=64, name="spmat")
        assert config.capacity_bits == 128 * 1024 * 8
        assert config.num_rows == config.capacity_bits // 64

    def test_reads_for_entries_packing(self):
        # 64-bit rows hold eight 8-bit entries, as in the paper.
        config = SramConfig(capacity_kb=128, width_bits=64)
        assert config.reads_for_entries(0, 8) == 0
        assert config.reads_for_entries(1, 8) == 1
        assert config.reads_for_entries(8, 8) == 1
        assert config.reads_for_entries(9, 8) == 2
        assert config.reads_for_entries(64, 8) == 8

    def test_reads_for_entries_validation(self):
        config = SramConfig(capacity_kb=2, width_bits=16)
        with pytest.raises(ConfigurationError):
            config.reads_for_entries(4, 0)
        with pytest.raises(ConfigurationError):
            config.reads_for_entries(-1, 8)
        with pytest.raises(ConfigurationError):
            config.reads_for_entries(4, 32)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SramConfig(capacity_kb=0, width_bits=64)
        with pytest.raises(ConfigurationError):
            SramConfig(capacity_kb=8, width_bits=24)


class TestSramBank:
    def test_counts_and_energy(self):
        bank = SramBank(SramConfig(capacity_kb=32, width_bits=32))
        bank.read(10)
        bank.write(5)
        assert bank.reads == 10
        assert bank.writes == 5
        assert bank.access_count == 15
        assert bank.energy_pj == pytest.approx(15 * 5.0)

    def test_reset(self):
        bank = SramBank(SramConfig(capacity_kb=32, width_bits=32))
        bank.read(3)
        bank.reset()
        assert bank.access_count == 0

    def test_negative_counts_rejected(self):
        bank = SramBank(SramConfig(capacity_kb=32, width_bits=32))
        with pytest.raises(ConfigurationError):
            bank.read(-1)
        with pytest.raises(ConfigurationError):
            bank.write(-2)
