"""Tests for the node-pipelined whole-model path.

The pipeline must be a pure scheduling change: same per-node engine runs,
same row-wise propagation, same :class:`ModelRunResult` — bit for bit — as
``Session.run_model``, with submission order preserved and exceptions
delivered on the right future.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.errors import ServeError
from repro.models import build_model, synthetic_model_inputs
from repro.serve import ModelPipeline

CONFIG = EIEConfig(num_pes=8)


@pytest.fixture(scope="module")
def compressed_and_session():
    model = build_model("neuraltalk_lstm", scale=64)
    session = Session(config=CONFIG)
    return session.compress_model(model, CONFIG.num_pes), session


class TestParity:
    def test_result_bit_identical_to_run_model(self, compressed_and_session):
        compressed, session = compressed_and_session
        inputs = synthetic_model_inputs(compressed.model, batch=5, seed=3)
        reference = session.run_model("cycle", compressed, inputs, CONFIG)
        with ModelPipeline(compressed, engine="cycle", config=CONFIG) as pipeline:
            run = pipeline.submit(inputs).result(timeout=30)
        assert np.array_equal(run.outputs, reference.outputs)
        assert run.total_cycles == reference.total_cycles
        assert run.latency_s == reference.latency_s
        assert [node.name for node in run.nodes] == [
            node.name for node in reference.nodes
        ]
        for ours, theirs in zip(run.nodes, reference.nodes):
            assert ours.input_density == theirs.input_density
            assert [s.total_cycles for s in ours.result.cycles] == [
                s.total_cycles for s in theirs.result.cycles
            ]

    def test_many_in_flight_batches_complete_in_order(self, compressed_and_session):
        compressed, session = compressed_and_session
        batches = [
            synthetic_model_inputs(compressed.model, batch=2, seed=seed)
            for seed in range(6)
        ]
        references = [
            session.run_model("cycle", compressed, batch, CONFIG) for batch in batches
        ]
        with ModelPipeline(compressed, engine="cycle", config=CONFIG) as pipeline:
            futures = [pipeline.submit(batch) for batch in batches]
            runs = [future.result(timeout=30) for future in futures]
        for run, reference in zip(runs, references):
            assert np.array_equal(run.outputs, reference.outputs)
            assert run.total_cycles == reference.total_cycles

    def test_stage_count_matches_model(self, compressed_and_session):
        compressed, _ = compressed_and_session
        with ModelPipeline(compressed, engine="cycle", config=CONFIG) as pipeline:
            assert pipeline.num_stages == compressed.model.num_nodes


class TestErrors:
    def test_bad_input_width_fails_only_its_future(self, compressed_and_session):
        compressed, session = compressed_and_session
        good = synthetic_model_inputs(compressed.model, batch=2, seed=1)
        bad = np.ones((2, compressed.model.input_size + 3))
        with ModelPipeline(compressed, engine="cycle", config=CONFIG) as pipeline:
            bad_future = pipeline.submit(bad)
            good_future = pipeline.submit(good)
            with pytest.raises(Exception):
                bad_future.result(timeout=30)
            run = good_future.result(timeout=30)
        reference = session.run_model("cycle", compressed, good, CONFIG)
        assert np.array_equal(run.outputs, reference.outputs)

    def test_rejects_vector_and_empty_input(self, compressed_and_session):
        compressed, _ = compressed_and_session
        with ModelPipeline(compressed, engine="cycle", config=CONFIG) as pipeline:
            with pytest.raises(ServeError, match="matrix"):
                pipeline.submit(np.ones(compressed.model.input_size))
            with pytest.raises(ServeError, match="matrix"):
                pipeline.submit(np.empty((0, compressed.model.input_size)))

    def test_pe_mismatch_rejected(self, compressed_and_session):
        compressed, _ = compressed_and_session
        with pytest.raises(ServeError, match="PEs"):
            ModelPipeline(compressed, engine="cycle", config=EIEConfig(num_pes=16))

    def test_submit_after_close_rejected(self, compressed_and_session):
        compressed, _ = compressed_and_session
        pipeline = ModelPipeline(compressed, engine="cycle", config=CONFIG)
        pipeline.close()
        pipeline.close()  # idempotent
        with pytest.raises(ServeError, match="closed"):
            pipeline.submit(np.ones((1, compressed.model.input_size)))
