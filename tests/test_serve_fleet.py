"""Fleet fault tolerance: breakers, backoff, failover client, supervisor.

The state machines (:class:`CircuitBreaker`, :class:`RestartBackoff`) are
tested with a fake clock — every transition, no sleeps.  The failover
client is tested against scripted in-process stub workers so each failure
mode (refused connection, mid-request reset, overload, bad request) is
deterministic.  One integration test spawns real daemon subprocesses and
SIGKILLs one to prove the supervisor's restart path end to end.
"""

from __future__ import annotations

import asyncio
import json
import signal

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    FleetError,
    ServeError,
    ServerOverloadedError,
    WorkerCrashedError,
    is_retriable,
)
from repro.serve import (
    CircuitBreaker,
    FleetClient,
    FleetPolicy,
    FleetSupervisor,
    RestartBackoff,
)


class FakeClock:
    """Injectable monotonic clock: time moves only when told to."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(clock=FakeClock())
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert breaker.retry_after_s == 0.0

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # threshold not reached
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after_s == pytest.approx(1.0)

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # never 3 in a row

    def test_half_opens_after_reset_and_limits_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=2.0, half_open_probes=1, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(1.9)
        assert not breaker.allow()
        assert breaker.retry_after_s == pytest.approx(0.1)
        clock.advance(0.1)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the one admitted probe
        assert not breaker.allow()  # probe budget spent

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_for_a_full_reset(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_after_s=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # one probe failure is enough, not threshold
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after_s == pytest.approx(1.0)
        clock.advance(0.5)
        assert not breaker.allow()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_after_s=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(half_open_probes=0)


class TestRestartBackoff:
    def test_exponential_schedule_caps_at_max(self):
        backoff = RestartBackoff(
            initial_s=0.1, max_s=0.5, stable_after_s=10.0, budget=10, clock=FakeClock()
        )
        delays = [backoff.record_crash() for _ in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])
        assert backoff.restarts == 5

    def test_stable_uptime_resets_the_schedule(self):
        clock = FakeClock()
        backoff = RestartBackoff(
            initial_s=0.1, max_s=5.0, stable_after_s=10.0, budget=3, clock=clock
        )
        assert backoff.record_crash() == pytest.approx(0.1)
        assert backoff.record_crash() == pytest.approx(0.2)
        backoff.note_started()
        clock.advance(10.0)  # ran stably before the next death
        assert backoff.record_crash() == pytest.approx(0.1)
        assert backoff.streak == 1

    def test_unstable_uptime_does_not_reset(self):
        clock = FakeClock()
        backoff = RestartBackoff(
            initial_s=0.1, max_s=5.0, stable_after_s=10.0, budget=5, clock=clock
        )
        backoff.record_crash()
        backoff.note_started()
        clock.advance(9.9)  # died just before the stability bar
        assert backoff.record_crash() == pytest.approx(0.2)

    def test_budget_exhaustion_raises_typed_fleet_error(self):
        backoff = RestartBackoff(
            initial_s=0.1, max_s=1.0, stable_after_s=10.0, budget=3, clock=FakeClock()
        )
        for _ in range(3):
            backoff.record_crash()
        assert backoff.exhausted
        with pytest.raises(FleetError, match="crash-loop budget exhausted"):
            backoff.record_crash()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            RestartBackoff(initial_s=0.0)
        with pytest.raises(ConfigurationError):
            RestartBackoff(initial_s=1.0, max_s=0.5)
        with pytest.raises(ConfigurationError):
            RestartBackoff(budget=0)
        with pytest.raises(ConfigurationError):
            RestartBackoff(stable_after_s=-1.0)


class TestFleetPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FleetPolicy(heartbeat_s=0.0)
        with pytest.raises(ConfigurationError):
            FleetPolicy(max_missed_heartbeats=0)
        with pytest.raises(ConfigurationError):
            FleetPolicy(drain_timeout_s=0.0)


# -- failover client against scripted stub workers --------------------------------


def _reply(request_id, **payload) -> bytes:
    return json.dumps({"id": request_id, **payload}).encode() + b"\n"


def _ok_infer(request_id) -> bytes:
    return _reply(
        request_id,
        ok=True,
        model="m",
        outputs=[1.0, 2.0],
        batch_size=1,
        total_cycles=10,
        latency_s=1e-6,
        energy_j=1e-9,
        queue_wait_s=0.0,
        service_s=1e-6,
    )


def _models_reply(request_id) -> bytes:
    return _reply(request_id, ok=True, models={"m": {"input_size": 2}})


def _stub_worker(behavior, received):
    """An asyncio server speaking just enough protocol for the fleet client.

    ``behavior(message) -> bytes | "close"`` scripts the infer response;
    ``models`` is always answered (the connect-time reachability probe).
    """

    async def handler(reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = json.loads(line)
                received.append(message)
                if message.get("op") == "models":
                    writer.write(_models_reply(message["id"]))
                    await writer.drain()
                    continue
                action = behavior(message)
                if action == "close":
                    break
                writer.write(action)
                await writer.drain()
        finally:
            writer.close()

    return asyncio.start_server(handler, "127.0.0.1", 0)


async def _dead_endpoint() -> tuple[str, int]:
    """A (host, port) that refuses connections: bind, grab, close."""
    listener = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
    port = listener.sockets[0].getsockname()[1]
    listener.close()
    await listener.wait_closed()
    return ("127.0.0.1", port)


def _run_fleet_scenario(behaviors, scenario, **client_kwargs):
    """Boot one stub worker per behavior and drive ``scenario(client, logs)``.

    A behavior of ``None`` yields a dead endpoint (connection refused).
    """

    async def drive():
        listeners = []
        endpoints: list[tuple[str, int] | None] = []
        logs: list[list[dict]] = []
        for behavior in behaviors:
            received: list[dict] = []
            logs.append(received)
            if behavior is None:
                endpoints.append(await _dead_endpoint())
                continue
            listener = await _stub_worker(behavior, received)
            listeners.append(listener)
            endpoints.append(("127.0.0.1", listener.sockets[0].getsockname()[1]))
        client = FleetClient(endpoints, **client_kwargs)
        try:
            return await scenario(client, logs)
        finally:
            await client.close()
            for listener in listeners:
                listener.close()
                await listener.wait_closed()

    return asyncio.run(drive())


VECTOR = np.asarray([0.5, 0.25])


class TestFleetClientFailover:
    def test_fails_over_from_a_dead_worker(self):
        async def scenario(client, logs):
            response = await client.infer("m", VECTOR, timeout_s=5.0)
            assert response.output.tolist() == [1.0, 2.0]
            return client.stats()

        stats = _run_fleet_scenario(
            [None, lambda message: _ok_infer(message["id"])],
            scenario,
            connect_timeout_s=0.5,
        )
        assert stats["completed"] == 1
        assert stats["failovers"] >= 1

    def test_breaker_opens_after_repeated_transport_failures(self):
        async def scenario(client, logs):
            for _ in range(6):
                response = await client.infer("m", VECTOR, timeout_s=5.0)
                assert response.output.tolist() == [1.0, 2.0]
            return client.stats()

        stats = _run_fleet_scenario(
            [None, lambda message: _ok_infer(message["id"])],
            scenario,
            failure_threshold=3,
            reset_after_s=60.0,
            connect_timeout_s=0.5,
        )
        # Worker 0's breaker tripped after 3 connect failures; later requests
        # route straight to worker 1 without touching the dead slot.
        assert stats["breakers"][0] == CircuitBreaker.OPEN
        assert stats["completed"] == 6
        assert stats["failovers"] == 3

    def test_mid_request_reset_fails_over_and_completes(self):
        async def scenario(client, logs):
            response = await client.infer("m", VECTOR, timeout_s=5.0)
            assert response.output.tolist() == [1.0, 2.0]
            return client.stats()

        stats = _run_fleet_scenario(
            [lambda message: "close", lambda message: _ok_infer(message["id"])],
            scenario,
        )
        assert stats["completed"] == 1
        assert stats["failovers"] == 1

    def test_overload_fails_over_without_breaker_penalty(self):
        async def scenario(client, logs):
            response = await client.infer("m", VECTOR, timeout_s=5.0)
            assert response.output.tolist() == [1.0, 2.0]
            return client.stats()

        stats = _run_fleet_scenario(
            [
                lambda message: _reply(
                    message["id"], ok=False, error="overloaded",
                    message="queue full", retry_after_s=0.01,
                ),
                lambda message: _ok_infer(message["id"]),
            ],
            scenario,
        )
        assert stats["completed"] == 1
        assert stats["failovers"] == 1
        assert stats["breakers"] == [CircuitBreaker.CLOSED, CircuitBreaker.CLOSED]

    def test_bad_request_raises_immediately_without_failover(self):
        async def scenario(client, logs):
            with pytest.raises(ServeError, match="unknown model"):
                await client.infer("m", VECTOR, timeout_s=5.0)
            return client.stats(), [len(log) for log in logs]

        stats, counts = _run_fleet_scenario(
            [
                lambda message: _reply(
                    message["id"], ok=False, error="unknown_model",
                    message="unknown model 'm'",
                ),
                lambda message: _ok_infer(message["id"]),
            ],
            scenario,
        )
        assert stats["failovers"] == 0
        # Worker 1 never saw the infer: a bad request is not failed over.
        assert counts[1] == 0

    def test_whole_fleet_down_raises_typed_retriable_error(self):
        async def scenario(client, logs):
            with pytest.raises((WorkerCrashedError, CircuitOpenError)) as excinfo:
                await client.infer("m", VECTOR, timeout_s=2.0)
            assert is_retriable(excinfo.value)

        _run_fleet_scenario([None, None], scenario, connect_timeout_s=0.3)

    def test_endpoints_callable_is_reresolved(self):
        """A restarted worker on a new port is picked up transparently."""

        async def drive():
            received: list[dict] = []
            listener = await _stub_worker(
                lambda message: _ok_infer(message["id"]), received
            )
            port = listener.sockets[0].getsockname()[1]
            current = [("127.0.0.1", port)]
            client = FleetClient(lambda: current, timeout_s=5.0)
            try:
                await client.infer("m", VECTOR)
                # "Restart" the worker: new listener, new port, update the
                # endpoint source in place — as FleetSupervisor.endpoints does.
                listener.close()
                await listener.wait_closed()
                listener = await _stub_worker(
                    lambda message: _ok_infer(message["id"]), received
                )
                current[0] = (
                    "127.0.0.1", listener.sockets[0].getsockname()[1]
                )
                response = await client.infer("m", VECTOR)
                assert response.output.tolist() == [1.0, 2.0]
                return client.stats()
            finally:
                await client.close()
                listener.close()
                await listener.wait_closed()

        stats = asyncio.run(drive())
        assert stats["completed"] == 2

    def test_client_validation(self):
        with pytest.raises(ConfigurationError, match="at least one endpoint"):
            FleetClient([])
        with pytest.raises(ConfigurationError, match="timeout_s"):
            FleetClient([("127.0.0.1", 1)], timeout_s=0.0)
        with pytest.raises(ConfigurationError, match="route_window"):
            FleetClient([("127.0.0.1", 1)], route_window=0)

    def test_route_window_blocks_requests_on_one_worker(self):
        """route_window=N keeps N consecutive picks on the same worker so a
        closed-loop burst lands as one coalescible batch, then advances."""
        endpoints = [("h", 1), ("h", 2), ("h", 3)]
        client = FleetClient(endpoints, route_window=2)
        picks = [client._pick_worker(set()) for _ in range(8)]
        assert picks == [0, 0, 1, 1, 2, 2, 0, 0]

        # Default is pure round robin — unchanged behaviour.
        plain = FleetClient(endpoints)
        assert [plain._pick_worker(set()) for _ in range(4)] == [0, 1, 2, 0]

    def test_route_window_restarts_on_failover(self):
        """A failover mid-window moves to the next worker and gives it a
        full window of its own."""
        client = FleetClient([("h", 1), ("h", 2), ("h", 3)], route_window=2)
        assert client._pick_worker(set()) == 0  # one request into worker 0
        assert client._pick_worker({0}) == 1  # failover: 0 already tried
        # The fresh window on worker 1 completes before advancing.
        assert client._pick_worker(set()) == 1
        assert client._pick_worker(set()) == 2


# -- supervisor integration (real subprocess workers) ------------------------------


WORKER_ARGS = [
    "--models", "neuraltalk_lstm", "--scale", "64", "--pes", "4",
    "--engine", "functional",
]


class TestSupervisorIntegration:
    def test_kill_restart_and_serve_through_failover(self, tmp_path):
        """SIGKILL one worker of two: the fleet restarts it within budget and
        the failover client never surfaces an untyped error."""

        async def drive():
            policy = FleetPolicy(
                heartbeat_s=0.2, restart_initial_s=0.1, restart_max_s=0.5,
                stable_after_s=2.0,
            )
            supervisor = FleetSupervisor(
                WORKER_ARGS,
                workers=2,
                policy=policy,
                env={"REPRO_STORE_DIR": str(tmp_path / "store")},
            )
            async with supervisor:
                endpoints = supervisor.endpoints()
                assert all(endpoint is not None for endpoint in endpoints)
                client = await FleetClient.connect(
                    supervisor.endpoints, timeout_s=30.0
                )
                try:
                    from repro.models import build_model

                    size = build_model("neuraltalk_lstm", scale=64).input_size
                    vector = np.linspace(0.1, 1.0, size)
                    first = await client.infer("neuraltalk_lstm", vector)
                    killed_pid = supervisor.kill_worker(0, sig=signal.SIGKILL)
                    assert killed_pid is not None
                    # Keep serving while the slot restarts: every request must
                    # complete (failover) — typed errors only, and none expected
                    # with a healthy sibling.
                    for _ in range(10):
                        response = await client.infer("neuraltalk_lstm", vector)
                        assert np.array_equal(response.output, first.output)
                    await supervisor.wait_healthy(timeout_s=60.0)
                    stats = supervisor.stats()
                    assert stats["restarts"] == 1
                    assert stats["crash_loops"] == 0
                    states = [worker["state"] for worker in stats["workers"]]
                    assert states == ["healthy", "healthy"]
                    # The restarted worker answers on its (possibly new) port.
                    after = await client.infer("neuraltalk_lstm", vector)
                    assert np.array_equal(after.output, first.output)
                finally:
                    await client.close()

        asyncio.run(drive())


class TestErrorTaxonomy:
    """The typed fleet errors carry machine-readable routing fields."""

    def test_retriable_set_covers_the_fleet_errors(self):
        from repro.errors import (
            RETRIABLE_SERVE_ERRORS,
            DeadlineExceededError,
            ServeTimeoutError,
        )

        assert WorkerCrashedError("x") .__class__ in RETRIABLE_SERVE_ERRORS
        for error in (
            WorkerCrashedError("gone", worker_id=2, restarts=1, retry_after_s=0.5),
            CircuitOpenError("open", worker_id=0, retry_after_s=1.0),
            DeadlineExceededError("late", deadline_s=0.1),
            ServeTimeoutError("slow", timeout_s=1.0),
            ServerOverloadedError("full", retry_after_s=0.01),
        ):
            assert is_retriable(error), error

    def test_non_retriable_errors(self):
        from repro.errors import ServeError

        assert not is_retriable(ServeError("bad request"))
        assert not is_retriable(FleetError("supervisor bug"))
        assert not is_retriable(ValueError("not ours"))

    def test_machine_readable_fields(self):
        crashed = WorkerCrashedError(
            "gone", worker_id=3, restarts=2, retry_after_s=0.25
        )
        assert crashed.worker_id == 3
        assert crashed.restarts == 2
        assert crashed.retry_after_s == 0.25
        opened = CircuitOpenError("open", worker_id=1, retry_after_s=0.75)
        assert opened.worker_id == 1
        assert opened.retry_after_s == 0.75
        assert isinstance(opened, FleetError)
        assert isinstance(crashed, FleetError)
