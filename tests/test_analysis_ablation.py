"""Tests for the design-choice ablations (index width, codebook size, partitioning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ablation import (
    codebook_bits_ablation,
    index_width_ablation,
    partitioning_ablation,
)
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.generator import WorkloadBuilder


@pytest.fixture(scope="module")
def builder():
    return WorkloadBuilder()


@pytest.fixture(scope="module")
def spec():
    # Keep the paper densities but shrink the layer so the ablations are fast.
    return get_benchmark("Alex-7").scaled(16)


class TestIndexWidthAblation:
    @pytest.fixture(scope="class")
    def points(self, builder, spec):
        return index_width_ablation(spec, index_bits_options=(2, 3, 4, 6, 8), num_pes=8,
                                    builder=builder)

    def test_padding_decreases_with_wider_indices(self, points):
        paddings = [point.padding_zeros for point in points]
        assert all(b <= a for a, b in zip(paddings, paddings[1:]))

    def test_true_nonzeros_independent_of_index_width(self, points):
        assert len({point.true_nonzeros for point in points}) == 1

    def test_four_bits_is_a_good_storage_point(self, points):
        by_bits = {point.index_bits: point for point in points}
        # 4 bits stores the layer no worse than 2 bits (padding explosion) and
        # no worse than 8 bits (index overhead) for this density/PE count.
        assert by_bits[4].storage_bits <= by_bits[2].storage_bits
        assert by_bits[4].storage_bits <= by_bits[8].storage_bits

    def test_padding_fraction_and_bits_per_nonzero(self, points):
        for point in points:
            assert 0.0 <= point.padding_fraction < 1.0
            assert point.bits_per_nonzero > point.index_bits


class TestCodebookBitsAblation:
    @pytest.fixture(scope="class")
    def points(self):
        return codebook_bits_ablation(weight_bits_options=(2, 3, 4, 6), num_weights=5000)

    def test_error_decreases_with_more_bits(self, points):
        errors = [point.rms_error for point in points]
        assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))

    def test_four_bit_error_is_small(self, points):
        by_bits = {point.weight_bits: point for point in points}
        # The paper's 4-bit codebook loses no accuracy; the relative RMS error
        # on a Gaussian weight population is already ~10% of one standard
        # deviation and keeps halving with every extra bit.
        assert by_bits[4].relative_rms_error < 0.15
        assert by_bits[2].relative_rms_error > by_bits[4].relative_rms_error

    def test_entries_match_bits(self, points):
        for point in points:
            assert point.codebook_entries == 2**point.weight_bits

    def test_custom_weights_accepted(self, rng):
        weights = rng.normal(size=2000)
        points = codebook_bits_ablation(weights=weights, weight_bits_options=(4,))
        assert len(points) == 1 and points[0].rms_error > 0


class TestPartitioningAblation:
    def test_row_interleaving_is_preferred(self, builder, spec):
        results = partitioning_ablation(spec, num_pes=8, builder=builder)
        assert set(results) == {"column", "row-interleaved", "block-2d"}
        row = results["row-interleaved"]
        assert row.total_cycles <= results["column"].total_cycles
        assert row.load_balance_efficiency >= results["column"].load_balance_efficiency
