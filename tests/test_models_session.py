"""Tests for Session.compress_model / Session.run_model and the model cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EIEConfig
from repro.engine import Session
from repro.errors import ConfigurationError
from repro.models import INPUT, MatVecNode, ModelIR, build_model
from repro.nn.layers import ACTIVATIONS

NUM_PES = 4


def sparse_matrix(rng: np.random.Generator, rows: int, cols: int, density=0.2):
    weights = rng.normal(size=(rows, cols))
    weights[rng.random((rows, cols)) >= density] = 0.0
    weights[0, 0] = 0.5
    return weights


def two_layer_model(rng: np.random.Generator, name="m") -> ModelIR:
    nodes = [
        MatVecNode(name="fc0", weight=sparse_matrix(rng, 24, 32), activation="relu"),
        MatVecNode(name="fc1", weight=sparse_matrix(rng, 12, 24),
                   activation="identity", source="fc0"),
    ]
    return ModelIR(nodes, name=name)


@pytest.fixture
def session() -> Session:
    return Session(config=EIEConfig(num_pes=NUM_PES, fifo_depth=8))


class TestCompressModel:
    def test_one_layer_per_node_with_matching_shapes(self, rng, session):
        model = two_layer_model(rng)
        compressed = session.compress_model(model, NUM_PES)
        assert set(compressed.layers) == {"fc0", "fc1"}
        for node, layer in compressed:
            assert layer.shape == (node.rows, node.cols)
            assert layer.activation_name == node.activation
            assert layer.num_pes == NUM_PES

    def test_identical_weights_share_one_compressed_layer(self, rng, session):
        shared = sparse_matrix(rng, 16, 16)
        nodes = [
            MatVecNode(name="a", weight=shared, activation="relu"),
            MatVecNode(name="b", weight=shared, activation="relu", source="a"),
        ]
        compressed = session.compress_model(ModelIR(nodes, name="dup"), NUM_PES)
        assert compressed.layer("a") is compressed.layer("b")
        report = compressed.storage_report()
        assert report["num_unique_layers"] == 1
        assert report["per_node"][1]["shared"] is True
        # The aggregate counts the shared matrix once.
        assert report["dense_bits"] == 16 * 16 * 32
        # Same weights with a different non-linearity must not be shared.
        nodes = [
            MatVecNode(name="a", weight=shared, activation="relu"),
            MatVecNode(name="b", weight=shared, activation="identity", source="a"),
        ]
        compressed = session.compress_model(ModelIR(nodes, name="dup2"), NUM_PES)
        assert compressed.layer("a") is not compressed.layer("b")

    def test_rejects_non_model_arguments(self, rng, session):
        with pytest.raises(ConfigurationError, match="ModelIR"):
            session.compress_model(rng.normal(size=(4, 4)), NUM_PES)

    def test_storage_report_aggregates_node_bits(self, rng, session):
        model = two_layer_model(rng)
        compressed = session.compress_model(model, NUM_PES)
        report = compressed.storage_report()
        assert report["dense_bits"] == sum(
            layer.dense_weight_count * 32
            for layer in {id(l): l for l in compressed.layers.values()}.values()
        )
        assert report["compressed_bits"] == sum(
            entry["compressed_bits"] for entry in report["per_node"]
        )
        assert report["compression_ratio"] == pytest.approx(
            report["dense_bits"] / report["compressed_bits"]
        )


class TestModelCache:
    def test_hit_and_miss_counts_across_a_two_model_sweep(self, rng):
        session = Session(config=EIEConfig(num_pes=NUM_PES))
        model_a = two_layer_model(rng, name="a")
        model_b = two_layer_model(rng, name="b")

        first = session.compress_model(model_a, NUM_PES)
        info = session.cache_info()
        assert info["models"] == {"entries": 1, "hits": 0}
        assert info["layers"]["entries"] == 2  # fc0 + fc1 of model a

        session.compress_model(model_b, NUM_PES)
        info = session.cache_info()
        assert info["models"] == {"entries": 2, "hits": 0}
        assert info["layers"]["entries"] == 4

        # Revisiting model a is a pure model-cache hit: same object, no new
        # layer compression.
        assert session.compress_model(model_a, NUM_PES) is first
        info = session.cache_info()
        assert info["models"] == {"entries": 2, "hits": 1}
        assert info["layers"] == {"entries": 4, "hits": 0}

        # A different PE count is a miss (new interleaving).
        session.compress_model(model_a, 2)
        assert session.cache_info()["models"] == {"entries": 3, "hits": 1}

        # run_model goes through the same cache; the second run also hits the
        # prepared-layer cache for every node.
        inputs = rng.normal(size=(2, model_a.input_size))
        session.run_model("cycle", model_a, inputs)
        assert session.cache_info()["models"]["hits"] == 2
        prepared_entries = session.cache_info()["prepared"]["entries"]
        session.run_model("cycle", model_a, inputs)
        info = session.cache_info()
        assert info["models"]["hits"] == 3
        assert info["prepared"]["entries"] == prepared_entries
        assert info["prepared"]["hits"] >= model_a.num_nodes

    def test_clear_resets_model_cache_and_hits(self, rng, session):
        model = two_layer_model(rng)
        session.compress_model(model, NUM_PES)
        session.compress_model(model, NUM_PES)
        session.clear()
        info = session.cache_info()
        assert info["models"] == {"entries": 0, "hits": 0}
        assert info["layers"] == {"entries": 0, "hits": 0}

    def test_model_cache_is_bounded_lru(self, rng):
        session = Session(config=EIEConfig(num_pes=NUM_PES), max_models=1)
        model_a = two_layer_model(rng, name="a")
        model_b = two_layer_model(rng, name="b")
        first = session.compress_model(model_a, NUM_PES)
        session.compress_model(model_b, NUM_PES)
        assert session.cache_info()["models"]["entries"] == 1
        # model a was evicted: recompression returns a fresh object.
        assert session.compress_model(model_a, NUM_PES) is not first


class TestRunModel:
    def test_node_stats_bit_identical_to_layer_at_a_time(self, rng):
        """The acceptance contract: ``run_model`` on the cycle engine must
        reproduce, per node, exactly the layer-at-a-time ``Session.run`` path
        given the same measured activation sparsity."""
        config = EIEConfig(num_pes=NUM_PES, fifo_depth=8)
        session = Session(config=config)
        model = build_model("neuraltalk_lstm", scale=32)
        inputs = rng.normal(size=(3, model.input_size))
        run = session.run_model("cycle", model, inputs)

        manual = Session(config=config)
        compressed = manual.compress_model(model, NUM_PES)
        node_outputs: dict[str, np.ndarray] = {}
        for node in model:
            layer = compressed.layer(node.name)
            x = model.node_input(node, inputs, node_outputs)
            result = manual.run("cycle", layer, x, config)
            pre = x @ layer.dense_weights().T
            if node.bias is not None:
                pre = pre + node.bias
            node_outputs[node.name] = ACTIVATIONS[node.activation](pre)
            expected = result.cycles
            actual = run.node(node.name).result.cycles
            assert len(actual) == len(expected) == 3
            for got, want in zip(actual, expected):
                assert got.total_cycles == want.total_cycles
                assert got.broadcasts == want.broadcasts
                assert got.entries_processed == want.entries_processed
                assert got.padding_entries == want.padding_entries
                assert np.array_equal(got.busy_cycles, want.busy_cycles)

    def test_totals_are_sums_over_nodes_and_items(self, rng, session):
        model = two_layer_model(rng)
        inputs = rng.normal(size=(2, model.input_size))
        run = session.run_model("cycle", model, inputs)
        assert run.total_cycles == sum(node.total_cycles for node in run.nodes)
        assert run.latency_s == pytest.approx(
            sum(stats.time_s for node in run.nodes for stats in node.result.cycles)
        )
        assert run.per_item_latency_s.shape == (2,)
        assert run.per_item_latency_s.sum() == pytest.approx(run.latency_s)
        assert run.energy_j > 0.0
        summary = run.summary()
        assert summary["total_cycles"] == run.total_cycles
        assert len(summary["nodes"]) == 2

    def test_functional_outputs_match_propagated_reference(self, rng, session):
        model = two_layer_model(rng)
        inputs = np.abs(rng.normal(size=(2, model.input_size)))
        run = session.run_model("functional", model, inputs)
        for node in run.nodes:
            assert np.allclose(node.result.outputs, run.node_outputs[node.name])
        assert not run.has_timing
        with pytest.raises(Exception, match="timing"):
            run.latency_s

    def test_propagated_sparsity_is_engine_independent(self, rng, session):
        model = two_layer_model(rng)
        inputs = rng.normal(size=model.input_size)
        functional = session.run_model("functional", model, inputs)
        timing = session.run_model("cycle", model, inputs)
        for name in functional.node_outputs:
            assert np.array_equal(
                functional.node_outputs[name], timing.node_outputs[name]
            )
        for f_node, c_node in zip(functional.nodes, timing.nodes):
            assert f_node.input_density == c_node.input_density

    def test_accepts_precompressed_model_and_checks_pe_count(self, rng, session):
        model = two_layer_model(rng)
        compressed = session.compress_model(model, NUM_PES)
        inputs = rng.normal(size=model.input_size)
        run = session.run_model("cycle", compressed, inputs)
        assert run.batch_size == 1 and not run.batched
        with pytest.raises(ConfigurationError, match="PEs"):
            session.run_model("cycle", compressed, inputs, EIEConfig(num_pes=2))

    def test_rejects_bad_inputs(self, rng, session):
        model = two_layer_model(rng)
        with pytest.raises(ConfigurationError, match="input length"):
            session.run_model("cycle", model, np.zeros(model.input_size + 1))
        with pytest.raises(ConfigurationError, match="at least one"):
            session.run_model("cycle", model, np.zeros((0, model.input_size)))
        with pytest.raises(ConfigurationError, match="ModelIR"):
            session.run_model("cycle", "not-a-model", np.zeros(4))

    def test_lstm_slice_wiring_runs_on_engines(self, rng, session):
        """Nodes with input slices (split LSTM style) execute correctly."""
        nodes = [
            MatVecNode(name="w", weight=sparse_matrix(rng, 8, 10),
                       activation="identity", input_slice=(0, 10)),
            MatVecNode(name="u", weight=sparse_matrix(rng, 8, 6),
                       activation="identity", input_slice=(10, 16)),
        ]
        model = ModelIR(nodes, name="split")
        inputs = rng.normal(size=16)
        run = session.run_model("functional", model, inputs)
        assert np.allclose(
            run.node_outputs["w"][0],
            run.nodes[0].layer.dense_weights() @ inputs[:10],
        )
        assert np.allclose(
            run.node_outputs["u"][0],
            run.nodes[1].layer.dense_weights() @ inputs[10:],
        )
