"""Tests for the LSTM cell and its eight-MxV decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import sigmoid, tanh
from repro.nn.lstm import LSTM_GATE_NAMES, LSTMCell, LSTMState


@pytest.fixture
def cell(rng) -> LSTMCell:
    return LSTMCell.random(input_size=10, hidden_size=6, rng=rng)


class TestLSTMCellStructure:
    def test_eight_matrix_vector_products(self, cell):
        assert cell.num_matrix_vector_products == 8
        assert len(cell.matrices()) == 8

    def test_stacked_matrix_shape(self, cell):
        stacked = cell.stacked_matrix()
        assert stacked.shape == (4 * cell.hidden_size, cell.input_size + cell.hidden_size)

    def test_missing_gate_rejected(self, rng):
        weights = {gate: rng.normal(size=(4, 4)) for gate in LSTM_GATE_NAMES[:-1]}
        with pytest.raises(ConfigurationError):
            LSTMCell(input_weights=weights, recurrent_weights=weights)

    def test_inconsistent_sizes_rejected(self, rng):
        input_weights = {gate: rng.normal(size=(4, 5)) for gate in LSTM_GATE_NAMES}
        recurrent_weights = {gate: rng.normal(size=(4, 4)) for gate in LSTM_GATE_NAMES}
        recurrent_weights["forget"] = rng.normal(size=(4, 3))
        with pytest.raises(ConfigurationError):
            LSTMCell(input_weights=input_weights, recurrent_weights=recurrent_weights)


class TestLSTMCellComputation:
    def test_step_matches_reference_equations(self, cell, rng):
        inputs = rng.normal(size=cell.input_size)
        state = LSTMState(hidden=rng.normal(size=cell.hidden_size), cell=rng.normal(size=cell.hidden_size))
        new_state = cell.step(inputs, state)

        pre = {
            gate: cell.input_weights[gate] @ inputs + cell.recurrent_weights[gate] @ state.hidden
            for gate in LSTM_GATE_NAMES
        }
        expected_cell = sigmoid(pre["forget"]) * state.cell + sigmoid(pre["input"]) * tanh(pre["cell"])
        expected_hidden = sigmoid(pre["output"]) * tanh(expected_cell)
        assert np.allclose(new_state.cell, expected_cell)
        assert np.allclose(new_state.hidden, expected_hidden)

    def test_gate_preactivations_sum_both_products(self, cell, rng):
        inputs = rng.normal(size=cell.input_size)
        state = LSTMState.zeros(cell.hidden_size)
        pre = cell.gate_pre_activations(inputs, state)
        assert set(pre) == set(LSTM_GATE_NAMES)
        assert np.allclose(pre["input"], cell.input_weights["input"] @ inputs)

    def test_run_sequence_length(self, cell, rng):
        sequence = rng.normal(size=(5, cell.input_size))
        states = cell.run_sequence(sequence)
        assert len(states) == 5
        assert states[-1].hidden.shape == (cell.hidden_size,)

    def test_sequence_must_be_2d(self, cell, rng):
        with pytest.raises(ConfigurationError):
            cell.run_sequence(rng.normal(size=cell.input_size))

    def test_zero_state_factory(self):
        state = LSTMState.zeros(4)
        assert np.all(state.hidden == 0) and np.all(state.cell == 0)

    def test_hidden_bounded_by_one(self, cell, rng):
        # tanh(output) * sigmoid(...) is bounded in (-1, 1).
        state = LSTMState.zeros(cell.hidden_size)
        for _ in range(10):
            state = cell.step(rng.normal(size=cell.input_size), state)
        assert np.all(np.abs(state.hidden) < 1.0)

    def test_wrong_input_length_rejected(self, cell):
        with pytest.raises(ConfigurationError):
            cell.step(np.zeros(cell.input_size + 1), LSTMState.zeros(cell.hidden_size))
