"""Tests for the per-PE activation FIFO."""

from __future__ import annotations

import pytest

from repro.core.activation_queue import ActivationQueue, QueueEntry
from repro.errors import SimulationError


class TestActivationQueue:
    def test_fifo_order(self):
        queue = ActivationQueue(depth=4)
        for column in range(3):
            queue.push(QueueEntry(column=column, value=float(column)))
        assert [queue.pop().column for _ in range(3)] == [0, 1, 2]

    def test_peek_does_not_remove(self):
        queue = ActivationQueue(depth=2)
        queue.push(QueueEntry(column=7, value=1.0))
        assert queue.peek().column == 7
        assert len(queue) == 1

    def test_full_and_empty_flags(self):
        queue = ActivationQueue(depth=2)
        assert queue.is_empty and not queue.is_full
        queue.push(QueueEntry(0, 1.0))
        queue.push(QueueEntry(1, 1.0))
        assert queue.is_full and not queue.is_empty

    def test_push_to_full_queue_raises_and_counts_stall(self):
        queue = ActivationQueue(depth=1)
        queue.push(QueueEntry(0, 1.0))
        with pytest.raises(SimulationError):
            queue.push(QueueEntry(1, 1.0))
        assert queue.full_stalls == 1

    def test_try_push_reports_failure(self):
        queue = ActivationQueue(depth=1)
        assert queue.try_push(QueueEntry(0, 1.0))
        assert not queue.try_push(QueueEntry(1, 1.0))
        assert queue.full_stalls == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            ActivationQueue(depth=1).pop()

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            ActivationQueue(depth=1).peek()

    def test_statistics(self):
        queue = ActivationQueue(depth=4)
        for column in range(4):
            queue.push(QueueEntry(column, 1.0))
        for _ in range(2):
            queue.pop()
        assert queue.total_pushes == 4
        assert queue.total_pops == 2
        assert queue.occupancy == 2

    def test_clear(self):
        queue = ActivationQueue(depth=2)
        queue.push(QueueEntry(0, 1.0))
        queue.clear()
        assert queue.is_empty
        assert queue.total_pushes == 0

    def test_invalid_depth(self):
        with pytest.raises(SimulationError):
            ActivationQueue(depth=0)
