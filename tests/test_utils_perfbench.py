"""Tests for the perf-regression timing helpers."""

from __future__ import annotations

import json

import pytest

from repro.utils.perfbench import (
    BenchResult,
    check_against_baseline,
    merge_results,
    run_benchmark,
    time_call,
)


def _result(name: str, seconds: float, work: float = 100.0) -> BenchResult:
    return BenchResult(
        name=name, seconds=seconds, repeats=2, work_items=work, unit="items"
    )


class TestTimeCall:
    def test_counts_calls_and_returns_positive(self):
        calls = []
        seconds = time_call(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert seconds >= 0.0

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)


class TestBenchResult:
    def test_throughput_and_dict(self):
        result = _result("encode", seconds=0.5, work=200.0)
        assert result.throughput == pytest.approx(400.0)
        payload = result.to_dict()
        assert payload["name"] == "encode"
        assert payload["throughput"] == pytest.approx(400.0)

    def test_run_benchmark_wraps_timing(self):
        result = run_benchmark("noop", lambda: None, work_items=10, unit="items",
                               repeats=1, warmup=0)
        assert result.name == "noop" and result.work_items == 10.0


class TestMergeResults:
    def test_creates_and_merges_modes(self, tmp_path):
        path = tmp_path / "bench.json"
        merge_results(path, [_result("encode", 0.5)], mode="quick")
        merge_results(path, [_result("encode", 0.1)], mode="paper")
        data = json.loads(path.read_text())
        assert set(data["entries"]) == {"quick/encode", "paper/encode"}
        # Re-recording a mode replaces only that mode's entry.
        merge_results(path, [_result("encode", 0.25)], mode="quick")
        data = json.loads(path.read_text())
        assert data["entries"]["quick/encode"]["seconds"] == 0.25
        assert data["entries"]["paper/encode"]["seconds"] == 0.1

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": 99, "entries": {}}))
        with pytest.raises(ValueError):
            merge_results(path, [_result("x", 1.0)], mode="quick")


class TestCheckAgainstBaseline:
    def test_flags_regressions_beyond_threshold(self, tmp_path):
        path = tmp_path / "bench.json"
        merge_results(path, [_result("fast", 0.1), _result("slow", 0.1)], mode="quick")
        failures = check_against_baseline(
            # "fast" unchanged; "slow" now 3x slower than the baseline.
            [_result("fast", 0.1), _result("slow", 0.3)],
            path,
            mode="quick",
            max_slowdown=2.0,
        )
        assert len(failures) == 1
        assert "slow" in failures[0] and "3.00x" in failures[0]

    def test_missing_baseline_or_entry_passes(self, tmp_path):
        assert check_against_baseline(
            [_result("a", 1.0)], tmp_path / "absent.json", mode="quick"
        ) == []
        path = tmp_path / "bench.json"
        merge_results(path, [_result("a", 1.0)], mode="paper")
        assert check_against_baseline([_result("a", 5.0)], path, mode="quick") == []

    def test_rejects_bad_threshold(self, tmp_path):
        with pytest.raises(ValueError):
            check_against_baseline([], tmp_path / "x.json", mode="quick",
                                   max_slowdown=1.0)
