"""Tests for the Table I-V builders (Table IV/V on scaled layers where heavy)."""

from __future__ import annotations

import pytest

from repro.analysis.tables import table1_rows, table2_rows, table3_rows, table4_rows
from repro.core.config import EIEConfig
from repro.workloads.benchmarks import BENCHMARK_NAMES, scaled_benchmarks
from repro.workloads.generator import WorkloadBuilder


class TestTable1:
    def test_six_operations(self):
        rows = table1_rows()
        assert len(rows) == 6
        assert rows[0]["operation"] == "32 bit int ADD"

    def test_dram_row(self):
        dram = [row for row in table1_rows() if "DRAM" in row["operation"]][0]
        assert dram["energy_pj"] == pytest.approx(640.0)
        assert dram["relative_cost"] == pytest.approx(6400.0)


class TestTable2:
    def test_total_row_first(self):
        rows = table2_rows()
        assert rows[0]["name"] == "Total"
        assert rows[0]["power_mw"] == pytest.approx(9.157, rel=0.01)

    def test_percentages_sum_within_groups(self):
        rows = table2_rows()
        module_rows = [row for row in rows if row.get("group") == "module"]
        assert sum(row["area_pct"] for row in module_rows) == pytest.approx(100.0, abs=0.5)
        component_rows = [row for row in rows if row.get("group") == "component"]
        assert sum(row["power_pct"] for row in component_rows) == pytest.approx(100.0, abs=1.0)


class TestTable3:
    def test_nine_rows_in_order(self):
        rows = table3_rows()
        assert [row["layer"] for row in rows] == list(BENCHMARK_NAMES)

    def test_densities_populated(self):
        for row in table3_rows():
            assert 0 < row["weight_density"] <= 1
            assert 0 < row["activation_density"] <= 1


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        specs = scaled_benchmarks(64)
        subset = [specs["Alex-6"], specs["NT-Wd"]]
        return table4_rows(subset, builder=WorkloadBuilder(), eie_config=EIEConfig(num_pes=16))

    def test_row_structure(self, rows):
        # 3 platforms x 2 batches x 2 kernels + 2 EIE rows.
        assert len(rows) == 14
        platforms = {row["platform"] for row in rows}
        assert platforms == {"CPU", "GPU", "mGPU", "EIE"}

    def test_eie_actual_at_least_theoretical(self, rows):
        eie = {row["kernel"]: row for row in rows if row["platform"] == "EIE"}
        for benchmark in eie["actual"]:
            if benchmark in ("platform", "batch", "kernel"):
                continue
            assert eie["actual"][benchmark] >= eie["theoretical"][benchmark] - 1e-9

    def test_eie_fastest_at_batch_one(self, rows):
        eie_actual = [row for row in rows if row["platform"] == "EIE" and row["kernel"] == "actual"][0]
        cpu_dense = [
            row for row in rows
            if row["platform"] == "CPU" and row["batch"] == 1 and row["kernel"] == "dense"
        ][0]
        for benchmark in eie_actual:
            if benchmark in ("platform", "batch", "kernel"):
                continue
            assert eie_actual[benchmark] < cpu_dense[benchmark]
