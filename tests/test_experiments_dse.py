"""Tests for the dse_pareto design-space sweep and its Pareto finalization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentRegistry, run_experiment
from repro.experiments.dse_catalog import PARETO_AXES, _mark_pareto
from repro.shard import merge_shards, plan_shards, run_shard
from repro.store import ArtifactStore

SMALL = [
    ("params.rows", 96),
    ("params.cols", 96),
    ("grid.num_pes", [4, 16]),
    ("grid.density", [0.05, 0.2]),
    ("grid.width_bits", [64]),
    ("grid.scheme", ["none", "secded"]),
]


def _small_spec():
    return ExperimentRegistry.get("dse_pareto").spec.with_overrides(SMALL)


class TestRegistration:
    def test_registered_with_the_full_grid(self):
        experiment = ExperimentRegistry.get("dse_pareto")
        grid = experiment.spec.grid
        points = 1
        for axis in ("num_pes", "density", "width_bits", "scheme"):
            points *= len(grid[axis])
        assert points == 1008
        assert not experiment.uses_workloads


class TestParetoMarking:
    def test_dominated_points_are_unmarked(self):
        records = [
            {axis: 1.0 for axis in PARETO_AXES},           # dominates everything
            {axis: 2.0 for axis in PARETO_AXES},           # strictly dominated
            {PARETO_AXES[0]: 0.5, PARETO_AXES[1]: 3.0, PARETO_AXES[2]: 3.0},
        ]
        marked = _mark_pareto(None, records)
        assert [record["pareto"] for record in marked] == [True, False, True]

    def test_marking_preserves_order_and_records(self):
        records = [
            {PARETO_AXES[0]: float(i), PARETO_AXES[1]: float(-i),
             PARETO_AXES[2]: 1.0, "tag": i}
            for i in range(5)
        ]
        marked = _mark_pareto(None, records)
        assert [record["tag"] for record in marked] == [0, 1, 2, 3, 4]
        # A latency/energy trade: every point survives.
        assert all(record["pareto"] for record in marked)


class TestSmallSweep:
    def test_smoke_run_marks_a_nonempty_frontier(self):
        result = run_experiment(_small_spec())
        assert len(result.records) == 8
        frontier = [record for record in result.records if record["pareto"]]
        assert 1 <= len(frontier) <= 8
        record = result.records[0]
        assert record["cycles"] > 0 and record["total_energy_nj"] > 0
        assert record["storage_kib"] > 0
        # secded stores more bits than no ECC for the same point.
        by_scheme = {
            (r["num_pes"], r["density"], r["scheme"]): r["storage_kib"]
            for r in result.records
        }
        assert by_scheme[(4, 0.05, "secded")] > by_scheme[(4, 0.05, "none")]
        table = result.to_table()
        assert "Pareto frontier" in table

    def test_sharded_sweep_merges_byte_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        spec = _small_spec()
        plan = plan_shards(spec, shard_count=4)
        for shard_id in range(4):
            run_shard(plan, shard_id, store)
        merged = merge_shards(plan, store)
        serial = run_experiment(spec)
        assert merged.to_json() == serial.to_json()
        assert merged.to_table() == serial.to_table()

    def test_more_pes_never_slower(self):
        result = run_experiment(_small_spec())
        cycles = {
            (r["num_pes"], r["density"]): r["cycles"]
            for r in result.records
            if r["scheme"] == "none"
        }
        for density in (0.05, 0.2):
            assert cycles[(16, density)] <= cycles[(4, density)]
