"""Integration tests spanning compression, simulation and analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K
from repro.compression import CompressionConfig, DeepCompressor
from repro.core import CycleAccurateEIE, EIEAccelerator, EIEConfig, FunctionalEIE
from repro.hardware.area import chip_power_w
from repro.nn.layers import FullyConnectedLayer
from repro.nn.model import FeedForwardNetwork
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.models import build_alexnet_fc_network
from repro.workloads.synthetic import generate_activations, generate_dense_weights


class TestCompressedNetworkEndToEnd:
    """Compress a scaled AlexNet FC tail and run it on EIE end to end."""

    @pytest.fixture(scope="class")
    def network(self):
        return build_alexnet_fc_network(scale=96)

    @pytest.fixture(scope="class")
    def accelerator(self, network):
        config = EIEConfig(num_pes=8)
        accelerator = EIEAccelerator(config, CompressionConfig())
        for layer in network.layers:
            accelerator.compress_and_load(layer.weight, name=layer.name,
                                          activation_name=layer.activation)
        return accelerator

    def test_eie_matches_compressed_software_network(self, network, accelerator):
        rng = np.random.default_rng(11)
        inputs = np.maximum(rng.normal(size=network.input_size), 0.0)
        # The software reference runs the *decoded* compressed weights.
        reference = inputs
        for compressed, layer in zip(accelerator.layers, network.layers):
            pre = compressed.dense_weights() @ reference
            reference = np.maximum(pre, 0.0) if layer.activation == "relu" else pre
        results = accelerator.run(inputs)
        assert np.allclose(results[-1].output, reference)

    def test_relu_sparsity_reduces_downstream_work(self, accelerator, network):
        rng = np.random.default_rng(12)
        inputs = np.maximum(rng.normal(size=network.input_size), 0.0)
        results = accelerator.run(inputs)
        # The second layer must broadcast no more activations than the first
        # layer produced non-zero outputs.
        assert results[1].broadcasts == np.count_nonzero(results[0].output)

    def test_compression_accuracy_close_to_dense(self, network, accelerator):
        rng = np.random.default_rng(13)
        inputs = np.maximum(rng.normal(size=network.input_size), 0.0)
        dense_out = network.forward(inputs)
        eie_out = accelerator.run(inputs)[-1].output
        # Weight sharing introduces bounded error; outputs stay correlated.
        if np.linalg.norm(dense_out) > 0:
            correlation = float(
                np.dot(dense_out, eie_out)
                / (np.linalg.norm(dense_out) * np.linalg.norm(eie_out) + 1e-12)
            )
            assert correlation > 0.9


class TestBenchmarkPipelineSmallScale:
    """Run one scaled Table III benchmark through every model layer."""

    @pytest.fixture(scope="class")
    def spec(self):
        return get_benchmark("Alex-7").scaled(64)

    def test_functional_and_cycle_models_agree_on_work(self, spec):
        config = EIEConfig(num_pes=8)
        weights = generate_dense_weights(spec)
        layer = DeepCompressor().compress(weights, num_pes=config.num_pes, name=spec.name)
        activations = generate_activations(spec.cols, spec.activation_density, rng=3)
        functional = FunctionalEIE(layer, config).run(activations)
        cycle = CycleAccurateEIE(config).simulate_layer(layer, activations)
        assert functional.total_entries_processed == cycle.entries_processed
        assert functional.broadcasts == cycle.broadcasts

    def test_eie_beats_cpu_baseline_on_scaled_layer(self, spec):
        config = EIEConfig(num_pes=16)
        workload = WorkloadBuilder().build(spec, config.num_pes)
        eie_time = workload.simulate(config).time_s
        cpu_time = RooflinePlatform(CPU_CORE_I7_5930K).dense_time_s(spec, batch=1)
        assert cpu_time / eie_time > 10.0

    def test_energy_advantage_larger_than_speed_advantage(self, spec):
        config = EIEConfig(num_pes=16)
        workload = WorkloadBuilder().build(spec, config.num_pes)
        eie_time = workload.simulate(config).time_s
        cpu_time = RooflinePlatform(CPU_CORE_I7_5930K).dense_time_s(spec, batch=1)
        eie_energy = eie_time * chip_power_w(config.num_pes)
        cpu_energy = cpu_time * CPU_CORE_I7_5930K.power_w
        assert cpu_energy / eie_energy > cpu_time / eie_time


class TestMultiLayerNetworkConsistency:
    def test_network_output_independent_of_pe_count(self, rng):
        weights1 = rng.normal(size=(32, 48)) * (rng.random((32, 48)) < 0.2)
        weights2 = rng.normal(size=(16, 32)) * (rng.random((16, 32)) < 0.2)
        weights1[0, 0] = weights2[0, 0] = 0.3
        inputs = rng.uniform(0, 1, size=48)
        outputs = []
        for num_pes in (1, 2, 8):
            accelerator = EIEAccelerator(EIEConfig(num_pes=num_pes))
            accelerator.compress_and_load(weights1, name="fc1")
            accelerator.compress_and_load(weights2, name="fc2")
            outputs.append(accelerator.run(inputs)[-1].output)
        assert np.allclose(outputs[0], outputs[1])
        assert np.allclose(outputs[0], outputs[2])

    def test_software_network_and_accelerator_share_structure(self, rng):
        layers = [
            FullyConnectedLayer(weight=rng.normal(size=(24, 30)) * (rng.random((24, 30)) < 0.3),
                                activation="relu", name="a"),
            FullyConnectedLayer(weight=rng.normal(size=(10, 24)) * (rng.random((10, 24)) < 0.3),
                                activation="identity", name="b"),
        ]
        for layer in layers:
            layer.weight[0, 0] = 0.4
        network = FeedForwardNetwork(layers)
        accelerator = EIEAccelerator(EIEConfig(num_pes=4))
        for layer in network.layers:
            accelerator.compress_and_load(layer.weight, name=layer.name,
                                          activation_name=layer.activation)
        assert len(accelerator.layers) == len(network.layers)
        assert accelerator.layers[0].cols == network.input_size
        assert accelerator.layers[-1].rows == network.output_size
