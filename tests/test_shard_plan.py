"""Tests for shard planning: ranges, coordinates, keys and store presence."""

from __future__ import annotations

import pytest

from repro.errors import ShardCoordinateError
from repro.experiments import ExperimentRegistry
from repro.shard import ShardPlan, plan_shards, shard_ranges, validate_coords
from repro.store import ArtifactStore

SMALL = [
    ("scale", 64),
    ("workloads", ["Alex-7", "NT-We"]),
    ("grid.fifo_depth", [1, 4, 8]),
    ("config.num_pes", 16),
]


def _small_spec():
    return ExperimentRegistry.get("fig8_fifo_depth").spec.with_overrides(SMALL)


class TestShardRanges:
    def test_even_split(self):
        assert shard_ranges(9, 3) == [range(0, 3), range(3, 6), range(6, 9)]

    def test_uneven_split_puts_larger_chunks_first(self):
        ranges = shard_ranges(10, 4)
        assert [len(r) for r in ranges] == [3, 3, 2, 2]
        assert ranges[0].start == 0 and ranges[-1].stop == 10

    def test_more_shards_than_points_yields_empty_trailers(self):
        ranges = shard_ranges(2, 5)
        assert [len(r) for r in ranges] == [1, 1, 0, 0, 0]
        # Still tiles [0, count) exactly.
        assert [i for r in ranges for i in r] == [0, 1]

    def test_single_shard_is_the_whole_range(self):
        assert shard_ranges(7, 1) == [range(0, 7)]

    def test_partition_tiles_exactly_for_many_shapes(self):
        for count in (0, 1, 5, 16, 33):
            for shard_count in (1, 2, 3, 7, 40):
                ranges = shard_ranges(count, shard_count)
                assert len(ranges) == shard_count
                assert [i for r in ranges for i in r] == list(range(count))

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ShardCoordinateError):
            shard_ranges(4, 0)


class TestValidateCoords:
    def test_valid_coordinates_pass(self):
        validate_coords(0, 1)
        validate_coords(3, 4)

    @pytest.mark.parametrize("shard_id,shard_count", [(-1, 4), (4, 4), (0, 0), (0, -2)])
    def test_invalid_coordinates_raise_typed_error(self, shard_id, shard_count):
        with pytest.raises(ShardCoordinateError) as excinfo:
            validate_coords(shard_id, shard_count)
        assert excinfo.value.shard_count == shard_count


class TestShardPlan:
    def test_plan_matches_runner_point_order(self):
        plan = plan_shards(_small_spec(), shard_count=3)
        assert isinstance(plan, ShardPlan)
        # 3 fifo depths x 2 workloads = 6 points, split 2/2/2.
        assert len(plan.points) == 6
        assert [len(r) for r in plan.ranges] == [2, 2, 2]
        reassembled = [p for i in range(3) for p in plan.points_for(i)]
        assert reassembled == plan.points

    def test_keys_are_stable_and_coordinate_distinct(self):
        plan_a = plan_shards(_small_spec(), shard_count=3)
        plan_b = plan_shards(_small_spec(), shard_count=3)
        assert plan_a.keys() == plan_b.keys()
        assert len(set(plan_a.keys())) == 3
        # A different shard count addresses different artifacts entirely.
        other = plan_shards(_small_spec(), shard_count=2)
        assert not set(other.keys()) & set(plan_a.keys())

    def test_keys_track_the_spec(self):
        base = plan_shards(_small_spec(), shard_count=2)
        changed_spec = _small_spec().with_overrides([("config.num_pes", 8)])
        changed = plan_shards(changed_spec, shard_count=2)
        assert base.keys() != changed.keys()

    def test_points_for_validates_coordinates(self):
        plan = plan_shards(_small_spec(), shard_count=2)
        with pytest.raises(ShardCoordinateError):
            plan.points_for(2)
        with pytest.raises(ShardCoordinateError):
            plan.shard_key(-1)

    def test_plan_shards_rejects_bad_count(self):
        with pytest.raises(ShardCoordinateError):
            plan_shards(_small_spec(), shard_count=0)

    def test_describe_reports_store_presence(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=2)
        rows = plan.describe(store)
        assert [row["present"] for row in rows] == [False, False]
        assert rows[0]["start"] == 0 and rows[-1]["stop"] == len(plan.points)
        store.store_json("shards", plan.shard_key(1), {"stub": True})
        assert [row["present"] for row in plan.describe(store)] == [False, True]
