"""SECDED(72,64) codec properties: correct-1, detect-2, clean round trips.

The fault injector trusts this codec to decide every protected word's fate,
so the two hardware guarantees are checked as universal properties: *every*
single-bit flip (data or check, all 72 positions) decodes back to the
original word, and *every* distinct double flip is flagged
detected-uncorrectable rather than silently miscorrected.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.reliability.ecc import (
    ECC_CHECK_BITS,
    ECC_DATA_BITS,
    ECC_SCHEMES,
    SECDED_CHECK_POSITIONS,
    SECDED_DATA_POSITIONS,
    ecc_check_bits,
    secded_decode,
    secded_encode,
)

WORDS = st.integers(min_value=0, max_value=2**ECC_DATA_BITS - 1)
POSITIONS = st.integers(min_value=0, max_value=71)


class TestLayout:
    def test_positions_partition_the_codeword(self):
        assert ECC_DATA_BITS == 64
        assert len(SECDED_DATA_POSITIONS) == 64
        assert len(SECDED_CHECK_POSITIONS) == 8
        assert sorted(SECDED_DATA_POSITIONS + SECDED_CHECK_POSITIONS) == list(range(72))

    def test_check_bit_table(self):
        assert ECC_SCHEMES == ("none", "parity", "secded")
        assert [ecc_check_bits(scheme) for scheme in ECC_SCHEMES] == [0, 1, 8]
        assert ECC_CHECK_BITS["secded"] == 8
        with pytest.raises(ConfigurationError, match="hamming"):
            ecc_check_bits("hamming")


class TestCodec:
    @given(data=WORDS)
    def test_clean_round_trip(self, data):
        outcome = secded_decode(secded_encode(data))
        assert outcome.status == "clean"
        assert outcome.data == data

    @given(data=WORDS)
    def test_codeword_has_even_parity(self, data):
        assert bin(secded_encode(data)).count("1") % 2 == 0

    @given(data=WORDS, position=POSITIONS)
    def test_every_single_flip_decodes_to_the_original(self, data, position):
        outcome = secded_decode(secded_encode(data) ^ (1 << position))
        assert outcome.status == "corrected"
        assert outcome.data == data

    @given(data=WORDS, first=POSITIONS, second=POSITIONS)
    def test_every_double_flip_is_detected_uncorrectable(self, data, first, second):
        assume(first != second)
        codeword = secded_encode(data) ^ (1 << first) ^ (1 << second)
        assert secded_decode(codeword).status == "detected"

    def test_exhaustive_single_and_double_flips_on_one_word(self):
        data = 0x0123_4567_89AB_CDEF
        codeword = secded_encode(data)
        for first in range(72):
            outcome = secded_decode(codeword ^ (1 << first))
            assert outcome.status == "corrected" and outcome.data == data
            for second in range(first + 1, 72):
                double = codeword ^ (1 << first) ^ (1 << second)
                assert secded_decode(double).status == "detected"
