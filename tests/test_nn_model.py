"""Tests for the sequential feed-forward network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import FullyConnectedLayer
from repro.nn.model import FeedForwardNetwork


def _make_network(rng: np.random.Generator) -> FeedForwardNetwork:
    first = FullyConnectedLayer(weight=rng.normal(size=(6, 8)), activation="relu", name="l1")
    second = FullyConnectedLayer(weight=rng.normal(size=(4, 6)), activation="identity", name="l2")
    return FeedForwardNetwork([first, second], name="net")


class TestFeedForwardNetwork:
    def test_forward_matches_manual_composition(self, rng):
        network = _make_network(rng)
        inputs = rng.normal(size=8)
        expected = network.layers[1].forward(network.layers[0].forward(inputs))
        assert np.allclose(network.forward(inputs), expected)

    def test_trace_records_all_activations(self, rng):
        network = _make_network(rng)
        trace = network.trace(rng.normal(size=8))
        assert len(trace.activations) == 2
        assert trace.output.shape == (4,)
        assert np.allclose(trace.layer_input(1), trace.activations[0])
        assert np.allclose(trace.layer_input(0), trace.inputs)

    def test_activation_density_after_relu(self, rng):
        network = _make_network(rng)
        trace = network.trace(rng.normal(size=8))
        density = trace.activation_density(1)
        assert 0.0 <= density <= 1.0

    def test_size_properties(self, rng):
        network = _make_network(rng)
        assert network.input_size == 8
        assert network.output_size == 4
        assert network.num_parameters == 6 * 8 + 4 * 6
        assert network.total_flops == 2 * (6 * 8 + 4 * 6)
        assert len(network) == 2

    def test_mismatched_layers_rejected(self, rng):
        first = FullyConnectedLayer(weight=rng.normal(size=(6, 8)))
        second = FullyConnectedLayer(weight=rng.normal(size=(4, 5)))
        with pytest.raises(ConfigurationError):
            FeedForwardNetwork([first, second])

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigurationError):
            FeedForwardNetwork([])

    def test_wrong_input_length_rejected(self, rng):
        network = _make_network(rng)
        with pytest.raises(ConfigurationError):
            network.forward(np.zeros(9))

    def test_iteration(self, rng):
        network = _make_network(rng)
        assert [layer.name for layer in network] == ["l1", "l2"]
