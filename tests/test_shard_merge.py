"""Tests for shard execution and merge: byte-identity, recompute, errors."""

from __future__ import annotations

import json

import pytest

from repro.errors import ShardMergeError
from repro.experiments import ExperimentRegistry, ExperimentRunner
from repro.shard import merge_shards, plan_shards, run_shard
from repro.store import ArtifactStore

SMALL = [
    ("scale", 64),
    ("workloads", ["Alex-7", "NT-We"]),
    ("grid.fifo_depth", [1, 4, 8]),
    ("config.num_pes", 16),
]


def _small_spec():
    return ExperimentRegistry.get("fig8_fifo_depth").spec.with_overrides(SMALL)


def _run_all_shards(plan, store):
    for shard_id in range(plan.shard_count):
        run_shard(plan, shard_id, store)


class TestRunShard:
    def test_executes_and_publishes_partial(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=3)
        summary = run_shard(plan, 0, store)
        assert summary["cached"] is False
        assert summary["points"] == len(plan.ranges[0])
        payload = store.load_json("shards", summary["key"])
        assert payload["shard_id"] == 0 and payload["shard_count"] == 3
        assert len(payload["records"]) == summary["points"]

    def test_second_run_is_a_store_hit(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=3)
        run_shard(plan, 1, store)
        fresh = ArtifactStore(tmp_path / "store")
        summary = run_shard(plan, 1, fresh)
        assert summary["cached"] is True
        assert fresh.stats()["by_kind"]["shards"]["hits"] == 1
        assert fresh.stats()["by_kind"]["shards"]["stores"] == 0

    def test_force_recomputes_despite_cache(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=3)
        run_shard(plan, 1, store)
        summary = run_shard(plan, 1, store, force=True)
        assert summary["cached"] is False
        assert store.stats()["by_kind"]["shards"]["stores"] == 2


class TestMergeByteIdentity:
    def test_merged_result_identical_to_serial_run(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        spec = _small_spec()
        plan = plan_shards(spec, shard_count=3)
        _run_all_shards(plan, store)
        merged = merge_shards(plan, store)
        serial = ExperimentRunner().run(spec)
        assert merged.to_json() == serial.to_json()
        assert merged.to_table() == serial.to_table()

    def test_uneven_and_empty_shards_merge_identically(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        spec = _small_spec()
        # 6 points over 8 shards: two-point heads, empty trailers.
        plan = plan_shards(spec, shard_count=8)
        assert any(len(r) == 0 for r in plan.ranges)
        _run_all_shards(plan, store)
        merged = merge_shards(plan, store)
        assert merged.to_json() == ExperimentRunner().run(spec).to_json()

    def test_merge_from_cached_shards_recomputes_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=3)
        _run_all_shards(plan, store)
        fresh = ArtifactStore(tmp_path / "store")
        merge_shards(plan, fresh)
        shard_stats = fresh.stats()["by_kind"]["shards"]
        assert shard_stats["hits"] == 3
        assert shard_stats["misses"] == 0 and shard_stats["stores"] == 0


class TestMergeRepairsGaps:
    def test_missing_shard_recomputed_individually(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=3)
        run_shard(plan, 0, store)
        run_shard(plan, 2, store)  # shard 1 never ran
        fresh = ArtifactStore(tmp_path / "store")
        merged = merge_shards(plan, fresh)
        shard_stats = fresh.stats()["by_kind"]["shards"]
        assert shard_stats["stores"] == 1  # only the gap was recomputed
        assert shard_stats["misses"] == 1
        # Two partials served from the store + the reload of the repaired one.
        assert shard_stats["hits"] == 3
        assert merged.to_json() == ExperimentRunner().run(_small_spec()).to_json()

    def test_corrupted_partial_recomputed_that_shard_only(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=3)
        _run_all_shards(plan, store)
        # Flip a payload byte: the CRC check must reject the artifact.
        victim = store._entry_path("shards", plan.shard_key(1))
        text = victim.read_text()
        victim.write_text(text.replace('"records"', '"recordz"', 1))
        fresh = ArtifactStore(tmp_path / "store")
        merged = merge_shards(plan, fresh)
        shard_stats = fresh.stats()["by_kind"]["shards"]
        assert shard_stats["stores"] == 1  # only the corrupt shard re-ran
        assert shard_stats["errors"] == 1
        assert merged.to_json() == ExperimentRunner().run(_small_spec()).to_json()

    def test_no_recompute_raises_typed_error_listing_missing_ids(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=3)
        run_shard(plan, 0, store)
        with pytest.raises(ShardMergeError) as excinfo:
            merge_shards(plan, store, recompute=False)
        assert excinfo.value.missing == (1, 2)

    def test_conflicting_payload_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=3)
        _run_all_shards(plan, store)
        # Rewrite shard 2 with a point range that does not tile the plan —
        # valid JSON and CRC, but logically overlapping shard 1's chunk.
        key = plan.shard_key(2)
        payload = store.load_json("shards", key)
        payload["start"] -= 1
        store.store_json("shards", key, payload)
        with pytest.raises(ShardMergeError) as excinfo:
            merge_shards(plan, store)
        assert excinfo.value.overlapping == (2,)

    def test_stale_format_rejected_not_silently_merged(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=2)
        _run_all_shards(plan, store)
        key = plan.shard_key(0)
        payload = store.load_json("shards", key)
        payload["shard_format"] = 999
        store.store_json("shards", key, payload)
        with pytest.raises(ShardMergeError):
            merge_shards(plan, store)


class TestMergeJson:
    def test_merged_json_has_no_volatile_metadata(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = plan_shards(_small_spec(), shard_count=2)
        _run_all_shards(plan, store)
        document = json.loads(merge_shards(plan, store).to_json())
        assert "duration_s" not in document["metadata"]
        assert "jobs" not in document["metadata"]
        assert document["metadata"]["points"] == len(plan.points)
