"""Tests for the cycle-level performance model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EIEConfig
from repro.core.cycle_model import CycleAccurateEIE, simulate_layer_cycles
from repro.errors import SimulationError


class TestSimulateLayerCycles:
    def test_single_pe_cycles_equal_total_work_plus_pipeline_fill(self):
        work = np.array([[3, 2, 5, 1]])
        stats = simulate_layer_cycles(work, fifo_depth=8)
        # One PE can never go faster than its total work; the broadcast of the
        # first column adds at most one cycle of fill.
        assert work.sum() <= stats.total_cycles <= work.sum() + 1
        assert stats.load_balance_efficiency > 0.9

    def test_balanced_work_is_nearly_perfect(self):
        work = np.full((4, 50), 3)
        stats = simulate_layer_cycles(work, fifo_depth=8)
        assert stats.load_balance_efficiency > 0.95
        assert stats.actual_over_theoretical < 1.1

    def test_total_cycles_bounded_below_by_critical_pe(self):
        rng = np.random.default_rng(0)
        work = rng.integers(0, 6, size=(8, 100))
        stats = simulate_layer_cycles(work, fifo_depth=8)
        assert stats.total_cycles >= work.sum(axis=1).max()
        assert stats.total_cycles >= stats.broadcasts

    def test_deeper_fifo_never_hurts(self):
        rng = np.random.default_rng(1)
        work = rng.poisson(2.0, size=(16, 400))
        cycles = [
            simulate_layer_cycles(work, fifo_depth=depth).total_cycles
            for depth in (1, 2, 4, 8, 32, 256)
        ]
        assert all(later <= earlier for earlier, later in zip(cycles, cycles[1:]))

    def test_fifo_one_suffers_from_load_imbalance(self):
        rng = np.random.default_rng(2)
        work = rng.poisson(2.0, size=(32, 500))
        shallow = simulate_layer_cycles(work, fifo_depth=1)
        deep = simulate_layer_cycles(work, fifo_depth=64)
        assert shallow.load_balance_efficiency < deep.load_balance_efficiency
        assert deep.load_balance_efficiency > 0.85

    def test_theoretical_cycles_and_ratio(self):
        work = np.array([[2, 2], [4, 0]])
        stats = simulate_layer_cycles(work, fifo_depth=8)
        assert stats.theoretical_cycles == pytest.approx(4.0)
        assert stats.actual_over_theoretical >= 1.0

    def test_padding_accounting(self):
        work = np.array([[2, 3], [1, 1]])
        padding = np.array([[1, 0], [0, 1]])
        stats = simulate_layer_cycles(work, fifo_depth=8, padding_work=padding)
        assert stats.padding_entries == 2
        assert stats.real_work_fraction == pytest.approx(1 - 2 / 7)

    def test_empty_workload(self):
        stats = simulate_layer_cycles(np.zeros((4, 0), dtype=int), fifo_depth=8)
        assert stats.total_cycles == 0
        assert stats.broadcasts == 0

    def test_time_conversion(self):
        work = np.full((2, 10), 4)
        stats = simulate_layer_cycles(work, fifo_depth=8, clock_mhz=800.0)
        assert stats.time_s == pytest.approx(stats.total_cycles / 800e6)
        assert stats.theoretical_time_s <= stats.time_s

    def test_performance_record(self):
        work = np.full((2, 10), 4)
        stats = simulate_layer_cycles(work, fifo_depth=8)
        performance = stats.performance(dense_macs=1000)
        assert performance.macs_performed == stats.entries_processed
        assert performance.dense_equivalent_gops > performance.effective_gops

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            simulate_layer_cycles(np.zeros(4, dtype=int), fifo_depth=8)
        with pytest.raises(SimulationError):
            simulate_layer_cycles(np.array([[-1]]), fifo_depth=8)
        with pytest.raises(SimulationError):
            simulate_layer_cycles(np.array([[1]]), fifo_depth=0)
        with pytest.raises(SimulationError):
            simulate_layer_cycles(np.array([[1]]), fifo_depth=2, padding_work=np.zeros((2, 2)))

    def test_zero_pes_rejected(self):
        # An empty PE axis used to silently report theoretical_cycles = 0.0.
        with pytest.raises(SimulationError, match="at least one PE"):
            simulate_layer_cycles(np.zeros((0, 5), dtype=int), fifo_depth=8)

    def test_non_positive_clock_rejected(self):
        work = np.array([[1, 2]])
        with pytest.raises(SimulationError, match="clock_mhz"):
            simulate_layer_cycles(work, fifo_depth=8, clock_mhz=0.0)
        with pytest.raises(SimulationError, match="clock_mhz"):
            simulate_layer_cycles(work, fifo_depth=8, clock_mhz=-800.0)


class TestCycleAccurateEIE:
    def test_layer_simulation_consistent_with_functional_entries(
        self, compressed_layer, small_config, dense_activations
    ):
        from repro.core.functional import FunctionalEIE

        cycle_stats = CycleAccurateEIE(small_config).simulate_layer(
            compressed_layer, dense_activations
        )
        functional = FunctionalEIE(compressed_layer, small_config).run(dense_activations)
        assert cycle_stats.entries_processed == functional.total_entries_processed
        assert cycle_stats.broadcasts == functional.broadcasts

    def test_padding_entries_bounded_by_storage(self, compressed_layer, small_config, dense_activations):
        stats = CycleAccurateEIE(small_config).simulate_layer(compressed_layer, dense_activations)
        assert 0 <= stats.padding_entries <= compressed_layer.storage.num_padding_zeros

    def test_wrong_activation_length_rejected(self, compressed_layer, small_config):
        with pytest.raises(SimulationError):
            CycleAccurateEIE(small_config).simulate_layer(
                compressed_layer, np.zeros(compressed_layer.cols + 3)
            )

    def test_pe_mismatch_rejected(self, compressed_layer):
        with pytest.raises(SimulationError):
            CycleAccurateEIE(EIEConfig(num_pes=16)).simulate_layer(
                compressed_layer, np.zeros(compressed_layer.cols)
            )

    def test_work_matrix_entry_point(self, small_config):
        stats = CycleAccurateEIE(small_config).simulate_work_matrix(np.full((4, 20), 2))
        assert stats.fifo_depth == small_config.fifo_depth
        assert stats.entries_processed == 160
