"""Tests for ExperimentSpec: validation, overlays, JSON round-trips."""

from __future__ import annotations

import pytest

from repro.compression.pipeline import CompressionConfig
from repro.core.config import EIEConfig
from repro.errors import ConfigurationError
from repro.experiments import ExperimentSpec


class TestConfigRoundTrips:
    def test_eie_config_to_dict_round_trips(self):
        config = EIEConfig(num_pes=16, fifo_depth=4)
        assert EIEConfig.from_dict(config.to_dict()) == config

    def test_eie_config_partial_overlay_uses_defaults(self):
        config = EIEConfig.from_dict({"num_pes": 8})
        assert config.num_pes == 8
        assert config.fifo_depth == EIEConfig().fifo_depth

    def test_eie_config_rejects_unknown_key_by_name(self):
        with pytest.raises(ConfigurationError, match="no field 'numpes'"):
            EIEConfig.from_dict({"numpes": 8})

    def test_compression_config_round_trips(self):
        config = CompressionConfig(target_density=0.2, index_bits=5, max_run=31)
        assert CompressionConfig.from_dict(config.to_dict()) == config

    def test_compression_config_rejects_unknown_key_by_name(self):
        with pytest.raises(ConfigurationError, match="no field 'densty'"):
            CompressionConfig.from_dict({"densty": 0.1})


class TestSpecValidation:
    def test_requires_experiment_name(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(experiment="")

    def test_rejects_bad_config_key_eagerly(self):
        with pytest.raises(ConfigurationError, match="no field 'pes'"):
            ExperimentSpec(experiment="x", config={"pes": 8})

    def test_rejects_bad_compression_key_eagerly(self):
        with pytest.raises(ConfigurationError, match="no field 'density'"):
            ExperimentSpec(experiment="x", compression={"density": 0.1})

    def test_rejects_bad_repeats_and_scale(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(experiment="x", repeats=0)
        with pytest.raises(ConfigurationError):
            ExperimentSpec(experiment="x", scale=-1.0)

    def test_rejects_empty_grid_axis(self):
        with pytest.raises(ConfigurationError, match="at least one value"):
            ExperimentSpec(experiment="x", grid={"depth": ()})

    def test_scalar_grid_value_becomes_one_point_axis(self):
        spec = ExperimentSpec(experiment="x", grid={"depth": 8})
        assert spec.grid == {"depth": (8,)}

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError, match="no field 'grids'"):
            ExperimentSpec.from_dict({"experiment": "x", "grids": {}})


class TestSpecSerialization:
    def test_json_round_trip_identity(self):
        spec = ExperimentSpec(
            experiment="fig8_fifo_depth",
            engine="cycle",
            config={"num_pes": 16, "clock_mhz": 800.0},
            compression={"index_bits": 4},
            workloads=("Alex-7", "NT-We"),
            scale=64.0,
            grid={"fifo_depth": (1, 8, 32)},
            params={"batch": 1},
            seed=7,
            repeats=2,
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_defaults_round_trip(self):
        spec = ExperimentSpec(experiment="table1_energy")
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_tuple_valued_params_and_config_round_trip(self):
        # Tuples normalise to lists at construction, so JSON round-trips hold
        # for sequence-valued params in custom experiments too.
        spec = ExperimentSpec(experiment="x", params={"opts": (1, 2)})
        assert spec.params == {"opts": [1, 2]}
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_from_json_rejects_invalid_json(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ExperimentSpec.from_json("{not json")
        with pytest.raises(ConfigurationError, match="must be an object"):
            ExperimentSpec.from_json("[1, 2]")


class TestSpecMergeAndOverrides:
    def test_merged_overlays_mappings_and_keeps_default_scalars(self):
        default = ExperimentSpec(
            experiment="x", grid={"depth": (1, 8)}, params={"batch": 1}, seed=42
        )
        override = ExperimentSpec(experiment="x", grid={"depth": (4,)}, config={"num_pes": 8})
        merged = default.merged(override)
        assert merged.grid == {"depth": (4,)}
        assert merged.config == {"num_pes": 8}
        assert merged.params == {"batch": 1}
        assert merged.seed == 42  # unset scalar keeps the experiment default

    def test_merged_set_scalar_wins(self):
        default = ExperimentSpec(experiment="x", seed=42)
        assert default.merged(ExperimentSpec(experiment="x", seed=0)).seed == 0

    def test_merged_rejects_mismatched_experiment(self):
        with pytest.raises(ConfigurationError, match="cannot merge"):
            ExperimentSpec(experiment="x").merged(ExperimentSpec(experiment="y"))

    def test_with_overrides_dotted_and_scalar_paths(self):
        spec = ExperimentSpec(experiment="x", grid={"depth": (1, 8)})
        spec = spec.with_overrides(
            [("config.num_pes", 16), ("grid.depth", [2, 4]), ("scale", 64), ("workloads", "Alex-6")]
        )
        assert spec.config == {"num_pes": 16}
        assert spec.grid == {"depth": (2, 4)}
        assert spec.scale == 64
        assert spec.workloads == ("Alex-6",)

    def test_with_overrides_rejects_unknown_field_and_group(self):
        spec = ExperimentSpec(experiment="x")
        with pytest.raises(ConfigurationError, match="no field 'bogus'"):
            spec.with_overrides([("bogus", 1)])
        with pytest.raises(ConfigurationError, match="not a mapping field"):
            spec.with_overrides([("bogus.key", 1)])
