"""Tests for the end-to-end Deep Compression pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.pipeline import CompressedLayer, CompressionConfig, DeepCompressor
from repro.errors import CompressionError


class TestCompressionConfig:
    def test_defaults(self):
        config = CompressionConfig()
        assert config.index_bits == 4
        assert config.max_run == 15
        assert config.target_density is None

    def test_invalid_density_rejected(self):
        with pytest.raises(CompressionError):
            CompressionConfig(target_density=0.0)
        with pytest.raises(CompressionError):
            CompressionConfig(target_density=1.2)

    def test_max_run_bounded_by_index_bits(self):
        with pytest.raises(CompressionError):
            CompressionConfig(index_bits=4, max_run=16)


class TestDeepCompressor:
    def test_reconstruction_error_is_bounded(self, sparse_weights):
        layer = DeepCompressor().compress(sparse_weights, num_pes=4)
        reconstructed = layer.dense_weights()
        nonzero = sparse_weights != 0.0
        # Zero positions stay exactly zero; non-zeros only move to the nearest centroid.
        assert np.all(reconstructed[~nonzero] == 0.0)
        error = np.abs(reconstructed[nonzero] - sparse_weights[nonzero])
        spread = sparse_weights[nonzero].max() - sparse_weights[nonzero].min()
        assert error.max() <= spread / 2

    def test_sparsity_pattern_preserved_without_pruning(self, sparse_weights):
        layer = DeepCompressor().compress(sparse_weights, num_pes=4)
        reconstructed = layer.dense_weights()
        # Every surviving weight decodes to a non-zero unless k-means snapped it to 0.
        assert np.count_nonzero(reconstructed) <= np.count_nonzero(sparse_weights)
        assert np.count_nonzero(reconstructed) >= 0.9 * np.count_nonzero(sparse_weights)

    def test_target_density_pruning(self, rng):
        dense = rng.normal(size=(64, 48))
        compressor = DeepCompressor(CompressionConfig(target_density=0.1))
        layer = compressor.compress(dense, num_pes=4)
        assert layer.weight_density == pytest.approx(0.1, abs=0.03)

    def test_reference_matvec_matches_dense_weights(self, compressed_layer, dense_activations):
        expected = compressed_layer.dense_weights() @ dense_activations
        assert np.allclose(compressed_layer.reference_matvec(dense_activations), expected)

    def test_dense_weights_are_cached_and_read_only(self, compressed_layer):
        first = compressed_layer.dense_weights()
        assert compressed_layer.dense_weights() is first
        assert not first.flags.writeable

    def test_all_zero_matrix_rejected(self):
        with pytest.raises(CompressionError):
            DeepCompressor().compress(np.zeros((8, 8)), num_pes=2)

    def test_invalid_num_pes_rejected(self, sparse_weights):
        with pytest.raises(CompressionError):
            DeepCompressor().compress(sparse_weights, num_pes=0)


class TestCompressedLayer:
    def test_shape_properties(self, compressed_layer, sparse_weights):
        assert compressed_layer.shape == sparse_weights.shape
        assert compressed_layer.rows == sparse_weights.shape[0]
        assert compressed_layer.cols == sparse_weights.shape[1]
        assert compressed_layer.dense_weight_count == sparse_weights.size

    def test_weight_density_close_to_input(self, compressed_layer, sparse_weights):
        input_density = np.count_nonzero(sparse_weights) / sparse_weights.size
        assert compressed_layer.weight_density == pytest.approx(input_density, rel=0.15)

    def test_compression_ratio_substantial(self, compressed_layer):
        # 4-bit indices + 4-bit runs versus 32-bit floats at ~15% density.
        assert compressed_layer.compression_ratio() > 5.0

    def test_storage_report_keys_and_consistency(self, compressed_layer):
        report = compressed_layer.storage_report()
        assert report["compressed_bits"] < report["dense_bits"]
        assert report["huffman_bits"] <= report["compressed_bits"] * 1.1
        assert report["compression_ratio"] > 1.0
        assert 0.0 <= report["padding_fraction"] < 1.0

    def test_huffman_never_worse_than_fixed_width_streams(self, compressed_layer):
        # Huffman coding the index/run streams cannot exceed 8 bits per entry
        # by more than the codebook/pointer overhead already counted.
        assert compressed_layer.huffman_storage_bits() <= compressed_layer.storage_bits()

    def test_mismatched_storage_rejected(self, compressed_layer):
        with pytest.raises(CompressionError):
            CompressedLayer(
                name="broken",
                shape=(compressed_layer.rows + 1, compressed_layer.cols),
                codebook=compressed_layer.codebook,
                storage=compressed_layer.storage,
                num_pes=compressed_layer.num_pes,
            )
