"""Degradation harness: golden-path execution, divergence scoring, Pareto run."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.experiments import ExperimentRegistry, run_experiment
from repro.models import build_model, synthetic_model_inputs
from repro.reliability import (
    FaultConfig,
    compare_model_runs,
    inject_model_faults,
    run_degradation,
)

CONFIG = EIEConfig(num_pes=8)


@pytest.fixture(scope="module")
def model():
    return build_model("neuraltalk_lstm", scale=32)


@pytest.fixture(scope="module")
def session():
    return Session(config=CONFIG)


@pytest.fixture(scope="module")
def inputs(model):
    return synthetic_model_inputs(model, batch=4, seed=1)


def _find_degrading_seed(session, compressed, tries=64):
    """A seed where unprotected faults change data AND secded sees no
    multi-flip word — deterministic search, same answer every run."""
    for seed in range(tries):
        unprotected = inject_model_faults(
            compressed, FaultConfig(ber=1e-3, scheme="none", seed=seed)
        )
        protected = inject_model_faults(
            compressed, FaultConfig(ber=1e-3, scheme="secded", seed=seed)
        )
        if unprotected.changed and protected.counters["multi_flip_words"] == 0:
            return seed
    raise AssertionError(f"no suitable seed in range({tries})")


class TestDegradation:
    def test_ber_zero_is_the_golden_run(self, session, model, inputs):
        result = run_degradation(
            session, "functional", model, inputs, FaultConfig(ber=0.0), config=CONFIG
        )
        assert result.faulted is result.golden
        assert result.metrics["bit_identical"]
        assert result.metrics["output_rmse"] == 0.0
        assert result.metrics["top1_agreement"] == 1.0

    def test_unprotected_faults_degrade_and_secded_recovers(
        self, session, model, inputs
    ):
        compressed = session.compress_model(model, CONFIG.num_pes)
        seed = _find_degrading_seed(session, compressed)
        golden = session.run_model("functional", compressed, inputs, CONFIG)

        unprotected = run_degradation(
            session, "functional", compressed, inputs,
            FaultConfig(ber=1e-3, scheme="none", seed=seed),
            config=CONFIG, golden_run=golden,
        )
        assert unprotected.injection.changed
        assert not unprotected.metrics["bit_identical"]
        assert unprotected.metrics["output_relative_error"] > 0.0

        protected = run_degradation(
            session, "functional", compressed, inputs,
            FaultConfig(ber=1e-3, scheme="secded", seed=seed),
            config=CONFIG, golden_run=golden,
        )
        assert protected.faulted is golden
        assert protected.metrics["bit_identical"]
        assert protected.injection.counters["corrected_words"] > 0

    def test_shared_golden_run_is_reused(self, session, model, inputs):
        compressed = session.compress_model(model, CONFIG.num_pes)
        golden = session.run_model("functional", compressed, inputs, CONFIG)
        result = run_degradation(
            session, "functional", compressed, inputs,
            FaultConfig(ber=0.0), config=CONFIG, golden_run=golden,
        )
        assert result.golden is golden

    def test_per_node_error_propagation_profile(self, session, model, inputs):
        compressed = session.compress_model(model, CONFIG.num_pes)
        seed = _find_degrading_seed(session, compressed)
        result = run_degradation(
            session, "functional", compressed, inputs,
            FaultConfig(ber=1e-3, scheme="none", seed=seed), config=CONFIG,
        )
        per_node = result.metrics["per_node"]
        assert len(per_node) == len(result.golden.node_outputs)
        assert any(not entry["bit_identical"] for entry in per_node)
        for entry in per_node:
            assert entry["rmse"] >= 0.0

    def test_compare_model_runs_against_itself(self, session, model, inputs):
        run = session.run_model("functional", model, inputs, CONFIG)
        metrics = compare_model_runs(run, run)
        assert metrics["bit_identical"]
        assert metrics["output_rmse"] == 0.0
        assert metrics["output_relative_error"] == 0.0
        assert metrics["top1_agreement"] == 1.0


class TestParetoExperiment:
    GRID = {
        "model": ["neuraltalk_lstm"],
        "ber": [0.0, 1e-3],
        "scheme": ["none", "secded"],
    }
    PARAMS = {"scale": 32.0, "seed": None, "batch": 4, "input_seed": 1}

    def _run(self, executor, jobs=1):
        return run_experiment(
            "reliability_pareto",
            grid=self.GRID, params=self.PARAMS, executor=executor, jobs=jobs,
        )

    def test_registered_with_functional_default(self):
        experiment = ExperimentRegistry.get("reliability_pareto")
        assert experiment.spec.engine == "functional"
        assert not experiment.uses_workloads

    def test_pareto_invariants(self):
        result = self._run("serial")
        records = {(r["ber"], r["scheme"]): r for r in result.records}
        assert len(records) == 4

        for scheme in ("none", "secded"):
            clean = records[(0.0, scheme)]
            assert clean["bit_identical"]
            assert clean["flips"] == 0
            assert clean["output_rmse"] == 0.0

        degraded = records[(1e-3, "none")]
        assert degraded["data_flips"] > 0
        assert not degraded["bit_identical"]
        assert degraded["output_relative_error"] > 0.0
        assert degraded["storage_factor"] == 1.0
        assert degraded["read_energy_factor"] == 1.0

        recovered = records[(1e-3, "secded")]
        assert recovered["bit_identical"]
        assert recovered["corrected_words"] > 0
        assert recovered["storage_factor"] == 1.125
        assert recovered["read_energy_factor"] == pytest.approx(1.125**0.6)
        assert recovered["protected_kib"] > degraded["protected_kib"]
        assert recovered["protected_kib"] == pytest.approx(
            1.125 * degraded["protected_kib"], rel=1e-3
        )

    def test_executors_are_byte_identical(self):
        canon = lambda result: json.dumps(
            result.to_dict()["records"], sort_keys=True
        )
        serial = canon(self._run("serial"))
        assert canon(self._run("threads", jobs=4)) == serial
        assert canon(self._run("processes", jobs=2)) == serial
