"""Tests for the leading non-zero detection quadtree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lnzd import LNZDTree
from repro.errors import SimulationError
from repro.hardware.area import num_lnzd_units


class TestTreeStructure:
    def test_node_count_matches_area_model(self):
        for num_pes in (1, 4, 16, 64, 256):
            assert LNZDTree(num_pes).num_nodes == num_lnzd_units(num_pes)

    def test_64_pe_tree_has_three_levels(self):
        tree = LNZDTree(64)
        assert tree.depth == 3
        assert [len(level) for level in tree.levels] == [16, 4, 1]

    def test_root_covers_all_pes(self):
        tree = LNZDTree(64)
        assert tree.root.pe_range == (0, 64)

    def test_leaves_cover_four_pes_each(self):
        tree = LNZDTree(16)
        leaves = tree.levels[0]
        assert all(node.pe_range[1] - node.pe_range[0] == 4 for node in leaves)

    def test_non_power_of_four_pe_count(self):
        tree = LNZDTree(6)
        assert tree.root.pe_range == (0, 6)
        assert tree.num_nodes >= 2

    def test_invalid_pe_count_rejected(self):
        with pytest.raises(SimulationError):
            LNZDTree(0)

    def test_nodes_listing(self):
        tree = LNZDTree(16)
        assert len(tree.nodes()) == tree.num_nodes
        assert tree.nodes()[0].is_leaf


class TestScanNonzeros:
    def test_only_nonzeros_in_order(self):
        tree = LNZDTree(4)
        activations = np.array([0.0, 1.5, 0.0, -2.0, 0.0, 3.0])
        scan = tree.scan_nonzeros(activations)
        assert scan == [(1, 1.5), (3, -2.0), (5, 3.0)]

    def test_all_zero_vector(self):
        assert LNZDTree(4).scan_nonzeros(np.zeros(8)) == []

    def test_dense_vector_broadcasts_everything(self):
        activations = np.arange(1.0, 9.0)
        assert len(LNZDTree(4).scan_nonzeros(activations)) == 8

    def test_pe_for_activation_is_modulo(self):
        tree = LNZDTree(8)
        assert tree.pe_for_activation(0) == 0
        assert tree.pe_for_activation(9) == 1
        with pytest.raises(SimulationError):
            tree.pe_for_activation(-1)

    def test_count_nonzeros_per_group(self):
        tree = LNZDTree(8)
        activations = np.zeros(16)
        activations[0] = 1.0   # PE 0 -> group 0
        activations[4] = 1.0   # PE 4 -> group 1
        activations[12] = 1.0  # PE 4 -> group 1
        counts = tree.count_nonzeros_per_group(activations)
        assert counts.tolist() == [1, 2]
        assert counts.sum() == np.count_nonzero(activations)
