"""Tests for the experiment registry, runner, concurrency and result files."""

from __future__ import annotations

import json

import pytest

from repro.engine.session import Session
from repro.errors import ConfigurationError
from repro.experiments import (
    Experiment,
    ExperimentRegistry,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    register_experiment,
    run_experiment,
)
from repro.workloads.benchmarks import scaled_benchmarks
from repro.workloads.generator import WorkloadBuilder

#: 64x-smaller layers: same densities, fast sweeps.
SCALE = 64.0


@pytest.fixture(scope="module")
def builder() -> WorkloadBuilder:
    return WorkloadBuilder()


@pytest.fixture(scope="module")
def subset():
    specs = scaled_benchmarks(SCALE)
    return [specs["Alex-7"], specs["NT-We"]]


class TestRegistry:
    def test_all_paper_entry_points_are_registered(self):
        names = ExperimentRegistry.names()
        expected = {
            "fig6_speedup", "fig7_energy_efficiency", "fig8_fifo_depth", "fig9_sram_width",
            "fig10_precision", "fig11_scalability", "fig12_padding_zeros",
            "fig13_load_balance", "table1_energy", "table2_area_power", "table3_benchmarks",
            "table4_wallclock", "table5_platforms", "ablation_index_width",
            "ablation_codebook_bits", "ablation_partitioning",
        }
        assert expected <= set(names)

    def test_unknown_experiment_names_are_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            ExperimentRegistry.get("fig99_nonexistent")

    def test_describe_reports_axes_and_default_spec(self):
        description = ExperimentRegistry.describe("fig8_fifo_depth")
        assert description["axes"] == ["fifo_depth"]
        assert description["default_spec"]["experiment"] == "fig8_fifo_depth"
        assert description["uses_workloads"] is True

    def test_custom_experiment_registration_and_unregistration(self):
        experiment = Experiment(
            name="custom_test_experiment",
            description="one record per point",
            spec=ExperimentSpec(experiment="custom_test_experiment", grid={"x": (1, 2, 3)}),
            run_point=lambda ctx, point: {"doubled": 2 * point["x"]},
            uses_workloads=False,
        )
        register_experiment(experiment)
        try:
            result = run_experiment("custom_test_experiment")
            assert [r["doubled"] for r in result.records] == [2, 4, 6]
            assert [r["x"] for r in result.records] == [1, 2, 3]
        finally:
            ExperimentRegistry.unregister("custom_test_experiment")

    def test_duplicate_registration_is_rejected(self):
        experiment = ExperimentRegistry.get("table1_energy")
        clone = Experiment(
            name="table1_energy",
            description="clone",
            spec=ExperimentSpec(experiment="table1_energy"),
            run_point=lambda ctx, point: [],
            uses_workloads=False,
        )
        with pytest.raises(ConfigurationError, match="already registered"):
            register_experiment(clone)
        assert ExperimentRegistry.get("table1_energy") is experiment


class TestRunnerValidation:
    def test_unknown_grid_axis_is_rejected(self, builder, subset):
        runner = ExperimentRunner(builder=builder)
        with pytest.raises(ConfigurationError, match="no grid axis"):
            runner.run("fig8_fifo_depth", workloads=subset, grid={"depth": (1,)})

    def test_unknown_param_is_rejected(self, builder, subset):
        runner = ExperimentRunner(builder=builder)
        with pytest.raises(ConfigurationError, match="no parameter"):
            runner.run("fig6_speedup", workloads=subset, params={"batches": 2})

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(jobs=0)

    def test_unknown_benchmark_name_is_rejected(self, builder):
        runner = ExperimentRunner(builder=builder)
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            runner.run("fig8_fifo_depth", workloads=("Alex-99",))


class TestRunnerExecution:
    def test_records_carry_point_axes_and_provenance(self, builder, subset):
        result = run_experiment(
            "fig8_fifo_depth", builder=builder, workloads=subset,
            grid={"fifo_depth": (1, 8)}, config={"num_pes": 16},
        )
        assert result.metadata["points"] == 4
        assert result.metadata["axes"] == ["benchmark", "fifo_depth"]
        assert {record["benchmark"] for record in result.records} == {
            "Alex-7-x64", "NT-We-x64"
        }
        assert result.provenance["paper"] == "conf_isca_HanLMPPHD16"
        assert result.provenance["spec"]["grid"]["fifo_depth"] == [1, 8]

    def test_jobs4_is_bit_identical_to_jobs1_with_shared_session(self, builder, subset):
        session = Session()
        runner = ExperimentRunner(builder=builder, session=session)
        kwargs = dict(
            workloads=subset, grid={"fifo_depth": (1, 2, 4, 8)}, config={"num_pes": 16}
        )
        serial = runner.run("fig8_fifo_depth", jobs=1, **kwargs)
        parallel = runner.run("fig8_fifo_depth", jobs=4, **kwargs)
        assert parallel.records == serial.records
        assert parallel.to_table() == serial.to_table()
        # One shared session: the cycle engine's preparation (which depends
        # only on the PE count) is reused across every depth point and run.
        assert session.cache_info()["prepared"]["hits"] > 0

    def test_repeats_add_a_repeat_axis(self, builder, subset):
        result = run_experiment(
            "fig8_fifo_depth", builder=builder, workloads=subset[:1],
            grid={"fifo_depth": (8,)}, config={"num_pes": 16}, repeats=2,
        )
        assert [record["repeat"] for record in result.records] == [0, 1]

    def test_spec_object_and_kwargs_agree(self, builder, subset):
        spec = ExperimentSpec(
            experiment="fig9_sram_width",
            grid={"width_bits": (32, 64)},
            config={"num_pes": 16},
            workloads=("Alex-7", "NT-We"),
            scale=SCALE,
        )
        by_spec = run_experiment(spec, builder=builder)
        by_kwargs = run_experiment(
            "fig9_sram_width", builder=builder, workloads=subset,
            grid={"width_bits": (32, 64)}, config={"num_pes": 16},
        )
        assert by_spec.records == by_kwargs.records


class TestResult:
    @pytest.fixture(scope="class")
    def result(self, builder, subset):
        return run_experiment(
            "fig8_fifo_depth", builder=builder, workloads=subset,
            grid={"fifo_depth": (1, 8)}, config={"num_pes": 16},
        )

    def test_to_table_matches_registered_render(self, result):
        assert result.to_table().startswith("Load-balance efficiency vs FIFO depth:")

    def test_to_dict_is_json_serializable(self, result):
        text = result.to_json()
        data = json.loads(text)
        assert data["experiment"] == "fig8_fifo_depth"
        assert len(data["records"]) == 4

    def test_write_emits_txt_and_json_with_shared_stem(self, result, tmp_path):
        txt_path, json_path = result.write(tmp_path)
        assert txt_path.name == "fig8_fifo_depth.txt"
        assert json_path.name == "fig8_fifo_depth.json"
        assert txt_path.read_text().startswith("Load-balance efficiency")
        stored = json.loads(json_path.read_text())
        assert stored["provenance"]["spec"]["experiment"] == "fig8_fifo_depth"

    def test_write_appends_extra_text(self, result, tmp_path):
        txt_path, _ = result.write(tmp_path, extra="versus the paper: ok")
        assert txt_path.read_text().rstrip().endswith("versus the paper: ok")

    def test_adhoc_results_fall_back_to_generic_table(self, tmp_path):
        adhoc = ExperimentResult.from_records(
            "adhoc_perf", [{"metric": "speedup", "value": 5.0}], note="n"
        )
        table = adhoc.to_table()
        assert "metric" in table and "speedup" in table
        assert adhoc.legacy() == adhoc.records  # no registry entry: raw records
        txt_path, json_path = adhoc.write(tmp_path)
        assert txt_path.name == "adhoc_perf.txt" and json_path.exists()
