"""Direct tests for analysis/energy_efficiency.py (Figure 7's data layer).

Golden-value and shape tests for :func:`layer_energies` and
:func:`energy_efficiency_table` on scaled layers, plus spec-level parity
against the ``"fig7_energy_efficiency"`` experiment.
"""

from __future__ import annotations

import pytest

from repro.analysis.energy_efficiency import energy_efficiency_table, layer_energies
from repro.analysis.report import geometric_mean
from repro.analysis.speedup import GEOMEAN_KEY, SPEEDUP_CONFIGS
from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X
from repro.core.config import EIEConfig
from repro.experiments import run_experiment
from repro.hardware.area import chip_power_w
from repro.workloads.benchmarks import scaled_benchmarks
from repro.workloads.generator import WorkloadBuilder

SCALE = 64.0


@pytest.fixture(scope="module")
def builder() -> WorkloadBuilder:
    return WorkloadBuilder()


@pytest.fixture(scope="module")
def specs():
    return scaled_benchmarks(SCALE)


@pytest.fixture(scope="module")
def subset(specs):
    return [specs["Alex-7"], specs["NT-We"]]


@pytest.fixture(scope="module")
def eie_config() -> EIEConfig:
    return EIEConfig(num_pes=16)


class TestLayerEnergies:
    @pytest.fixture(scope="class")
    def energies(self, builder, specs, eie_config):
        return layer_energies(specs["Alex-7"], builder, eie_config)

    def test_covers_all_figure7_configurations(self, energies):
        assert set(energies) == set(SPEEDUP_CONFIGS)

    def test_all_energies_positive(self, energies):
        assert all(value > 0.0 for value in energies.values())

    def test_cpu_dense_energy_is_time_times_power(self, builder, specs, energies):
        """Golden value: CPU energy = roofline dense time x measured power."""
        cpu = RooflinePlatform(CPU_CORE_I7_5930K)
        expected = cpu.dense_time_s(specs["Alex-7"], 1) * CPU_CORE_I7_5930K.power_w
        assert energies["CPU Dense"] == expected

    def test_gpu_compressed_energy_is_time_times_power(self, builder, specs, energies):
        gpu = RooflinePlatform(GPU_TITAN_X)
        expected = gpu.sparse_time_s(specs["Alex-7"], 1) * GPU_TITAN_X.power_w
        assert energies["GPU Compressed"] == expected

    def test_eie_energy_is_simulated_time_times_chip_power(
        self, builder, specs, eie_config, energies
    ):
        """Golden value: EIE energy = cycle-model time x Table II chip power."""
        workload = builder.build(specs["Alex-7"], eie_config.num_pes)
        stats = workload.simulate(eie_config)
        assert energies["EIE"] == stats.time_s * chip_power_w(eie_config.num_pes)

    def test_compression_reduces_energy_on_every_platform(self, energies):
        assert energies["CPU Compressed"] < energies["CPU Dense"]
        assert energies["GPU Compressed"] < energies["GPU Dense"]
        assert energies["mGPU Compressed"] < energies["mGPU Dense"]


class TestEnergyEfficiencyTable:
    @pytest.fixture(scope="class")
    def table(self, builder, subset, eie_config):
        return energy_efficiency_table(subset, builder=builder, eie_config=eie_config)

    def test_shape_benchmarks_plus_geomean(self, table, subset):
        assert set(table) == {spec.name for spec in subset} | {GEOMEAN_KEY}
        for row in table.values():
            assert set(row) == set(SPEEDUP_CONFIGS)

    def test_cpu_dense_is_the_unit_baseline(self, table):
        for name, row in table.items():
            assert row["CPU Dense"] == pytest.approx(1.0)

    def test_efficiency_is_energy_ratio(self, builder, subset, eie_config, table):
        """Golden value: each cell is CPU-dense energy over that config's energy."""
        for spec in subset:
            energies = layer_energies(spec, builder, eie_config)
            for config_name in SPEEDUP_CONFIGS:
                expected = energies["CPU Dense"] / energies[config_name]
                assert table[spec.name][config_name] == expected

    def test_geomean_row_is_geometric_mean_of_benchmarks(self, table, subset):
        for config_name in SPEEDUP_CONFIGS:
            expected = geometric_mean(
                [table[spec.name][config_name] for spec in subset]
            )
            assert table[GEOMEAN_KEY][config_name] == expected

    def test_eie_dominates_every_configuration(self, table):
        for row in table.values():
            assert row["EIE"] == max(row.values())

    def test_spec_level_parity_with_experiment(self, builder, subset, eie_config, table):
        """The registered experiment reproduces the legacy table bit for bit."""
        result = run_experiment(
            "fig7_energy_efficiency", builder=builder, workloads=subset,
            config=eie_config,
        )
        assert result.legacy() == table
