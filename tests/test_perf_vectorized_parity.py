"""Parity tests pinning the vectorised hot paths to slow reference code.

The compression encoders, the k-means quantiser and the cycle-model
recurrence were all rewritten as whole-matrix/whole-batch NumPy kernels; the
pre-vectorisation per-element implementations are retained *here* as the
ground truth, and randomized (hypothesis) property tests assert the
vectorised paths are bit-identical — including the awkward shapes: all-zero
columns, zero-runs longer than ``max_run``, single-row matrices, empty (all
zero / zero-width) matrices and zero-length broadcast schedules.

The kernel-backed tests are additionally parameterized over ``backend`` in
``{"numpy", "native"}``: the numpy leg forces the JIT tier off (so it pins
the pure-numpy paths even on a numba-equipped machine) and the native leg —
skipped cleanly when numba is absent — pins the JIT kernels to the same
references.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels

from repro.compression.csc import (
    CSCMatrix,
    InterleavedCSC,
    decode_column,
    encode_column,
    interleaved_entry_counts,
)
from repro.compression.pruning import prune_by_threshold, prune_to_density
from repro.compression.quantization import (
    WeightCodebook,
    _nearest_centroid_indices,
    kmeans_codebook,
)
from repro.core.cycle_model import (
    layer_work_matrices,
    simulate_layer_cycles,
    simulate_layer_cycles_batch,
)
from repro.compression.pipeline import DeepCompressor
from repro.utils.rng import make_rng

SETTINGS = settings(max_examples=25, deadline=None)

#: Backend legs for the kernel-backed parity tests.  The native leg skips
#: (rather than silently passing on the numpy fallback) when numba is absent.
BACKENDS = [
    "numpy",
    pytest.param(
        "native",
        marks=pytest.mark.skipif(
            not kernels.available(), reason="numba unavailable"
        ),
    ),
]


def backend_ctx(backend: str):
    """Context that pins the library's implicit tier selection to ``backend``.

    Used *inside* hypothesis test bodies (a function-scoped fixture would
    trip the hypothesis health check) around the calls whose fast path is
    chosen via ``kernels.use_native()`` rather than an explicit argument.
    """
    return kernels.disabled() if backend == "numpy" else contextlib.nullcontext()


# -- retained slow reference implementations (the seed's per-element code) --


def reference_encode_column(column, max_run=15):
    column = np.asarray(column, dtype=np.float64)
    values: list[float] = []
    runs: list[int] = []
    zeros_pending = 0
    for element in column:
        if element == 0.0:
            zeros_pending += 1
            continue
        while zeros_pending > max_run:
            values.append(0.0)
            runs.append(max_run)
            zeros_pending -= max_run + 1
        values.append(float(element))
        runs.append(zeros_pending)
        zeros_pending = 0
    return np.asarray(values, dtype=np.float64), np.asarray(runs, dtype=np.int64)


def reference_decode_column(values, runs, length):
    column = np.zeros(length, dtype=np.float64)
    position = -1
    for value, run in zip(values, runs):
        position += int(run) + 1
        column[position] = value
    return column


def reference_from_dense(dense, max_run=15):
    """The seed's column-by-column CSCMatrix.from_dense."""
    num_rows, num_cols = dense.shape
    value_chunks, run_chunks = [], []
    col_ptr = np.zeros(num_cols + 1, dtype=np.int64)
    total = 0
    for j in range(num_cols):
        values, runs = reference_encode_column(dense[:, j], max_run=max_run)
        value_chunks.append(values)
        run_chunks.append(runs)
        total += values.shape[0]
        col_ptr[j + 1] = total
    values = np.concatenate(value_chunks) if value_chunks else np.empty(0)
    runs = (
        np.concatenate(run_chunks)
        if run_chunks
        else np.empty(0, dtype=np.int64)
    )
    return values, runs, col_ptr


def reference_kmeans(values, num_clusters, rng=None, max_iterations=30, init="linear"):
    """The seed's O(n*k)-per-iteration Lloyd iteration."""
    values = np.asarray(values, dtype=np.float64).ravel()
    rng = make_rng(rng)
    unique_values = np.unique(values)
    if unique_values.size <= num_clusters:
        centroids = np.full(num_clusters, unique_values[-1], dtype=np.float64)
        centroids[: unique_values.size] = unique_values
        return np.sort(centroids)
    if init == "linear":
        centroids = np.linspace(values.min(), values.max(), num_clusters)
    else:
        centroids = rng.choice(unique_values, size=num_clusters, replace=False)
    centroids = np.sort(np.asarray(centroids, dtype=np.float64))
    for _ in range(max_iterations):
        assignments = np.argmin(np.abs(values[:, None] - centroids[None, :]), axis=1)
        new_centroids = centroids.copy()
        for cluster in range(num_clusters):
            members = values[assignments == cluster]
            if members.size:
                new_centroids[cluster] = members.mean()
        new_centroids = np.sort(new_centroids)
        if np.allclose(new_centroids, centroids, rtol=0.0, atol=1e-12):
            return new_centroids
        centroids = new_centroids
    return centroids


def reference_simulate_total_cycles(work, fifo_depth):
    """The seed's per-broadcast recurrence (rolling completion history)."""
    work = np.asarray(work, dtype=np.int64)
    num_pes, num_broadcasts = work.shape
    done = np.zeros(num_pes, dtype=np.int64)
    history = np.zeros((fifo_depth, num_pes), dtype=np.int64)
    broadcast_time = 0
    for b in range(num_broadcasts):
        broadcast_time = 1 if b == 0 else broadcast_time + 1
        if b >= fifo_depth:
            broadcast_time = max(
                broadcast_time, int(history[(b - fifo_depth) % fifo_depth].max())
            )
        done = np.maximum(done, broadcast_time) + work[:, b]
        history[b % fifo_depth] = done
    return int(done.max()) if num_broadcasts else 0


def reference_layer_work_matrices(layer):
    """The seed's per-PE loop over column entry counts."""
    counts = np.zeros(
        (layer.storage.num_pes, layer.storage.num_cols), dtype=np.int64
    )
    padding = np.zeros_like(counts)
    for pe, matrix in enumerate(layer.storage.per_pe):
        col_counts = matrix.column_entry_counts()
        counts[pe, :] = col_counts
        padding_values = matrix.values == 0.0
        if padding_values.any():
            col_ids = np.repeat(np.arange(matrix.num_cols), col_counts)
            padding[pe, :] = np.bincount(
                col_ids[padding_values], minlength=matrix.num_cols
            )
    return counts, padding


# -- strategies -------------------------------------------------------------


@st.composite
def dense_matrices(draw, max_rows=80, max_cols=24):
    """Random sparse matrices with awkward shapes well represented."""
    shape_kind = draw(st.sampled_from(["general", "single_row", "single_col", "tall"]))
    if shape_kind == "single_row":
        rows, cols = 1, draw(st.integers(1, max_cols))
    elif shape_kind == "single_col":
        rows, cols = draw(st.integers(1, max_rows)), 1
    elif shape_kind == "tall":
        # Tall + very sparse: zero-runs far beyond max_run are guaranteed.
        rows, cols = draw(st.integers(40, 200)), draw(st.integers(1, 6))
    else:
        rows, cols = draw(st.integers(1, max_rows)), draw(st.integers(1, max_cols))
    density = draw(st.sampled_from([0.0, 0.01, 0.05, 0.2, 0.6, 1.0]))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(rows, cols))
    matrix[rng.random((rows, cols)) >= density] = 0.0
    return matrix


# -- CSC encode/decode parity ----------------------------------------------


class TestVectorizedCSCParity:
    @SETTINGS
    @given(matrix=dense_matrices(), max_run=st.sampled_from([1, 2, 3, 15]))
    def test_from_dense_bit_identical(self, matrix, max_run):
        ref_values, ref_runs, ref_col_ptr = reference_from_dense(matrix, max_run)
        encoded = CSCMatrix.from_dense(matrix, max_run=max_run)
        assert np.array_equal(encoded.values, ref_values)
        assert np.array_equal(encoded.runs, ref_runs)
        assert np.array_equal(encoded.col_ptr, ref_col_ptr)

    @pytest.mark.parametrize("backend", BACKENDS)
    @SETTINGS
    @given(
        matrix=dense_matrices(),
        max_run=st.sampled_from([1, 3, 15]),
        num_pes=st.sampled_from([1, 2, 4, 7, 8]),
    )
    def test_interleaved_slices_bit_identical(self, backend, matrix, max_run, num_pes):
        with backend_ctx(backend):
            interleaved = InterleavedCSC.from_dense(
                matrix, num_pes=num_pes, max_run=max_run
            )
        for pe in range(num_pes):
            ref_values, ref_runs, ref_col_ptr = reference_from_dense(
                matrix[pe::num_pes, :], max_run
            )
            pe_slice = interleaved.per_pe[pe]
            assert np.array_equal(pe_slice.values, ref_values)
            assert np.array_equal(pe_slice.runs, ref_runs)
            assert np.array_equal(pe_slice.col_ptr, ref_col_ptr)
        assert np.array_equal(interleaved.to_dense(), matrix)

    @SETTINGS
    @given(matrix=dense_matrices(), max_run=st.sampled_from([1, 3, 15]))
    def test_to_dense_matches_reference_decode(self, matrix, max_run):
        encoded = CSCMatrix.from_dense(matrix, max_run=max_run)
        decoded = encoded.to_dense()
        assert np.array_equal(decoded, matrix)
        for j in range(matrix.shape[1]):
            values, runs = encoded.column_entries(j)
            assert np.array_equal(
                decode_column(values, runs, matrix.shape[0]),
                reference_decode_column(values, runs, matrix.shape[0]),
            )

    def test_empty_and_all_zero_matrices(self):
        for shape in [(5, 3), (1, 1), (200, 2), (4, 0)]:
            matrix = np.zeros(shape)
            encoded = CSCMatrix.from_dense(matrix)
            assert encoded.num_entries == 0
            assert np.array_equal(encoded.to_dense(), matrix)
            interleaved = InterleavedCSC.from_dense(matrix, num_pes=2)
            assert interleaved.num_entries == 0
            assert np.array_equal(interleaved.to_dense(), matrix)

    def test_run_longer_than_max_run_paper_example(self):
        column = np.zeros(23)
        column[2], column[3], column[22] = 1.0, 2.0, 3.0
        values, runs = encode_column(column)
        ref_values, ref_runs = reference_encode_column(column)
        assert np.array_equal(values, ref_values) and np.array_equal(runs, ref_runs)
        assert values.tolist() == [1.0, 2.0, 0.0, 3.0]
        assert runs.tolist() == [2, 0, 15, 2]

    @pytest.mark.parametrize("backend", BACKENDS)
    @SETTINGS
    @given(
        matrix=dense_matrices(),
        num_pes=st.sampled_from([1, 2, 4, 8, 16]),
        max_run=st.sampled_from([1, 3, 15]),
    )
    def test_interleaved_entry_counts_match_explicit_encoding(
        self, backend, matrix, num_pes, max_run
    ):
        rows_list: list[int] = []
        col_ptr = [0]
        for column in range(matrix.shape[1]):
            nonzero_rows = np.nonzero(matrix[:, column])[0]
            rows_list.extend(nonzero_rows.tolist())
            col_ptr.append(len(rows_list))
        with backend_ctx(backend):
            counts, padding = interleaved_entry_counts(
                np.asarray(rows_list, dtype=np.int64),
                np.asarray(col_ptr, dtype=np.int64),
                num_rows=matrix.shape[0],
                num_pes=num_pes,
                max_run=max_run,
            )
            explicit = InterleavedCSC.from_dense(
                matrix, num_pes=num_pes, max_run=max_run
            )
            assert np.array_equal(counts, explicit.entries_per_pe_column())
            assert padding.sum() == explicit.num_padding_zeros

    @pytest.mark.parametrize("backend", BACKENDS)
    @SETTINGS
    @given(matrix=dense_matrices(), num_pes=st.sampled_from([1, 3, 4]))
    def test_padding_caches_match_recount(self, backend, matrix, num_pes):
        with backend_ctx(backend):
            interleaved = InterleavedCSC.from_dense(matrix, num_pes=num_pes)
            for pe_slice in interleaved.per_pe:
                assert pe_slice.num_padding_zeros == int(
                    np.count_nonzero(pe_slice.values == 0.0)
                )
            fresh = np.zeros((num_pes, matrix.shape[1]), dtype=np.int64)
            for pe, pe_slice in enumerate(interleaved.per_pe):
                fresh[pe, :] = pe_slice.column_entry_counts()
            cached = interleaved.entries_per_pe_column()
        assert np.array_equal(cached, fresh)
        assert cached is interleaved.entries_per_pe_column()  # cached object
        assert not cached.flags.writeable  # cache cannot be poisoned


# -- quantization parity ----------------------------------------------------


class TestVectorizedQuantizationParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        k=st.sampled_from([1, 2, 4, 8, 15, 16]),
        with_duplicates=st.booleans(),
    )
    def test_nearest_centroid_matches_argmin(self, backend, seed, k, with_duplicates):
        rng = np.random.default_rng(seed)
        if with_duplicates:
            pool = np.array([-2.0, -1.0, -0.5, 0.0, 0.0, 0.5, 0.75, 1.0, 2.0])
            centroids = rng.choice(pool, size=k)
            values = rng.choice(pool, size=64) / rng.choice([1.0, 2.0, 4.0])
        else:
            centroids = rng.normal(size=k)
            values = rng.normal(size=200)
        expected = np.argmin(np.abs(values[:, None] - centroids[None, :]), axis=1)
        with backend_ctx(backend):
            actual = _nearest_centroid_indices(values, centroids)
        assert np.array_equal(actual, expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_quantize_bit_identical_to_argmin(self, backend, seed):
        rng = np.random.default_rng(seed)
        codebook = WeightCodebook.fit(rng.normal(size=300), rng=seed)
        values = np.concatenate([rng.normal(size=100), [0.0], codebook.centroids])
        expected = np.argmin(
            np.abs(values[:, None] - codebook.centroids[None, :]), axis=1
        ).astype(np.int64)
        expected[values == 0.0] = 0
        with backend_ctx(backend):
            actual = codebook.quantize(values)
        assert np.array_equal(actual, expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        k=st.sampled_from([2, 4, 8, 15]),
        init=st.sampled_from(["linear", "random"]),
    )
    def test_kmeans_codebook_matches_reference(self, backend, seed, k, init):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=int(rng.integers(k + 1, 600))) * 0.3
        expected = reference_kmeans(values, k, rng=seed, init=init)
        with backend_ctx(backend):
            actual = kmeans_codebook(values, k, rng=seed, init=init)
        # Centroid means are count-weighted sums instead of per-member
        # pairwise means, so agreement is to float summation order.
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=1e-8)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kmeans_discrete_values_exact(self, backend):
        values = np.repeat([-1.0, -0.5, 0.25, 1.0, 3.0], [7, 3, 11, 2, 5])
        expected = reference_kmeans(values, 3, rng=0)
        with backend_ctx(backend):
            actual = kmeans_codebook(values, 3, rng=0)
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=1e-12)


# -- pruning parity ---------------------------------------------------------


class TestVectorizedPruningParity:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        density=st.sampled_from([0.05, 0.1, 0.3, 0.9]),
    )
    def test_excess_trim_matches_reference_loop(self, seed, density):
        rng = np.random.default_rng(seed)
        # Quantised values produce heavy magnitude ties at the threshold, so
        # the excess-trim path actually executes.
        weights = np.round(rng.normal(size=(24, 18)), 1)
        result = prune_to_density(weights, density)

        reference = prune_by_threshold(weights, result.threshold)
        keep = max(1, int(round(density * weights.size)))
        if reference.num_nonzero > keep:
            surviving = np.argwhere(reference.mask)
            magnitudes = np.abs(reference.weights[reference.mask])
            order = np.argsort(magnitudes, kind="stable")
            for index in order[: reference.num_nonzero - keep]:
                row, col = surviving[index]
                reference.weights[row, col] = 0.0
                reference.mask[row, col] = False
        assert np.array_equal(result.weights, reference.weights)
        assert np.array_equal(result.mask, reference.mask)


# -- cycle-model parity -----------------------------------------------------


class TestVectorizedCycleModelParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        num_pes=st.sampled_from([1, 2, 5, 16]),
        broadcasts=st.sampled_from([0, 1, 2, 7, 8, 9, 40, 130]),
        depth=st.sampled_from([1, 2, 3, 8, 16, 33, 64, 500]),
    )
    def test_single_matches_reference_recurrence(
        self, backend, seed, num_pes, broadcasts, depth
    ):
        rng = np.random.default_rng(seed)
        work = rng.poisson(1.5, size=(num_pes, broadcasts)).astype(np.int64)
        stats = simulate_layer_cycles(work, fifo_depth=depth, backend=backend)
        assert stats.total_cycles == reference_simulate_total_cycles(work, depth)

    @pytest.mark.parametrize("backend", BACKENDS)
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        depth=st.sampled_from([1, 2, 8, 32]),
    )
    def test_batch_matches_single_item_by_item(self, backend, seed, depth):
        rng = np.random.default_rng(seed)
        num_pes = int(rng.integers(1, 9))
        works = [
            rng.poisson(1.5, size=(num_pes, int(rng.integers(0, 70)))).astype(np.int64)
            for _ in range(int(rng.integers(1, 9)))
        ]
        batch_stats = simulate_layer_cycles_batch(
            works, fifo_depth=depth, backend=backend
        )
        for work, stats in zip(works, batch_stats):
            single = simulate_layer_cycles(work, fifo_depth=depth)
            assert stats.total_cycles == single.total_cycles
            assert stats.broadcasts == single.broadcasts
            assert np.array_equal(stats.busy_cycles, single.busy_cycles)

    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1), depth=st.sampled_from([1, 8]))
    def test_assume_valid_fast_path_identical(self, seed, depth):
        rng = np.random.default_rng(seed)
        work = rng.poisson(2.0, size=(4, 37)).astype(np.int64)
        checked = simulate_layer_cycles(work, fifo_depth=depth)
        unchecked = simulate_layer_cycles(work, fifo_depth=depth, assume_valid=True)
        assert checked.total_cycles == unchecked.total_cycles
        works = [work, work[:, :5], work[:, :0]]
        for a, b in zip(
            simulate_layer_cycles_batch(works, fifo_depth=depth),
            simulate_layer_cycles_batch(works, fifo_depth=depth, assume_valid=True),
        ):
            assert a.total_cycles == b.total_cycles

    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        num_pes=st.sampled_from([1, 2, 4]),
    )
    def test_layer_work_matrices_match_per_pe_reference(self, seed, num_pes):
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(32, 24))
        weights[rng.random((32, 24)) >= 0.15] = 0.0
        if not np.count_nonzero(weights):
            weights[0, 0] = 1.0
        layer = DeepCompressor().compress(weights, num_pes=num_pes)
        counts, padding = layer_work_matrices(layer)
        ref_counts, ref_padding = reference_layer_work_matrices(layer)
        assert np.array_equal(counts, ref_counts)
        assert np.array_equal(padding, ref_padding)
