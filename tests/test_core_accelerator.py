"""Tests for the EIEAccelerator facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import EIEAccelerator
from repro.core.config import EIEConfig
from repro.errors import ReproError, SimulationError


@pytest.fixture
def accelerator(small_config) -> EIEAccelerator:
    return EIEAccelerator(small_config)


def _random_sparse(rng, shape, density=0.15):
    weights = rng.normal(size=shape)
    weights[rng.random(shape) >= density] = 0.0
    weights[0, 0] = 0.5
    return weights


class TestLoading:
    def test_compress_and_load_returns_layer(self, accelerator, sparse_weights):
        layer = accelerator.compress_and_load(sparse_weights, name="fc1")
        assert layer.name == "fc1"
        assert layer.num_pes == accelerator.config.num_pes
        assert accelerator.layers == [layer]

    def test_chained_layers_must_match_shapes(self, accelerator, rng):
        accelerator.compress_and_load(_random_sparse(rng, (24, 40)), name="fc1")
        with pytest.raises(SimulationError):
            accelerator.compress_and_load(_random_sparse(rng, (8, 30)), name="fc2")

    def test_load_rejects_wrong_pe_count(self, accelerator, sparse_weights):
        other = EIEAccelerator(EIEConfig(num_pes=8))
        layer = other.compressor.compress(sparse_weights, num_pes=8)
        with pytest.raises(SimulationError):
            accelerator.load_compressed_layer(layer)

    def test_capacity_enforced(self, sparse_weights):
        tiny = EIEAccelerator(EIEConfig(num_pes=4, spmat_sram_kb=0.001))
        with pytest.raises(SimulationError):
            tiny.compress_and_load(sparse_weights)

    def test_clear(self, accelerator, sparse_weights):
        accelerator.compress_and_load(sparse_weights)
        accelerator.clear()
        assert accelerator.layers == []


class TestExecution:
    def test_single_layer_run_matches_reference(self, accelerator, sparse_weights, dense_activations):
        layer = accelerator.compress_and_load(sparse_weights, name="fc")
        results = accelerator.run(dense_activations)
        expected = np.maximum(layer.dense_weights() @ dense_activations, 0.0)
        assert np.allclose(results[-1].output, expected)

    def test_multi_layer_feed_forward(self, accelerator, rng):
        first = _random_sparse(rng, (24, 40))
        second = _random_sparse(rng, (12, 24))
        layer1 = accelerator.compress_and_load(first, name="fc1")
        layer2 = accelerator.compress_and_load(second, name="fc2", activation_name="identity")
        inputs = rng.uniform(0, 1, size=40)
        results = accelerator.run(inputs)
        hidden = np.maximum(layer1.dense_weights() @ inputs, 0.0)
        expected = layer2.dense_weights() @ hidden
        assert len(results) == 2
        assert np.allclose(results[-1].output, expected)

    def test_run_without_layers_rejected(self, accelerator, dense_activations):
        with pytest.raises(SimulationError):
            accelerator.run(dense_activations)

    def test_run_layer_index_checked(self, accelerator, sparse_weights, dense_activations):
        accelerator.compress_and_load(sparse_weights)
        with pytest.raises(SimulationError):
            accelerator.run_layer(3, dense_activations)

    def test_run_batch_equals_per_row_runs(self, accelerator, rng):
        accelerator.compress_and_load(_random_sparse(rng, (24, 40)), name="fc1")
        accelerator.compress_and_load(_random_sparse(rng, (12, 24)), name="fc2")
        batch = rng.uniform(0, 1, size=(5, 40))
        batch[rng.random((5, 40)) >= 0.5] = 0.0
        outputs = accelerator.run_batch(batch)
        assert outputs.shape == (5, 12)
        for row, output in zip(batch, outputs):
            assert np.array_equal(output, accelerator.run(row)[-1].output)

    def test_run_batch_requires_matrix_and_layers(self, accelerator, sparse_weights,
                                                  dense_activations):
        with pytest.raises(SimulationError):
            accelerator.run_batch(np.zeros((2, 40)))  # no layers loaded
        accelerator.compress_and_load(sparse_weights)
        with pytest.raises(ReproError):
            accelerator.run_batch(dense_activations)  # vector, not a matrix

    def test_repeated_compression_hits_session_cache(self, accelerator, sparse_weights):
        accelerator.compress_and_load(sparse_weights, name="fc")
        accelerator.clear()
        first = accelerator.session.cache_info()["layers"]
        accelerator.compress_and_load(sparse_weights, name="fc")
        second = accelerator.session.cache_info()["layers"]
        assert second["hits"] == first["hits"] + 1


class TestEstimation:
    def test_estimate_layer_consistency(self, accelerator, sparse_weights, dense_activations):
        layer = accelerator.compress_and_load(sparse_weights, name="fc")
        estimate = accelerator.estimate_layer(layer, dense_activations)
        assert estimate.layer_name == "fc"
        assert estimate.cycles.total_cycles > 0
        assert estimate.performance.time_s == pytest.approx(estimate.cycles.time_s)
        assert estimate.energy.energy_j > 0
        assert estimate.functional is not None
        assert estimate.cycles.entries_processed == estimate.functional.total_entries_processed

    def test_estimate_without_functional_run(self, accelerator, sparse_weights, dense_activations):
        layer = accelerator.compress_and_load(sparse_weights, name="fc")
        estimate = accelerator.estimate_layer(layer, dense_activations, run_functional=False)
        assert estimate.functional is None
        assert estimate.energy.energy_j == pytest.approx(
            accelerator.chip_power_w * estimate.cycles.time_s
        )

    def test_chip_power_and_area_scale_with_pes(self, sparse_weights):
        small = EIEAccelerator(EIEConfig(num_pes=4))
        large = EIEAccelerator(EIEConfig(num_pes=64))
        assert large.chip_power_w > small.chip_power_w
        assert large.chip_area_mm2 > small.chip_area_mm2

    def test_energy_breakdown_components(self, accelerator, sparse_weights, dense_activations):
        layer = accelerator.compress_and_load(sparse_weights, name="fc")
        estimate = accelerator.estimate_layer(layer, dense_activations)
        if estimate.energy.breakdown:
            assert set(estimate.energy.breakdown) >= {"spmat_sram", "arithmetic"}
