"""Tests for the Table II area/power breakdown and the LNZD accounting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.area import (
    LNZD_UNIT,
    PE_TOTAL_AREA_UM2,
    PE_TOTAL_POWER_MW,
    PEAreaModel,
    chip_area_mm2,
    chip_power_w,
    num_lnzd_units,
)


class TestPEAreaModel:
    def test_total_power_matches_table2(self):
        assert PEAreaModel().total_power_mw == pytest.approx(PE_TOTAL_POWER_MW, rel=0.01)

    def test_total_area_matches_table2(self):
        assert PEAreaModel().total_area_um2 == pytest.approx(PE_TOTAL_AREA_UM2, rel=0.01)

    def test_memory_dominates_area(self):
        # The paper: SRAM takes 93% of the area and 59% of the power.
        model = PEAreaModel()
        assert model.component_fraction("memory", "area") > 0.90
        assert 0.5 < model.component_fraction("memory", "power") < 0.7

    def test_spmat_read_is_largest_module(self):
        model = PEAreaModel()
        assert model.module_fraction("spmat_read", "area") > 0.7
        assert model.module_fraction("spmat_read", "power") > 0.5

    def test_arithmetic_is_small(self):
        model = PEAreaModel()
        assert model.module_fraction("arithmetic", "area") < 0.01

    def test_unknown_module_rejected(self):
        with pytest.raises(ConfigurationError):
            PEAreaModel().module_fraction("dsp", "area")
        with pytest.raises(ConfigurationError):
            PEAreaModel().component_fraction("memory", "volume")

    def test_breakdown_rows_include_total(self):
        rows = PEAreaModel().breakdown_rows()
        assert rows[0]["name"] == "Total"
        assert rows[0]["area_pct"] == pytest.approx(100.0)
        assert len(rows) > 10


class TestLNZD:
    def test_64_pes_need_21_units(self):
        assert num_lnzd_units(64) == 21

    def test_256_pes(self):
        assert num_lnzd_units(256) == 64 + 16 + 4 + 1

    def test_small_arrays(self):
        assert num_lnzd_units(1) == 1
        assert num_lnzd_units(4) == 1
        assert num_lnzd_units(16) == 5

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            num_lnzd_units(0)

    def test_lnzd_unit_is_negligible(self):
        assert LNZD_UNIT.area_um2 / PE_TOTAL_AREA_UM2 < 0.003


class TestChipTotals:
    def test_64_pe_chip_matches_paper(self):
        # Paper: 40.8 mm^2 and ~0.59 W for 64 PEs.
        assert chip_area_mm2(64) == pytest.approx(40.8, rel=0.02)
        assert chip_power_w(64) == pytest.approx(0.59, rel=0.02)

    def test_area_scales_with_pes(self):
        assert chip_area_mm2(128) == pytest.approx(2 * chip_area_mm2(64), rel=0.01)

    def test_single_pe(self):
        assert chip_area_mm2(1) == pytest.approx(0.638, rel=0.02)
        assert chip_power_w(1) == pytest.approx(0.00918, rel=0.02)
