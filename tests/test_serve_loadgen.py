"""Tests for the load generators (open and closed loop) and serve_latency."""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.config import EIEConfig
from repro.errors import ConfigurationError, ServerOverloadedError
from repro.experiments import ExperimentRegistry, run_experiment
from repro.models import build_model, synthetic_model_inputs
from repro.serve import BatchPolicy, Server, run_closed_loop, run_open_loop


@dataclass
class _FakeResponse:
    batch_size: int
    output: np.ndarray
    latency_s: float | None
    total_cycles: int | None


class TestLoadReportMath:
    def _report(self, submit, count=20, rate=1000.0, **kwargs):
        inputs = np.ones((count, 4))
        return asyncio.run(
            run_open_loop(submit, inputs, rate_rps=rate, seed=1, **kwargs)
        )

    def test_counts_and_percentiles_from_fake_service(self):
        async def submit(vector):
            return _FakeResponse(
                batch_size=2, output=vector * 2.0, latency_s=1e-6, total_cycles=100
            )

        report = self._report(submit, capture_outputs=True)
        assert report.requests == 20
        assert report.completed == 20
        assert report.rejected == 0 and report.errors == 0
        assert report.mean_batch == 2.0
        assert report.sim_cycles == 100.0
        assert report.sim_latency_us == pytest.approx(1.0)
        assert report.p50_ms <= report.p99_ms <= report.max_ms
        assert report.throughput_rps > 0
        assert all(np.array_equal(out, np.ones(4) * 2.0) for out in report.outputs)
        record = report.record()
        assert record["completed"] == 20 and record["p99_ms"] >= record["p50_ms"]

    def test_overload_counts_as_rejection_not_error(self):
        calls = {"n": 0}

        async def submit(vector):
            calls["n"] += 1
            if calls["n"] % 2:
                raise ServerOverloadedError("full", retry_after_s=0.01)
            return _FakeResponse(1, vector, None, None)

        report = self._report(submit)
        assert report.rejected == 10
        assert report.completed == 10
        assert report.errors == 0
        assert report.sim_latency_us is None and report.sim_cycles is None

    def test_other_exceptions_count_as_errors(self):
        async def submit(vector):
            raise RuntimeError("boom")

        report = self._report(submit)
        assert report.errors == 20 and report.completed == 0
        assert np.isnan(report.p50_ms)

    def test_input_validation(self):
        async def submit(vector):  # pragma: no cover - never reached
            return None

        with pytest.raises(ConfigurationError, match="matrix"):
            asyncio.run(run_open_loop(submit, np.ones(4), rate_rps=10.0))
        with pytest.raises(ConfigurationError, match="rate"):
            asyncio.run(run_open_loop(submit, np.ones((2, 4)), rate_rps=0.0))

    def test_arrivals_deterministic_per_seed(self):
        arrival_times: list[list[float]] = []

        for _ in range(2):
            times: list[float] = []

            async def submit(vector):
                loop = asyncio.get_running_loop()
                times.append(loop.time())
                return _FakeResponse(1, vector, None, None)

            self._report(submit, count=10, rate=5000.0)
            first = times[0]
            arrival_times.append([t - first for t in times])
        assert np.allclose(arrival_times[0], arrival_times[1], atol=5e-3)


class TestAgainstRealServer:
    def test_open_loop_against_in_process_server(self):
        model = build_model("neuraltalk_lstm", scale=64)
        inputs = synthetic_model_inputs(model, batch=30, seed=2)
        config = EIEConfig(num_pes=8)

        async def drive():
            async with Server(
                [model],
                config=config,
                policy=BatchPolicy(max_batch=8, max_wait_us=1000.0),
            ) as server:
                return await run_open_loop(
                    lambda vector: server.submit(model.name, vector),
                    inputs,
                    rate_rps=600.0,
                    seed=4,
                    capture_outputs=True,
                )

        report = asyncio.run(drive())
        assert report.completed == 30
        assert report.mean_batch >= 1.0
        assert report.sim_cycles is not None and report.sim_cycles > 0
        assert len(report.outputs) == 30
        assert all(output is not None for output in report.outputs)


class TestClosedLoop:
    def _run(self, submit, count=20, concurrency=4, **kwargs):
        inputs = np.arange(count * 4, dtype=np.float64).reshape(count, 4)
        return asyncio.run(
            run_closed_loop(submit, inputs, concurrency=concurrency, **kwargs)
        )

    def test_every_row_submitted_exactly_once(self):
        seen: list[float] = []

        async def submit(vector):
            seen.append(float(vector[0]))
            return _FakeResponse(1, vector * 2.0, None, None)

        report = self._run(submit, count=20, concurrency=4, capture_outputs=True)
        assert report.requests == 20 and report.completed == 20
        assert report.rejected == 0 and report.errors == 0
        # Each row issued once, whatever the worker interleaving was.
        assert sorted(seen) == [float(i * 4) for i in range(20)]
        # Outputs are indexed by row, not by completion order.
        for index, output in enumerate(report.outputs):
            assert np.array_equal(
                output, np.arange(index * 4, index * 4 + 4, dtype=np.float64) * 2.0
            )

    def test_report_carries_mode_and_concurrency(self):
        async def submit(vector):
            return _FakeResponse(1, vector, None, None)

        report = self._run(submit, concurrency=3)
        assert report.mode == "closed" and report.concurrency == 3
        assert report.offered_rps == 0.0
        record = report.record()
        assert record["mode"] == "closed" and record["concurrency"] == 3

    def test_concurrency_clamped_to_request_count(self):
        async def submit(vector):
            return _FakeResponse(1, vector, None, None)

        report = self._run(submit, count=3, concurrency=64)
        assert report.concurrency == 3 and report.completed == 3

    def test_input_validation(self):
        async def submit(vector):  # pragma: no cover - never reached
            return None

        with pytest.raises(ConfigurationError, match="matrix"):
            asyncio.run(run_closed_loop(submit, np.ones(4), concurrency=2))
        with pytest.raises(ConfigurationError, match="concurrency"):
            asyncio.run(run_closed_loop(submit, np.ones((2, 4)), concurrency=0))

    def test_overload_and_errors_partition_like_open_loop(self):
        calls = {"n": 0}

        async def submit(vector):
            calls["n"] += 1
            if calls["n"] % 4 == 1:
                raise ServerOverloadedError("full", retry_after_s=0.01)
            if calls["n"] % 4 == 2:
                raise RuntimeError("boom")
            return _FakeResponse(1, vector, None, None)

        report = self._run(submit, count=20, concurrency=2)
        assert report.rejected == 5 and report.errors == 5
        assert report.completed == 10
        assert report.completed + report.rejected + report.errors == 20

    def test_parity_with_open_loop_outputs(self):
        """Closed and open loop see identical vectors and produce identical
        outputs for a deterministic service — only the arrival process differs."""

        async def submit(vector):
            return _FakeResponse(1, vector * 3.0 + 1.0, 2e-6, 64)

        inputs = np.linspace(0.0, 1.0, 48).reshape(12, 4)
        closed = asyncio.run(
            run_closed_loop(submit, inputs, concurrency=4, capture_outputs=True)
        )
        open_ = asyncio.run(
            run_open_loop(submit, inputs, rate_rps=5000.0, seed=7, capture_outputs=True)
        )
        assert closed.completed == open_.completed == 12
        for a, b in zip(closed.outputs, open_.outputs):
            assert np.array_equal(a, b)

    def test_closed_loop_against_in_process_server(self):
        model = build_model("neuraltalk_lstm", scale=64)
        inputs = synthetic_model_inputs(model, batch=24, seed=3)
        config = EIEConfig(num_pes=8)

        async def drive():
            async with Server(
                [model],
                config=config,
                policy=BatchPolicy(max_batch=8, max_wait_us=1000.0),
            ) as server:
                return await run_closed_loop(
                    lambda vector: server.submit(model.name, vector),
                    inputs,
                    concurrency=6,
                    capture_outputs=True,
                )

        report = asyncio.run(drive())
        assert report.completed == 24
        assert report.concurrency == 6
        assert report.throughput_rps > 0
        assert all(output is not None for output in report.outputs)


class TestServeLatencyExperiment:
    def test_registered_with_offered_load_grid(self):
        experiment = ExperimentRegistry.get("serve_latency")
        assert "offered_rps" in experiment.spec.grid
        assert experiment.spec.params["max_batch"] >= 1
        assert not experiment.uses_workloads

    def test_smoke_run_and_render(self):
        spec = ExperimentRegistry.get("serve_latency").spec.with_overrides(
            [
                ("params.requests", 20),
                ("params.scale", 64),
                ("grid.offered_rps", [400]),
                ("config.num_pes", 8),
            ]
        )
        result = run_experiment(spec)
        assert len(result.records) == 1
        record = result.records[0]
        assert record["offered_rps"] == 400
        assert record["completed"] + record["rejected"] + record["errors"] == 20
        assert record["errors"] == 0
        table = result.to_table()
        assert "offered load" in table and "400" in table


class TestRetriablePartition:
    """Typed retriable failures are a third bucket, separate from overload
    rejections and from unexpected errors — the chaos invariant lives on
    ``errors == 0`` while retriable failures are allowed and bounded."""

    def test_typed_retriable_errors_counted_separately(self):
        from repro.errors import DeadlineExceededError, WorkerCrashedError

        calls = {"n": 0}

        async def submit(vector):
            calls["n"] += 1
            if calls["n"] % 4 == 0:
                raise WorkerCrashedError("gone", worker_id=0)
            if calls["n"] % 4 == 1:
                raise DeadlineExceededError("late", deadline_s=0.01)
            if calls["n"] % 4 == 2:
                raise ServerOverloadedError("full", retry_after_s=0.01)
            return _FakeResponse(
                batch_size=1, output=vector, latency_s=None, total_cycles=0
            )

        inputs = np.ones((20, 4))
        report = asyncio.run(run_closed_loop(submit, inputs, concurrency=2))
        assert report.retriable == 10  # crashed + deadline buckets
        assert report.rejected == 5
        assert report.completed == 5
        assert report.errors == 0
        assert (
            report.completed + report.rejected + report.retriable + report.errors
            == report.requests
        )
        assert report.record()["retriable"] == 10

    def test_unexpected_exception_still_an_error(self):
        async def submit(vector):
            raise RuntimeError("not a typed serve failure")

        inputs = np.ones((6, 4))
        report = asyncio.run(run_closed_loop(submit, inputs, concurrency=2))
        assert report.errors == 6 and report.retriable == 0
