"""Tests for fixed-point formats and quantisation SNR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.fixed_point import FORMATS, FixedPointFormat, quantization_snr_db


class TestFixedPointFormat:
    def test_scale_and_range(self):
        fmt = FixedPointFormat(total_bits=16, fraction_bits=8)
        assert fmt.scale == pytest.approx(1 / 256)
        assert fmt.max_value == pytest.approx((2**15 - 1) / 256)
        assert fmt.min_value == pytest.approx(-(2**15) / 256)

    def test_roundtrip_of_representable_values(self):
        fmt = FixedPointFormat(total_bits=16, fraction_bits=8)
        values = np.array([0.0, 1.0, -1.0, 0.5, -0.25, 3.14159])
        quantized = fmt.quantize(values)
        assert np.all(np.abs(quantized - values) <= fmt.scale / 2 + 1e-12)

    def test_saturation(self):
        fmt = FixedPointFormat(total_bits=8, fraction_bits=4)
        assert fmt.quantize(1000.0) == pytest.approx(fmt.max_value)
        assert fmt.quantize(-1000.0) == pytest.approx(fmt.min_value)

    def test_to_fixed_returns_integers(self):
        fmt = FixedPointFormat(total_bits=16, fraction_bits=8)
        codes = fmt.to_fixed([0.5, -0.5])
        assert codes.dtype == np.int64
        assert codes.tolist() == [128, -128]

    def test_quantization_error_bounded_by_lsb(self):
        fmt = FixedPointFormat(total_bits=16, fraction_bits=8)
        rng = np.random.default_rng(0)
        values = rng.uniform(-10, 10, size=1000)
        errors = fmt.quantization_error(values)
        assert np.max(np.abs(errors)) <= fmt.scale / 2 + 1e-12

    def test_invalid_formats_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(total_bits=1, fraction_bits=0)
        with pytest.raises(ConfigurationError):
            FixedPointFormat(total_bits=8, fraction_bits=8)

    def test_formats_registry(self):
        assert FORMATS["float32"] is None
        assert FORMATS["int16"].total_bits == 16
        assert FORMATS["int8"].total_bits == 8


class TestQuantizationSnr:
    def test_float_is_infinite(self):
        assert quantization_snr_db(np.array([1.0, 2.0]), None) == float("inf")

    def test_wider_format_has_higher_snr(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0, 1, size=2000)
        snr16 = quantization_snr_db(values, FORMATS["int16"])
        snr8 = quantization_snr_db(values, FORMATS["int8"])
        assert snr16 > snr8 > 0

    def test_zero_signal(self):
        assert quantization_snr_db(np.zeros(10), FORMATS["int8"]) == float("inf")
