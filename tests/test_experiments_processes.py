"""Process-executor parity: byte-identical results, store-shared compression."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentRunner, run_experiment
from repro.experiments.runner import EXECUTORS, _partition_indices
from repro.store import ArtifactStore
from repro.workloads.benchmarks import scaled_benchmarks
from repro.workloads.generator import WorkloadBuilder

#: 64x-smaller layers: same densities, fast sweeps.
SCALE = 64.0


@pytest.fixture(scope="module")
def builder() -> WorkloadBuilder:
    return WorkloadBuilder()


@pytest.fixture(scope="module")
def subset():
    specs = scaled_benchmarks(SCALE)
    return [specs["Alex-7"], specs["NT-We"]]


class TestPartitioning:
    def test_contiguous_cover_without_overlap(self):
        for count in (1, 2, 5, 8, 13):
            for parts in (1, 2, 3, 4, 16):
                chunks = _partition_indices(count, parts)
                flat = [index for chunk in chunks for index in chunk]
                assert flat == list(range(count))
                assert len(chunks) == min(parts, count)

    def test_near_equal_sizes(self):
        sizes = [len(chunk) for chunk in _partition_indices(10, 4)]
        assert sizes == [3, 3, 2, 2]


class TestExecutorValidation:
    def test_unknown_executor_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            ExperimentRunner(executor="cluster")

    def test_unknown_executor_rejected_at_run(self, builder, subset):
        runner = ExperimentRunner(builder=builder)
        with pytest.raises(ConfigurationError, match="unknown executor"):
            runner.run("fig8_fifo_depth", workloads=subset, executor="gpu")

    def test_executor_names_are_stable(self):
        assert EXECUTORS == ("serial", "threads", "processes")


class TestProcessParity:
    def _kwargs(self, subset):
        return dict(
            workloads=subset,
            grid={"fifo_depth": (1, 4, 8)},
            config={"num_pes": 16},
        )

    def test_processes_bit_identical_to_serial(self, builder, subset):
        runner = ExperimentRunner(builder=builder)
        serial = runner.run(
            "fig8_fifo_depth", executor="serial", jobs=4, **self._kwargs(subset)
        )
        processes = runner.run(
            "fig8_fifo_depth", executor="processes", jobs=3, **self._kwargs(subset)
        )
        assert processes.records == serial.records
        assert processes.to_table() == serial.to_table()
        assert serial.metadata["executor"] == "serial"
        assert processes.metadata["executor"] == "processes"

    def test_written_results_are_byte_identical(self, tmp_path, builder, subset):
        runner = ExperimentRunner(builder=builder)
        serial = runner.run(
            "fig8_fifo_depth", executor="serial", **self._kwargs(subset)
        )
        processes = runner.run(
            "fig8_fifo_depth", executor="processes", jobs=4, **self._kwargs(subset)
        )
        serial_txt, serial_json = serial.write(tmp_path / "serial")
        processes_txt, processes_json = processes.write(tmp_path / "processes")
        assert serial_txt.read_bytes() == processes_txt.read_bytes()
        assert serial_json.read_bytes() == processes_json.read_bytes()

    def test_volatile_metadata_not_serialized(self, builder, subset):
        result = run_experiment(
            "fig8_fifo_depth", builder=builder, workloads=subset,
            grid={"fifo_depth": (8,)}, config={"num_pes": 16},
        )
        payload = json.loads(result.to_json())
        assert "duration_s" not in payload["metadata"]
        assert "jobs" not in payload["metadata"]
        assert "executor" not in payload["metadata"]
        # They remain available on the in-memory result for reporting.
        assert "duration_s" in result.metadata

    def test_finalized_experiment_matches_across_executors(self, builder, subset):
        # fig6 finalizes with cross-point speedups versus a baseline point.
        runner = ExperimentRunner(builder=builder)
        serial = runner.run(
            "fig6_speedup", executor="serial", workloads=subset,
            config={"num_pes": 16},
        )
        processes = runner.run(
            "fig6_speedup", executor="processes", jobs=2, workloads=subset,
            config={"num_pes": 16},
        )
        assert processes.records == serial.records


class TestStoreSharedCompression:
    def test_cold_then_warm_model_storage_run(self, tmp_path, builder):
        store_root = tmp_path / "store"
        kwargs = dict(
            grid={"model": ("alexnet_fc",)},
            params={"scale": 64},
        )
        cold_runner = ExperimentRunner(
            builder=builder, store=ArtifactStore(store_root)
        )
        cold = cold_runner.run("model_storage", **kwargs)
        cold_stats = cold_runner.session.cache_info()["store"]
        assert cold_stats["stores"] > 0
        assert cold_stats["hits"] == 0

        warm_runner = ExperimentRunner(
            builder=builder, store=ArtifactStore(store_root)
        )
        warm = warm_runner.run("model_storage", **kwargs)
        warm_stats = warm_runner.session.cache_info()["store"]
        assert warm_stats["hits"] > 0
        assert warm_stats["stores"] == 0
        assert warm.records == cold.records

    def test_process_workers_populate_the_shared_store(self, tmp_path, builder):
        store = ArtifactStore(tmp_path / "store")
        runner = ExperimentRunner(builder=builder, store=store)
        result = runner.run(
            "model_storage",
            executor="processes",
            jobs=2,
            grid={"model": ("alexnet_fc", "neuraltalk_lstm")},
            params={"scale": 64},
        )
        assert len(result.records) == 2
        # Workers published their layers into the shared on-disk store...
        assert len(store.entries()) > 0
        # ...so a fresh serial run over the same grid is pure loads.
        warm_runner = ExperimentRunner(
            builder=WorkloadBuilder(), store=ArtifactStore(tmp_path / "store")
        )
        warm = warm_runner.run(
            "model_storage",
            grid={"model": ("alexnet_fc", "neuraltalk_lstm")},
            params={"scale": 64},
        )
        stats = warm_runner.session.cache_info()["store"]
        assert stats["hits"] > 0
        assert stats["stores"] == 0
        assert warm.records == result.records


class TestSessionStoreFallback:
    def test_workers_inherit_an_injected_sessions_store(self, tmp_path, builder):
        from repro.engine.session import Session

        store = ArtifactStore(tmp_path / "store")
        runner = ExperimentRunner(builder=builder, session=Session(store=store))
        assert runner.store is None  # store= was not passed explicitly
        runner.run(
            "model_storage",
            executor="processes",
            jobs=2,
            grid={"model": ("alexnet_fc",)},
            params={"scale": 64},
        )
        assert len(store.entries()) > 0  # workers published through the session's store
