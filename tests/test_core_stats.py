"""Tests for the statistics containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stats import EnergyStats, LoadBalanceStats, PerformanceStats


class TestLoadBalanceStats:
    def test_efficiency_definition(self):
        stats = LoadBalanceStats(busy_cycles=np.array([80, 60, 100, 40]), total_cycles=100, num_pes=4)
        assert stats.load_balance_efficiency == pytest.approx(0.7)
        assert stats.worst_pe_utilization == pytest.approx(0.4)
        assert stats.critical_pe_cycles == 100

    def test_stall_cycles(self):
        stats = LoadBalanceStats(busy_cycles=np.array([3, 5]), total_cycles=5, num_pes=2)
        assert stats.stall_cycles.tolist() == [2, 0]

    def test_degenerate_zero_cycles(self):
        stats = LoadBalanceStats(busy_cycles=np.array([0]), total_cycles=0, num_pes=1)
        assert stats.load_balance_efficiency == 1.0


class TestPerformanceStats:
    def test_throughput_metrics(self):
        stats = PerformanceStats(cycles=1000, time_s=1e-5, macs_performed=10_000, dense_macs=100_000)
        assert stats.time_us == pytest.approx(10.0)
        assert stats.frames_per_second == pytest.approx(1e5)
        assert stats.effective_gops == pytest.approx(2.0, rel=0.01)
        assert stats.dense_equivalent_gops == pytest.approx(20.0, rel=0.01)

    def test_dense_equivalent_exceeds_effective(self):
        stats = PerformanceStats(cycles=1, time_s=1e-6, macs_performed=100, dense_macs=3000)
        assert stats.dense_equivalent_gops == pytest.approx(30 * stats.effective_gops)

    def test_zero_time_guarded(self):
        stats = PerformanceStats(cycles=0, time_s=0.0, macs_performed=0, dense_macs=0)
        assert stats.effective_gops == 0.0
        assert stats.frames_per_second == 0.0


class TestEnergyStats:
    def test_unit_conversions(self):
        stats = EnergyStats(energy_j=2e-6, power_w=0.5)
        assert stats.energy_uj == pytest.approx(2.0)
        assert stats.energy_nj == pytest.approx(2000.0)
        assert stats.frames_per_joule() == pytest.approx(5e5)

    def test_zero_energy_guarded(self):
        assert EnergyStats(energy_j=0.0, power_w=1.0).frames_per_joule() == 0.0
