"""Artifact store: bit-identical round trips, corruption handling, Session wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.pipeline import (
    CompressionConfig,
    DeepCompressor,
    weights_fingerprint,
)
from repro.engine.session import Session
from repro.store import ArtifactStore, default_store_root, maybe_default_store, store_enabled
from repro.utils.rng import make_rng


@pytest.fixture
def weights():
    rng = make_rng(11)
    dense = rng.normal(0.0, 0.1, size=(96, 160))
    dense[rng.random(dense.shape) >= 0.2] = 0.0
    return dense


@pytest.fixture
def config():
    return CompressionConfig(target_density=0.15)


def compress(weights, config, num_pes=8):
    return DeepCompressor(config).compress(weights, num_pes=num_pes, name="fc")


class TestRoundTrip:
    def test_layer_round_trips_bit_identical(self, tmp_path, weights, config):
        store = ArtifactStore(tmp_path)
        layer = compress(weights, config)
        fingerprint = weights_fingerprint(np.asarray(weights, dtype=np.float64))
        store.store_layer(fingerprint, 8, config, layer)
        loaded = store.load_layer(fingerprint, 8, config, name="fc", activation_name="relu")

        assert loaded is not None
        assert loaded.shape == layer.shape
        assert loaded.num_pes == layer.num_pes
        assert loaded.storage_bits() == layer.storage_bits()
        assert loaded.huffman_storage_bits() == layer.huffman_storage_bits()
        assert np.array_equal(loaded.codebook.centroids, layer.codebook.centroids)
        assert loaded.codebook.index_bits == layer.codebook.index_bits
        assert np.array_equal(loaded.storage.to_dense(), layer.storage.to_dense())
        assert np.array_equal(loaded.dense_weights(), layer.dense_weights())
        assert loaded.metadata == layer.metadata
        for fresh, reread in zip(layer.storage.per_pe, loaded.storage.per_pe):
            assert np.array_equal(fresh.values, reread.values)
            assert reread.values.dtype == np.float64
            assert np.array_equal(fresh.runs, reread.runs)
            assert np.array_equal(fresh.col_ptr, reread.col_ptr)
            assert fresh.max_run == reread.max_run

    def test_loader_applies_caller_name_and_activation(self, tmp_path, weights, config):
        store = ArtifactStore(tmp_path)
        layer = compress(weights, config)
        fingerprint = weights_fingerprint(np.asarray(weights, dtype=np.float64))
        store.store_layer(fingerprint, 8, config, layer)
        loaded = store.load_layer(
            fingerprint, 8, config, name="model/fc6", activation_name="identity"
        )
        assert loaded.name == "model/fc6"
        assert loaded.activation_name == "identity"

    def test_distinct_configs_get_distinct_entries(self, tmp_path, weights, config):
        store = ArtifactStore(tmp_path)
        fingerprint = weights_fingerprint(np.asarray(weights, dtype=np.float64))
        other = CompressionConfig(target_density=0.1)
        store.store_layer(fingerprint, 8, config, compress(weights, config))
        store.store_layer(fingerprint, 8, other, compress(weights, other))
        store.store_layer(fingerprint, 4, config, compress(weights, config, num_pes=4))
        assert len(store.entries()) == 3
        assert store.load_layer(fingerprint, 4, config).num_pes == 4

    def test_miss_on_unknown_key(self, tmp_path, config):
        store = ArtifactStore(tmp_path)
        assert store.load_layer("no-such-fingerprint", 8, config) is None
        assert store.stats()["misses"] == 1
        assert store.stats()["errors"] == 0


class TestCorruption:
    def _stored(self, tmp_path, weights, config):
        store = ArtifactStore(tmp_path)
        fingerprint = weights_fingerprint(np.asarray(weights, dtype=np.float64))
        store.store_layer(fingerprint, 8, config, compress(weights, config))
        return store, fingerprint

    def test_truncated_entry_is_detected_and_removed(self, tmp_path, weights, config):
        store, fingerprint = self._stored(tmp_path, weights, config)
        (entry,) = store.entries()
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])
        assert store.load_layer(fingerprint, 8, config) is None
        assert store.stats()["errors"] == 1
        assert store.entries() == []  # corrupt entry deleted, next store rewrites

    def test_garbage_entry_is_detected_and_removed(self, tmp_path, weights, config):
        store, fingerprint = self._stored(tmp_path, weights, config)
        (entry,) = store.entries()
        entry.write_bytes(b"this is not an npz archive")
        assert store.load_layer(fingerprint, 8, config) is None
        assert store.stats()["errors"] == 1
        assert store.entries() == []

    def test_corrupt_entry_is_recomputed_through_session(self, tmp_path, weights, config):
        store, fingerprint = self._stored(tmp_path, weights, config)
        (entry,) = store.entries()
        entry.write_bytes(b"\x00" * 128)
        session = Session(config, store=store)
        layer = session.compress(weights, num_pes=8, name="fc")
        reference = compress(weights, config)
        assert np.array_equal(layer.storage.to_dense(), reference.storage.to_dense())
        # Detected corruption -> miss -> recompress -> entry republished.
        assert store.stats()["errors"] == 1
        assert len(store.entries()) == 1

    def test_partial_writes_are_never_visible(self, tmp_path, weights, config):
        import os
        import time

        store, fingerprint = self._stored(tmp_path, weights, config)
        # An abandoned temp file (a crashed writer) is not a store entry.
        stale = store.root / "layers" / ".deadbeef.partial.tmp"
        stale.write_bytes(b"partial")
        old = time.time() - 2 * ArtifactStore.STALE_TMP_SECONDS
        os.utime(stale, (old, old))
        assert len(store.entries()) == 1
        assert store.clear() == 1
        assert store.entries() == []
        assert not stale.exists()


class TestSessionIntegration:
    def test_cold_then_warm_across_sessions(self, tmp_path, weights, config):
        store = ArtifactStore(tmp_path)
        cold = Session(config, store=store)
        layer = cold.compress(weights, num_pes=8, name="fc")
        info = cold.cache_info()
        assert info["store"]["hits"] == 0
        assert info["store"]["misses"] == 1
        assert info["store"]["stores"] == 1
        assert info["store"]["errors"] == 0
        # The aggregate counters break down per artifact kind.
        assert info["store"]["by_kind"]["layers"]["stores"] == 1
        assert info["store"]["by_kind"]["models"]["stores"] == 0

        warm_store = ArtifactStore(tmp_path)
        warm = Session(config, store=warm_store)
        loaded = warm.compress(weights, num_pes=8, name="fc")
        info = warm.cache_info()
        assert info["store"]["hits"] == 1
        assert info["store"]["stores"] == 0
        assert np.array_equal(loaded.storage.to_dense(), layer.storage.to_dense())
        assert loaded.storage_bits() == layer.storage_bits()

        # In-process LRU still short-circuits the store on repeat calls.
        warm.compress(weights, num_pes=8, name="fc")
        assert warm.cache_info()["layers"]["hits"] == 1
        assert warm.cache_info()["store"]["hits"] == 1

    def test_session_without_store_reports_zero_stats(self, weights, config):
        session = Session(config)
        session.compress(weights, num_pes=8)
        assert session.cache_info()["store"] == ArtifactStore.zero_stats()

    def test_store_describe_and_size(self, tmp_path, weights, config):
        store = ArtifactStore(tmp_path)
        session = Session(config, store=store)
        session.compress(weights, num_pes=8)
        description = store.describe()
        assert description["entries"] == 1
        assert description["size_bytes"] > 0
        assert description["root"] == str(tmp_path)


class TestDefaults:
    def test_env_root_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "elsewhere"))
        assert default_store_root() == tmp_path / "elsewhere"

    def test_store_disable_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert store_enabled()
        monkeypatch.setenv("REPRO_STORE", "0")
        assert not store_enabled()
        assert maybe_default_store() is None
        monkeypatch.setenv("REPRO_STORE", "1")
        assert maybe_default_store() is not None


class TestDegradedStores:
    def test_unwritable_root_degrades_to_cache_off(self, tmp_path, weights, config):
        # The root path runs through a regular file: mkdir must fail.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = ArtifactStore(blocker / "store")
        session = Session(config, store=store)
        layer = session.compress(weights, num_pes=8, name="fc")
        reference = compress(weights, config)
        assert np.array_equal(layer.storage.to_dense(), reference.storage.to_dense())
        assert store.stats()["errors"] >= 1
        assert store.stats()["hits"] == 0

    def test_store_layer_reports_none_on_failure(self, tmp_path, weights, config):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = ArtifactStore(blocker / "store")
        fingerprint = weights_fingerprint(np.asarray(weights, dtype=np.float64))
        assert store.store_layer(fingerprint, 8, config, compress(weights, config)) is None

    def test_clear_spares_fresh_tmp_files(self, tmp_path, weights, config):
        import os
        import time

        store = ArtifactStore(tmp_path)
        fingerprint = weights_fingerprint(np.asarray(weights, dtype=np.float64))
        store.store_layer(fingerprint, 8, config, compress(weights, config))
        fresh = store.root / "layers" / ".inflight.123.tmp"
        fresh.write_bytes(b"a writer is mid-publish")
        stale = store.root / "layers" / ".abandoned.456.tmp"
        stale.write_bytes(b"crashed writer leftovers")
        old = time.time() - 2 * ArtifactStore.STALE_TMP_SECONDS
        os.utime(stale, (old, old))
        assert store.clear() == 1
        assert fresh.exists()  # in-flight writer keeps its temp file
        assert not stale.exists()


class TestLifetimeCounters:
    def _age(self, path, factor=2):
        import os
        import time

        old = time.time() - factor * ArtifactStore.STALE_TMP_SECONDS
        os.utime(path, (old, old))

    def test_counters_persist_across_store_handles(self, tmp_path, weights, config):
        store = ArtifactStore(tmp_path)
        fingerprint = weights_fingerprint(np.asarray(weights, dtype=np.float64))
        store.store_layer(fingerprint, 8, config, compress(weights, config))
        (entry,) = store.entries()
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])

        # A *fresh* handle (new process, say) sees the truncated entry,
        # deletes it and recompresses — and the damage is on the record.
        reopened = ArtifactStore(tmp_path)
        session = Session(config, store=reopened)
        session.compress(weights, num_pes=8, name="fc")
        counters = ArtifactStore(tmp_path).lifetime_counters()
        assert counters["corrupt_entries"] == 1
        assert counters["stored_entries"] == 2  # original + recompute
        assert ArtifactStore(tmp_path).describe()["lifetime"] == counters

    def test_counters_default_to_zero(self, tmp_path):
        counters = ArtifactStore(tmp_path).lifetime_counters()
        assert counters == {
            key: 0 for key in ArtifactStore.LIFETIME_COUNTERS
        }

    def test_sweep_removes_only_abandoned_tmp(self, tmp_path, weights, config):
        store = ArtifactStore(tmp_path)
        fingerprint = weights_fingerprint(np.asarray(weights, dtype=np.float64))
        store.store_layer(fingerprint, 8, config, compress(weights, config))
        fresh = store.root / "layers" / ".inflight.1.tmp"
        fresh.write_bytes(b"mid-publish")
        stale = store.root / "layers" / ".abandoned.2.tmp"
        stale.write_bytes(b"leftovers")
        self._age(stale)

        assert store.sweep_stale_tmp() == 1
        assert fresh.exists()
        assert not stale.exists()
        assert len(store.entries()) == 1  # real entries are never swept
        assert store.lifetime_counters()["swept_tmp_files"] == 1
        # An explicit negative max age force-sweeps even in-flight files.
        assert store.sweep_stale_tmp(max_age_s=-1.0) == 1
        assert not fresh.exists()

    def test_first_store_sweeps_opportunistically(self, tmp_path, weights, config):
        orphan = tmp_path / "layers" / ".crashed.9.tmp"
        orphan.parent.mkdir(parents=True)
        orphan.write_bytes(b"from a previous run")
        self._age(orphan)

        store = ArtifactStore(tmp_path)
        fingerprint = weights_fingerprint(np.asarray(weights, dtype=np.float64))
        store.store_layer(fingerprint, 8, config, compress(weights, config))
        assert not orphan.exists()
        assert store.lifetime_counters()["swept_tmp_files"] == 1
