"""Tests for the model-level experiments (model_storage, model_speedup)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentRegistry, run_experiment

TINY = {"scale": 64}


class TestRegistration:
    def test_model_experiments_are_registered(self):
        names = ExperimentRegistry.names()
        assert "model_storage" in names and "model_speedup" in names

    def test_describe_lists_the_model_axis(self):
        description = ExperimentRegistry.describe("model_speedup")
        assert description["axes"] == ["model"]
        assert description["default_spec"]["grid"]["model"] == [
            "alexnet_fc", "vgg_fc", "neuraltalk_lstm"
        ]


class TestModelStorage:
    def test_reports_one_record_per_model(self):
        result = run_experiment(
            "model_storage", params=TINY, config={"num_pes": 4}
        )
        assert [r["model"] for r in result.records] == [
            "alexnet_fc", "vgg_fc", "neuraltalk_lstm"
        ]
        for record in result.records:
            assert record["dense_kib"] > 0
            assert record["compressed_kib"] > 0
            assert record["compression_ratio"] == pytest.approx(
                record["dense_kib"] / record["compressed_kib"]
            )
        rendered = result.to_table()
        assert "Whole-model Deep Compression storage:" in rendered
        json.dumps(result.to_dict())  # records stay JSON-serializable

    def test_grid_subset_restricts_the_sweep(self):
        result = run_experiment(
            "model_storage", params=TINY, config={"num_pes": 4},
            grid={"model": ("alexnet_fc",)},
        )
        assert [r["model"] for r in result.records] == ["alexnet_fc"]

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            run_experiment("model_storage", params={"bogus": 1})

    def test_compression_overlay_is_honoured(self):
        default = run_experiment(
            "model_storage", params=TINY, config={"num_pes": 4},
            grid={"model": ("alexnet_fc",)},
        )
        pruned = run_experiment(
            "model_storage", params=TINY, config={"num_pes": 4},
            grid={"model": ("alexnet_fc",)},
            compression={"target_density": 0.04},
        )
        assert pruned.records[0]["weight_density"] == pytest.approx(0.04, abs=0.01)
        assert pruned.records[0]["weight_density"] < default.records[0]["weight_density"]


class TestModelSpeedup:
    def test_reports_latency_energy_and_speedup(self):
        result = run_experiment(
            "model_speedup", params={**TINY, "batch": 2}, config={"num_pes": 4},
            grid={"model": ("neuraltalk_lstm",)},
        )
        (record,) = result.records
        assert record["nodes"] == 4
        assert record["total_cycles"] > 0
        assert record["latency_us_per_frame"] > 0
        assert record["energy_uj_per_frame"] > 0
        assert record["speedup_vs_cpu_dense"] == pytest.approx(
            record["cpu_dense_us_per_frame"] / record["latency_us_per_frame"]
        )
        assert "Whole-model EIE latency/energy vs CPU dense:" in result.to_table()

    def test_shared_session_deduplicates_across_repeats(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner()
        runner.run("model_speedup", params=TINY, config={"num_pes": 4},
                   grid={"model": ("alexnet_fc",)})
        runner.run("model_speedup", params=TINY, config={"num_pes": 4},
                   grid={"model": ("alexnet_fc",)})
        # The second run reuses the compressed model from the shared session.
        assert runner.session.cache_info()["models"]["hits"] >= 1

    def test_results_are_deterministic(self):
        first = run_experiment("model_speedup", params=TINY, config={"num_pes": 4},
                               grid={"model": ("vgg_fc",)})
        second = run_experiment("model_speedup", params=TINY, config={"num_pes": 4},
                                grid={"model": ("vgg_fc",)})
        assert first.records == second.records
