"""Smoke tests: every script in examples/ must run end to end.

The examples double as executable documentation but had no coverage, so they
could rot silently.  Each one is executed in a subprocess at a tiny scale
(via the ``REPRO_EXAMPLE_SCALE`` knob the scripts honour) and must exit 0 and
print something.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Scale divisor applied to every example that exposes the knob; large enough
#: that even the full-size sections stay small.
SMOKE_SCALE = "64"


def test_every_example_is_covered():
    """A new example script automatically joins the smoke suite."""
    assert EXAMPLES, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_clean(script: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_EXAMPLE_SCALE"] = SMOKE_SCALE
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed (exit {completed.returncode}):\n"
        f"--- stdout ---\n{completed.stdout}\n--- stderr ---\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
