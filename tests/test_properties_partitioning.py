"""Property-based tests for the partitioning strategies and workload builder."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import (
    simulate_block_2d,
    simulate_column_partitioned,
    simulate_row_interleaved,
)
from repro.workloads.benchmarks import LayerSpec
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.synthetic import generate_activations, generate_sparse_pattern

SETTINGS = settings(max_examples=20, deadline=None)


@st.composite
def pattern_and_activations(draw):
    rows = draw(st.integers(8, 120))
    cols = draw(st.integers(4, 60))
    weight_density = draw(st.floats(0.02, 0.5))
    activation_density = draw(st.floats(0.05, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    pattern = generate_sparse_pattern(rows, cols, weight_density, rng=seed)
    activations = generate_activations(cols, activation_density, rng=seed + 1)
    return pattern, activations


class TestPartitioningProperties:
    @SETTINGS
    @given(data=pattern_and_activations(), num_pes=st.sampled_from([1, 2, 4, 8, 16]))
    def test_work_conservation_across_strategies(self, data, num_pes):
        pattern, activations = data
        column = simulate_column_partitioned(pattern, activations, num_pes)
        block = simulate_block_2d(pattern, activations, num_pes)
        row = simulate_row_interleaved(pattern, activations, num_pes, max_run=10**6)
        # Without padding all strategies perform exactly one MAC per non-zero
        # weight whose column has a non-zero activation.
        nonzero_mask = activations != 0.0
        expected = int(pattern.column_nnz()[nonzero_mask].sum())
        assert column.total_work == expected
        assert block.total_work == expected
        assert row.total_work == expected

    @SETTINGS
    @given(data=pattern_and_activations(), num_pes=st.sampled_from([2, 4, 8]))
    def test_structural_invariants(self, data, num_pes):
        pattern, activations = data
        for simulate in (simulate_column_partitioned, simulate_row_interleaved, simulate_block_2d):
            result = simulate(pattern, activations, num_pes)
            assert result.per_pe_work.shape == (num_pes,)
            assert result.compute_cycles >= int(result.per_pe_work.max(initial=0))
            assert 0.0 <= result.load_balance_efficiency <= 1.0
            assert 0 <= result.idle_pes <= num_pes
            assert result.total_cycles >= result.compute_cycles

    @SETTINGS
    @given(data=pattern_and_activations())
    def test_row_interleaving_never_needs_reduction(self, data):
        pattern, activations = data
        result = simulate_row_interleaved(pattern, activations, num_pes=4)
        assert result.reduction_words == 0
        assert result.communication_cycles == 0


class TestWorkloadBuilderProperties:
    @SETTINGS
    @given(
        rows=st.integers(16, 200),
        cols=st.integers(8, 80),
        weight_density=st.floats(0.03, 0.4),
        activation_density=st.floats(0.1, 1.0),
        num_pes=st.sampled_from([1, 2, 4, 8]),
        seed=st.integers(0, 2**20),
    )
    def test_workload_totals_consistent(
        self, rows, cols, weight_density, activation_density, num_pes, seed
    ):
        spec = LayerSpec(
            name=f"prop-{seed}",
            input_size=cols,
            output_size=rows,
            weight_density=weight_density,
            activation_density=activation_density,
            seed=seed,
        )
        workload = WorkloadBuilder().build(spec, num_pes)
        # Touched entries can never exceed the whole matrix's stored entries,
        # and the padding accounting must be internally consistent.
        assert workload.touched_entries <= workload.total_entries
        assert workload.total_entries == workload.true_nonzeros + workload.total_padding
        assert int(workload.padding_work.sum()) <= workload.total_padding
        assert workload.work.shape == (num_pes, workload.broadcasts)
        assert np.all(workload.padding_work <= workload.work)
