"""Tests for the whole-array functional simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EIEConfig
from repro.core.functional import FunctionalEIE
from repro.errors import SimulationError
from repro.nn.fixed_point import FixedPointFormat


class TestFunctionalEIE:
    def test_matches_dense_reference_with_relu(self, compressed_layer, small_config, dense_activations):
        simulator = FunctionalEIE(compressed_layer, small_config)
        result = simulator.run(dense_activations)
        expected = np.maximum(compressed_layer.dense_weights() @ dense_activations, 0.0)
        assert np.allclose(result.output, expected)

    def test_pre_activation_matches_dense(self, compressed_layer, small_config, dense_activations):
        simulator = FunctionalEIE(compressed_layer, small_config)
        result = simulator.run(dense_activations, apply_nonlinearity=False)
        expected = compressed_layer.dense_weights() @ dense_activations
        assert np.allclose(result.output, expected)
        assert np.allclose(result.pre_activation, expected)

    def test_broadcast_count_equals_nonzero_activations(
        self, compressed_layer, small_config, dense_activations
    ):
        result = FunctionalEIE(compressed_layer, small_config).run(dense_activations)
        assert result.broadcasts == np.count_nonzero(dense_activations)
        assert result.activation_density == pytest.approx(
            np.count_nonzero(dense_activations) / dense_activations.size
        )

    def test_zero_columns_never_processed(self, compressed_layer, small_config):
        activations = np.zeros(compressed_layer.cols)
        activations[5] = 1.0
        result = FunctionalEIE(compressed_layer, small_config).run(activations)
        per_pe_counts = compressed_layer.storage.entries_per_pe_column()
        assert result.total_entries_processed == int(per_pe_counts[:, 5].sum())

    def test_all_zero_input(self, compressed_layer, small_config):
        result = FunctionalEIE(compressed_layer, small_config).run(np.zeros(compressed_layer.cols))
        assert result.broadcasts == 0
        assert np.all(result.output == 0.0)

    def test_per_pe_entry_distribution_sums(self, compressed_layer, small_config, dense_activations):
        result = FunctionalEIE(compressed_layer, small_config).run(dense_activations)
        assert result.per_pe_entries.sum() == result.total_entries_processed
        assert result.per_pe_entries.shape == (small_config.num_pes,)

    def test_output_density_reported(self, compressed_layer, small_config, dense_activations):
        result = FunctionalEIE(compressed_layer, small_config).run(dense_activations)
        assert 0.0 <= result.output_density <= 1.0

    def test_wrong_activation_length_rejected(self, compressed_layer, small_config):
        simulator = FunctionalEIE(compressed_layer, small_config)
        with pytest.raises(SimulationError):
            simulator.run(np.zeros(compressed_layer.cols + 1))

    def test_pe_count_mismatch_rejected(self, compressed_layer):
        with pytest.raises(SimulationError):
            FunctionalEIE(compressed_layer, EIEConfig(num_pes=8))

    def test_fixed_point_mode_close_to_float(self, compressed_layer, small_config, dense_activations):
        fmt = FixedPointFormat(total_bits=16, fraction_bits=8)
        float_result = FunctionalEIE(compressed_layer, small_config).run(dense_activations)
        fixed_result = FunctionalEIE(compressed_layer, small_config, fixed_point=fmt).run(
            dense_activations
        )
        assert np.allclose(float_result.output, fixed_result.output, atol=0.2)

    def test_repeated_runs_are_independent(self, compressed_layer, small_config, dense_activations):
        simulator = FunctionalEIE(compressed_layer, small_config)
        first = simulator.run(dense_activations)
        second = simulator.run(dense_activations)
        assert np.allclose(first.output, second.output)

    def test_counters_aggregated(self, compressed_layer, small_config, dense_activations):
        result = FunctionalEIE(compressed_layer, small_config).run(dense_activations)
        assert result.counters.macs == result.total_entries_processed
        assert result.counters.ptr_sram_reads == 2 * result.broadcasts * small_config.num_pes
