"""Tests for the Table I energy table and the EnergyModel."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.energy import (
    ENERGY_TABLE_45NM,
    EnergyBreakdown,
    EnergyModel,
    add_energy_pj,
    multiply_energy_pj,
)


class TestEnergyTable:
    def test_table1_values_match_paper(self):
        table = ENERGY_TABLE_45NM
        assert table.int32_add_pj == pytest.approx(0.1)
        assert table.float32_add_pj == pytest.approx(0.9)
        assert table.int32_mult_pj == pytest.approx(3.1)
        assert table.float32_mult_pj == pytest.approx(3.7)
        assert table.sram32_read_pj == pytest.approx(5.0)
        assert table.dram32_read_pj == pytest.approx(640.0)

    def test_relative_costs(self):
        operations = {op.name: op for op in ENERGY_TABLE_45NM.as_operations()}
        assert operations["32 bit int ADD"].relative_cost == pytest.approx(1.0)
        assert operations["32 bit DRAM"].relative_cost == pytest.approx(6400.0)
        assert operations["32 bit 32KB SRAM"].relative_cost == pytest.approx(50.0)

    def test_dram_is_128x_sram(self):
        assert ENERGY_TABLE_45NM.dram_over_sram == pytest.approx(128.0)

    def test_operation_total(self):
        operation = ENERGY_TABLE_45NM.as_operations()[0]
        assert operation.total_pj(10) == pytest.approx(10 * operation.energy_pj)


class TestMultiplyEnergy:
    def test_16bit_is_5x_cheaper_than_32bit_fixed(self):
        ratio = multiply_energy_pj("int32") / multiply_energy_pj("int16")
        assert ratio == pytest.approx(5.0, rel=0.01)

    def test_16bit_vs_float32_ratio(self):
        ratio = multiply_energy_pj("float32") / multiply_energy_pj("int16")
        assert 5.5 < ratio < 7.0  # the paper quotes 6.2x

    def test_monotone_with_precision(self):
        assert (
            multiply_energy_pj("int8")
            < multiply_energy_pj("int16")
            < multiply_energy_pj("int32")
            < multiply_energy_pj("float32")
        )

    def test_unknown_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            multiply_energy_pj("int4")

    def test_add_energy_scales_down(self):
        assert add_energy_pj("int16") < add_energy_pj("int32") < add_energy_pj("float32")


class TestEnergyBreakdown:
    def test_total_sums_components(self):
        breakdown = EnergyBreakdown(sram_read_pj=1.0, dram_read_pj=2.0, multiply_pj=3.0, add_pj=4.0)
        assert breakdown.total_pj == pytest.approx(10.0)
        assert breakdown.total_nj == pytest.approx(0.01)

    def test_scaled(self):
        breakdown = EnergyBreakdown(sram_read_pj=1.0, multiply_pj=2.0)
        doubled = breakdown.scaled(2.0)
        assert doubled.total_pj == pytest.approx(6.0)


class TestEnergyModel:
    def test_dense_baseline_dominated_by_dram(self):
        model = EnergyModel(precision="float32")
        breakdown = model.dense_baseline_energy(rows=100, cols=100)
        assert breakdown.dram_read_pj > 0.8 * breakdown.total_pj

    def test_compressed_sram_cheaper_than_dense_dram(self):
        model = EnergyModel(precision="int16")
        dense = model.dense_baseline_energy(rows=200, cols=200)
        compressed = model.matrix_vector_energy(
            weight_reads=int(200 * 200 * 0.1),
            weight_bits=8,
            activation_reads=int(200 * 0.3),
            activation_bits=16,
            macs=int(200 * 200 * 0.1 * 0.3),
            weight_location="sram",
        )
        assert compressed.total_pj < dense.total_pj / 100

    def test_theoretical_saving_factors_match_paper_decomposition(self):
        model = EnergyModel()
        factors = model.theoretical_saving_factors(weight_density=0.1, activation_density=1 / 3)
        assert factors["sparsity"] == pytest.approx(10.0)
        assert factors["weight_sharing"] == pytest.approx(8.0)
        assert factors["activation_sparsity"] == pytest.approx(3.0)
        assert factors["dram_to_sram"] == pytest.approx(128.0)
        # The paper rounds the product to ~28,800x.
        assert 25_000 < factors["total"] < 32_000

    def test_invalid_density_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel().theoretical_saving_factors(weight_density=0.0, activation_density=0.5)

    def test_memory_read_energy_scales_with_bits(self):
        model = EnergyModel()
        assert model.memory_read_energy_pj(64, "sram") == pytest.approx(
            2 * model.memory_read_energy_pj(32, "sram")
        )

    def test_invalid_location_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel().memory_read_energy_pj(32, "flash")

    def test_mac_energy_positive(self):
        assert EnergyModel(precision="int16").mac_energy_pj() > 0
