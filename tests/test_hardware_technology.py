"""Tests for technology-node scaling."""

from __future__ import annotations

import pytest

from repro.hardware.technology import (
    NODE_28NM,
    NODE_45NM,
    TechnologyNode,
    project,
    scale_area,
    scale_frequency,
    scale_power,
)


class TestScaling:
    def test_area_scales_quadratically(self):
        assert scale_area(100.0, NODE_45NM, NODE_28NM) == pytest.approx(100.0 * (28 / 45) ** 2)

    def test_frequency_scales_inversely_with_feature(self):
        assert scale_frequency(800.0, NODE_45NM, NODE_28NM) == pytest.approx(800.0 * 45 / 28)

    def test_power_scaling_reduces_power_at_same_frequency(self):
        scaled = scale_power(1.0, NODE_45NM, NODE_28NM, frequency_ratio=1.0)
        assert scaled < 1.0

    def test_identity_scaling(self):
        assert scale_area(5.0, NODE_45NM, NODE_45NM) == pytest.approx(5.0)
        assert scale_frequency(5.0, NODE_45NM, NODE_45NM) == pytest.approx(5.0)

    def test_node_validation(self):
        with pytest.raises(Exception):
            TechnologyNode(feature_nm=-1, supply_v=1.0)


class TestProjection:
    def test_64pe_projection_to_28nm(self):
        projected = project(area_mm2=40.8, power_w=0.59, clock_mhz=800.0)
        # Clock should land near the paper's 1200 MHz 28 nm assumption.
        assert 1100 < projected["clock_mhz"] < 1400
        assert projected["area_mm2"] < 40.8
        assert projected["power_w"] < 0.59 * 2  # never blows up

    def test_projection_keys(self):
        projected = project(10.0, 1.0, 500.0)
        assert set(projected) == {"area_mm2", "power_w", "clock_mhz"}
