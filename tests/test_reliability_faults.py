"""Fault injector: determinism, BER-0/ECC identities, tolerant reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.pipeline import CompressionConfig, DeepCompressor
from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.errors import ConfigurationError
from repro.models import build_model
from repro.reliability.faults import (
    REGIONS,
    FaultConfig,
    _pack_fields,
    _ptr_fields,
    _rebuild_storage,
    _spmat_fields,
    inject_layer_faults,
    inject_model_faults,
)


@pytest.fixture(scope="module")
def layer():
    rng = np.random.default_rng(5)
    dense = rng.normal(0.0, 0.1, size=(48, 40))
    dense[rng.random(dense.shape) >= 0.25] = 0.0
    return DeepCompressor(CompressionConfig()).compress(dense, num_pes=4, name="fc")


def _find_seed(layer, ber, scheme, predicate, tries=64):
    """First seed whose injection satisfies ``predicate`` — deterministic."""
    for seed in range(tries):
        injection = inject_layer_faults(
            layer, FaultConfig(ber=ber, scheme=scheme, seed=seed)
        )
        if predicate(injection):
            return seed, injection
    raise AssertionError(f"no seed in range({tries}) satisfies the predicate")


class TestConfigValidation:
    def test_ber_bounds(self):
        with pytest.raises(ConfigurationError, match="ber"):
            FaultConfig(ber=-0.1)
        with pytest.raises(ConfigurationError, match="ber"):
            FaultConfig(ber=1.0)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="chipkill"):
            FaultConfig(ber=0.0, scheme="chipkill")

    def test_pointer_bits(self):
        with pytest.raises(ConfigurationError, match="pointer_bits"):
            FaultConfig(ber=0.0, pointer_bits=0)

    def test_pointer_width_too_narrow_for_layer(self, layer):
        with pytest.raises(ConfigurationError, match="pointer"):
            inject_layer_faults(layer, FaultConfig(ber=0.0, pointer_bits=4))


class TestIdentities:
    def test_ber_zero_returns_the_original_object(self, layer):
        for scheme in ("none", "parity", "secded"):
            injection = inject_layer_faults(
                layer, FaultConfig(ber=0.0, scheme=scheme, seed=3)
            )
            assert injection.layer is layer
            assert not injection.changed
            assert injection.counters["flips"] == 0
            assert injection.counters["stored_bits"] > 0
            assert set(injection.regions) == set(REGIONS)

    def test_unfaulted_rebuild_is_bit_identical(self, layer):
        config = FaultConfig(ber=0.0)
        storage = _rebuild_storage(
            layer,
            _pack_fields(_spmat_fields(layer), layer.codebook.index_bits),
            _pack_fields(_ptr_fields(layer), config.pointer_bits),
            config,
        )
        for fresh, rebuilt in zip(layer.storage.per_pe, storage.per_pe):
            assert np.array_equal(fresh.values, rebuilt.values)
            assert np.array_equal(fresh.runs, rebuilt.runs)
            assert np.array_equal(fresh.col_ptr, rebuilt.col_ptr)

    def test_secded_with_only_single_flip_words_recovers_the_original(self, layer):
        _, injection = _find_seed(
            layer, 1e-4, "secded",
            lambda inj: inj.counters["flips"] > 0
            and inj.counters["multi_flip_words"] == 0,
        )
        assert injection.layer is layer
        assert not injection.changed
        assert injection.counters["corrected_words"] == injection.counters["faulted_words"]
        assert injection.counters["silent_words"] == 0

    def test_parity_detects_every_odd_flip_word(self, layer):
        _, injection = _find_seed(
            layer, 1e-4, "parity",
            lambda inj: inj.counters["flips"] > 0
            and inj.counters["multi_flip_words"] == 0,
        )
        # All-single-flip words: parity detects each one, golden reload wins.
        assert injection.layer is layer
        assert injection.counters["detected_words"] == injection.counters["faulted_words"]


class TestDeterminism:
    def test_same_config_reproduces_the_same_faults(self, layer):
        config = FaultConfig(ber=5e-3, scheme="none", seed=7)
        first = inject_layer_faults(layer, config)
        second = inject_layer_faults(layer, config)
        assert first.changed
        assert first.counters == second.counters
        assert first.regions == second.regions
        assert np.array_equal(
            first.layer.dense_weights(), second.layer.dense_weights()
        )

    def test_different_seeds_fault_differently(self, layer):
        config_a = FaultConfig(ber=5e-3, scheme="none", seed=7)
        config_b = FaultConfig(ber=5e-3, scheme="none", seed=8)
        first = inject_layer_faults(layer, config_a)
        second = inject_layer_faults(layer, config_b)
        assert not np.array_equal(
            first.layer.dense_weights(), second.layer.dense_weights()
        )


class TestFaultedLayers:
    def test_faulted_layer_is_a_valid_compressed_layer(self, layer):
        injection = inject_layer_faults(layer, FaultConfig(ber=1e-2, seed=1))
        assert injection.changed
        faulted = injection.layer
        assert faulted is not layer
        assert faulted.shape == layer.shape
        assert faulted.num_pes == layer.num_pes
        # The dense image decodes (validating constructors accepted it) and
        # genuinely differs from the golden weights.
        assert faulted.dense_weights().shape == layer.dense_weights().shape
        assert not np.array_equal(faulted.dense_weights(), layer.dense_weights())
        # The golden layer object was never mutated.
        assert np.array_equal(
            layer.dense_weights(),
            DeepCompressor(CompressionConfig())
            .compress(layer.dense_weights(), num_pes=4, name="fc")
            .dense_weights(),
        )

    def test_codebook_zero_entry_is_never_faulted(self, layer):
        injection = inject_layer_faults(layer, FaultConfig(ber=5e-2, seed=2))
        assert injection.regions["codebook"]["data_flips"] > 0
        assert injection.layer.codebook.centroids[0] == 0.0


class TestModelInjection:
    @pytest.fixture(scope="class")
    def compressed(self):
        model = build_model("neuraltalk_lstm", scale=32)
        session = Session(config=EIEConfig(num_pes=8))
        return session.compress_model(model, 8)

    def test_model_counters_aggregate_unique_layers(self, compressed):
        injection = inject_model_faults(compressed, FaultConfig(ber=1e-3, seed=11))
        totals = {key: 0 for key in injection.counters}
        for per_layer in injection.layers.values():
            for key, value in per_layer.counters.items():
                totals[key] += value
        assert totals == injection.counters
        assert len(injection.layers) == len(
            {id(obj) for obj in compressed.layers.values()}
        )

    def test_shared_layers_share_the_faulted_object(self, compressed):
        injection = inject_model_faults(compressed, FaultConfig(ber=1e-3, seed=11))
        for name_a, original_a in compressed.layers.items():
            for name_b, original_b in compressed.layers.items():
                if original_a is original_b:
                    assert injection.model.layers[name_a] is injection.model.layers[name_b]

    def test_original_model_object_is_untouched(self, compressed):
        golden = {
            name: obj.dense_weights() for name, obj in compressed.layers.items()
        }
        injection = inject_model_faults(compressed, FaultConfig(ber=1e-2, seed=4))
        assert injection.model is not compressed
        for name, weights in golden.items():
            assert np.array_equal(compressed.layers[name].dense_weights(), weights)

    def test_rejects_non_compressed_models(self):
        with pytest.raises(ConfigurationError, match="CompressedModel"):
            inject_model_faults(object(), FaultConfig(ber=0.0))
