"""Thread-safety stress tests for the Session LRU caches.

The serving layer reads ``cache_info()`` (stats endpoint) while batcher and
pipeline threads churn the engine/prepared caches.  The pre-fix
``cache_info`` iterated ``_engine_cache`` without the session lock, which
dies with ``RuntimeError``/``KeyError`` as soon as a concurrent
``_cache_put`` inserts or LRU-evicts mid-iteration — reproducibly within
~100ms of churn.  These tests pin the fixed behaviour: snapshots taken
under the lock are always self-consistent, whatever the interleaving.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compression.pipeline import CompressionConfig
from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.utils.rng import make_rng

#: Per-thread loop count: large enough that an unlocked cache_info reliably
#: hits a mid-iteration mutation, small enough to keep the suite fast.
ITERATIONS = 300


def _run_threads(workers, observers):
    """Start churn + observer threads, collect exceptions from all of them."""
    failures: list[BaseException] = []
    barrier = threading.Barrier(len(workers) + len(observers))
    stop = threading.Event()

    def wrap(fn, *args):
        def runner():
            barrier.wait()
            try:
                fn(*args)
            except BaseException as exc:  # surfaced via the failures list
                failures.append(exc)
                stop.set()

        return threading.Thread(target=runner)

    worker_threads = [wrap(fn, *args) for fn, *args in workers]
    observer_threads = [wrap(fn, stop, *args) for fn, *args in observers]
    for thread in worker_threads + observer_threads:
        thread.start()
    for thread in worker_threads:
        thread.join()
    stop.set()
    for thread in observer_threads:
        thread.join()
    if failures:
        raise failures[0]


class TestCacheInfoUnderChurn:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_threads=st.integers(min_value=2, max_value=4),
        distinct_keys=st.integers(min_value=6, max_value=12),
        bound=st.integers(min_value=2, max_value=4),
    )
    def test_engine_cache_snapshots_stay_consistent(
        self, num_threads, distinct_keys, bound
    ):
        """cache_info during insert/evict churn never tears or crashes."""
        session = Session(max_engines=bound)

        def churn(offset: int) -> None:
            for i in range(ITERATIONS):
                fifo_depth = 1 + ((i + offset) % distinct_keys)
                session.engine(
                    "functional", EIEConfig(num_pes=4, fifo_depth=fifo_depth)
                )

        def observe(stop: threading.Event) -> None:
            while not stop.is_set():
                info = session.cache_info()["engines"]
                assert 0 <= info["entries"] <= bound
                assert sum(info["by_engine"].values()) == info["entries"]
                assert info["hits"] >= 0

        _run_threads(
            workers=[(churn, tid) for tid in range(num_threads)],
            observers=[(observe,), (observe,)],
        )
        # distinct_keys > bound, so the cache ends exactly at its bound and
        # every surviving entry belongs to the one engine name used.
        final = session.cache_info()["engines"]
        assert final["entries"] == bound
        assert final["by_engine"] == {"functional": bound}

    def test_counters_account_for_every_call_single_engine_key(self):
        """With one hot key, hits = calls - 1 exactly, even across threads."""
        session = Session()
        config = EIEConfig(num_pes=4)
        num_threads, calls_each = 4, ITERATIONS

        def churn() -> None:
            for _ in range(calls_each):
                session.engine("functional", config)

        _run_threads(workers=[(churn,) for _ in range(num_threads)], observers=[])
        info = session.cache_info()["engines"]
        assert info["entries"] == 1
        # Exactly one thread paid the miss; creation is serialized by the
        # session lock only around the cache put, so at worst a handful of
        # threads race the first miss — hits can be short by at most
        # (num_threads - 1), never more.
        total_calls = num_threads * calls_each
        assert total_calls - num_threads <= info["hits"] <= total_calls - 1


class TestBatchedRunsUnderChurn:
    def test_concurrent_batched_runs_with_stats_reader(self):
        """The serving pattern: batched run() workers + a stats poller."""
        rng = make_rng(5)
        weights = rng.normal(0.0, 0.1, size=(24, 36))
        config = EIEConfig(num_pes=4)
        session = Session(
            CompressionConfig(target_density=0.2), config=config, max_prepared=2
        )
        layer = session.compress(weights, num_pes=4, name="stress")
        activations = rng.uniform(0.1, 1.0, size=(3, 36))
        reference = session.run("cycle", layer, activations, config).outputs

        def churn(offset: int) -> None:
            for i in range(60):
                # Alternate fifo depths so prepared/engine entries churn
                # (max_prepared=2 forces evictions) while outputs must stay
                # bit-identical to the single-threaded reference.
                run_config = EIEConfig(num_pes=4, fifo_depth=1 + ((i + offset) % 4))
                result = session.run("cycle", layer, activations, run_config)
                assert np.array_equal(result.outputs, reference)

        def observe(stop: threading.Event) -> None:
            while not stop.is_set():
                info = session.cache_info()
                assert info["prepared"]["entries"] <= 2
                assert info["layers"]["entries"] == 1

        _run_threads(
            workers=[(churn, tid) for tid in range(4)],
            observers=[(observe,)],
        )
