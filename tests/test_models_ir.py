"""Tests for the model IR: nodes, wiring, lowering rules and specs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import (
    INPUT,
    MatVecNode,
    ModelIR,
    ModelSpec,
    conv_activation_batch,
)
from repro.nn.convolution import conv2d_via_im2col
from repro.nn.layers import FullyConnectedLayer
from repro.nn.lstm import LSTM_GATE_NAMES, LSTMCell, LSTMState
from repro.nn.model import FeedForwardNetwork


def chain_model(rng: np.random.Generator, sizes=(12, 10, 8)) -> ModelIR:
    nodes = []
    previous = INPUT
    for index in range(len(sizes) - 1):
        nodes.append(
            MatVecNode(
                name=f"fc{index}",
                weight=rng.normal(size=(sizes[index + 1], sizes[index])),
                activation="relu" if index < len(sizes) - 2 else "identity",
                source=previous,
            )
        )
        previous = f"fc{index}"
    return ModelIR(nodes, name="chain")


class TestMatVecNode:
    def test_rejects_reserved_name(self, rng):
        with pytest.raises(ConfigurationError, match="input"):
            MatVecNode(name=INPUT, weight=rng.normal(size=(2, 3)))

    def test_rejects_unknown_activation(self, rng):
        with pytest.raises(ConfigurationError, match="activation"):
            MatVecNode(name="fc", weight=rng.normal(size=(2, 3)), activation="swish")

    def test_rejects_mismatched_bias(self, rng):
        with pytest.raises(ConfigurationError, match="bias"):
            MatVecNode(name="fc", weight=rng.normal(size=(2, 3)), bias=np.zeros(3))

    def test_rejects_slice_not_matching_columns(self, rng):
        with pytest.raises(ConfigurationError, match="input_slice"):
            MatVecNode(name="fc", weight=rng.normal(size=(2, 3)), input_slice=(0, 5))

    def test_forward_matches_manual(self, rng):
        node = MatVecNode(
            name="fc", weight=rng.normal(size=(4, 6)), bias=rng.normal(size=4),
            activation="relu",
        )
        x = rng.normal(size=6)
        expected = np.maximum(node.weight @ x + node.bias, 0.0)
        assert np.allclose(node.forward(x), expected)
        batch = rng.normal(size=(5, 6))
        assert np.allclose(node.forward(batch)[2], node.forward(batch[2]))


class TestModelWiring:
    def test_duplicate_names_rejected(self, rng):
        nodes = [
            MatVecNode(name="fc", weight=rng.normal(size=(4, 4))),
            MatVecNode(name="fc", weight=rng.normal(size=(4, 4)), source="fc"),
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            ModelIR(nodes)

    def test_unknown_source_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="sources"):
            ModelIR([MatVecNode(name="fc", weight=rng.normal(size=(4, 4)), source="ghost")])

    def test_forward_reference_rejected(self, rng):
        nodes = [
            MatVecNode(name="a", weight=rng.normal(size=(4, 4)), source="b"),
            MatVecNode(name="b", weight=rng.normal(size=(4, 4))),
        ]
        with pytest.raises(ConfigurationError, match="earlier node"):
            ModelIR(nodes)

    def test_size_mismatch_rejected(self, rng):
        nodes = [
            MatVecNode(name="a", weight=rng.normal(size=(4, 6))),
            MatVecNode(name="b", weight=rng.normal(size=(3, 5)), source="a"),
        ]
        with pytest.raises(ConfigurationError, match="columns"):
            ModelIR(nodes)

    def test_slice_out_of_range_rejected(self, rng):
        nodes = [
            MatVecNode(name="a", weight=rng.normal(size=(4, 6))),
            MatVecNode(name="b", weight=rng.normal(size=(3, 3)), source="a",
                       input_slice=(2, 5)),
        ]
        with pytest.raises(ConfigurationError, match="slices"):
            ModelIR(nodes)

    def test_inconsistent_full_input_sizes_rejected(self, rng):
        nodes = [
            MatVecNode(name="a", weight=rng.normal(size=(4, 6))),
            MatVecNode(name="b", weight=rng.normal(size=(4, 7))),
        ]
        with pytest.raises(ConfigurationError, match="model input"):
            ModelIR(nodes)

    def test_input_slice_past_full_input_node_rejected_in_any_order(self, rng):
        full = MatVecNode(name="full", weight=rng.normal(size=(4, 10)))
        sliced = MatVecNode(name="sliced", weight=rng.normal(size=(4, 20)),
                            input_slice=(0, 20))
        with pytest.raises(ConfigurationError, match="past the"):
            ModelIR([full, sliced])
        full = MatVecNode(name="full", weight=rng.normal(size=(4, 10)))
        sliced = MatVecNode(name="sliced", weight=rng.normal(size=(4, 20)),
                            input_slice=(0, 20))
        with pytest.raises(ConfigurationError, match="past the"):
            ModelIR([sliced, full])

    def test_output_names_are_unconsumed_nodes(self, rng):
        model = chain_model(rng)
        assert model.output_names == ("fc1",)
        assert model.input_size == 12 and model.output_size == 8

    def test_trace_applies_slices(self, rng):
        nodes = [
            MatVecNode(name="head", weight=rng.normal(size=(4, 3)),
                       activation="identity", input_slice=(0, 3)),
            MatVecNode(name="tail", weight=rng.normal(size=(2, 3)),
                       activation="identity", input_slice=(3, 6)),
        ]
        model = ModelIR(nodes, name="split")
        assert model.input_size == 6
        x = rng.normal(size=6)
        trace = model.trace(x)
        assert np.allclose(trace.node_outputs["head"], nodes[0].weight @ x[:3])
        assert np.allclose(trace.node_outputs["tail"], nodes[1].weight @ x[3:])

    def test_batched_trace_matches_vector_loop(self, rng):
        model = chain_model(rng)
        batch = rng.normal(size=(5, model.input_size))
        batched = model.trace(batch)
        for index, row in enumerate(batch):
            single = model.trace(row)
            for name in batched.node_outputs:
                assert np.allclose(batched.node_outputs[name][index],
                                   single.node_outputs[name])

    def test_fingerprint_changes_with_weights_and_wiring(self, rng):
        model = chain_model(rng)
        same = ModelIR([MatVecNode(name=n.name, weight=n.weight, activation=n.activation,
                                   source=n.source) for n in model], name="chain")
        assert model.fingerprint() == same.fingerprint()
        perturbed = chain_model(rng)
        assert model.fingerprint() != perturbed.fingerprint()

    def test_fingerprint_is_memoized_and_freezes_the_weights(self, rng):
        model = chain_model(rng)
        first = model.fingerprint()
        assert model.fingerprint() is first  # memoized, not recomputed
        # The hashed arrays are frozen so the memo cannot go stale silently.
        with pytest.raises(ValueError, match="read-only"):
            model.nodes[0].weight[0, 0] = 99.0

    def test_fingerprint_freezes_view_backed_weights_through_the_base(self, rng):
        kernels = rng.normal(size=(4, 3, 1, 1))
        model = ModelIR.from_conv(kernels, 5, 5)  # node weight is a reshape view
        model.fingerprint()
        with pytest.raises(ValueError, match="read-only"):
            kernels[0, 0, 0, 0] = 99.0  # writing the base must fail too

    def test_describe_is_json_serializable(self, rng):
        model = chain_model(rng)
        text = json.dumps(model.describe())
        assert "fc0" in text and "fc1" in text


class TestLowering:
    def test_from_network_matches_dense_forward(self, rng):
        layers = [
            FullyConnectedLayer(weight=rng.normal(size=(10, 16)), activation="relu",
                                bias=rng.normal(size=10), name="fc6"),
            FullyConnectedLayer(weight=rng.normal(size=(4, 10)), activation="identity",
                                name="fc7"),
        ]
        network = FeedForwardNetwork(layers, name="tail")
        model = ModelIR.from_network(network)
        assert model.name == "tail" and model.num_nodes == 2
        x = rng.normal(size=16)
        assert np.allclose(model.forward(x), network.forward(x))
        trace = model.trace(x)
        net_trace = network.trace(x)
        assert np.allclose(trace.node_outputs["fc6"], net_trace.activations[0])

    def test_from_network_disambiguates_duplicate_layer_names(self, rng):
        layers = [
            FullyConnectedLayer(weight=rng.normal(size=(8, 8)), name="fc"),
            FullyConnectedLayer(weight=rng.normal(size=(8, 8)), name="fc"),
        ]
        model = ModelIR.from_network(FeedForwardNetwork(layers))
        assert [node.name for node in model] == ["fc", "fc#2"]

    def test_from_lstm_per_gate_matches_gate_pre_activations(self, rng):
        cell = LSTMCell.random(9, 7, rng)
        model = ModelIR.from_lstm(cell, mode="per_gate")
        assert model.num_nodes == 4
        x, h = rng.normal(size=9), rng.normal(size=7)
        pre = cell.gate_pre_activations(x, LSTMState(hidden=h, cell=np.zeros(7)))
        trace = model.trace(np.concatenate([x, h]))
        for gate in LSTM_GATE_NAMES:
            assert np.allclose(trace.node_outputs[f"gate_{gate}"], pre[gate])

    def test_from_lstm_stacked_matches_stacked_matrix(self, rng):
        cell = LSTMCell.random(9, 7, rng)
        model = ModelIR.from_lstm(cell, mode="stacked")
        assert model.num_nodes == 1
        x = rng.normal(size=16)
        assert np.allclose(model.forward(x), cell.stacked_matrix() @ x)

    def test_from_lstm_rejects_unknown_mode(self, rng):
        cell = LSTMCell.random(4, 4, rng)
        with pytest.raises(ConfigurationError, match="mode"):
            ModelIR.from_lstm(cell, mode="unrolled")

    def test_from_conv_im2col_matches_reference_conv(self, rng):
        feature_map = rng.normal(size=(5, 8, 8))
        kernels = rng.normal(size=(6, 5, 3, 3))
        model = ModelIR.from_conv(kernels, 8, 8, activation="identity")
        batch = conv_activation_batch(feature_map, model)
        outputs = model.trace(batch).output  # (positions, C_out)
        reference = conv2d_via_im2col(feature_map, kernels)
        assert np.allclose(outputs.T.reshape(reference.shape), reference)

    def test_from_conv_rejects_bad_stride_and_padding(self, rng):
        kernels = rng.normal(size=(4, 3, 3, 3))
        with pytest.raises(ConfigurationError, match="stride"):
            ModelIR.from_conv(kernels, 8, 8, stride=0)
        with pytest.raises(ConfigurationError, match="padding"):
            ModelIR.from_conv(kernels, 8, 8, padding=-1)

    def test_conv_activation_batch_requires_conv_model(self, rng):
        model = chain_model(rng)
        with pytest.raises(ConfigurationError, match="from_conv"):
            conv_activation_batch(rng.normal(size=(3, 4, 4)), model)


class TestNpzRoundTrip:
    def test_round_trip_preserves_weights_biases_activations(self, rng, tmp_path):
        nodes = [
            MatVecNode(name="fc6", weight=rng.normal(size=(6, 9)), activation="relu",
                       bias=rng.normal(size=6)),
            MatVecNode(name="fc7", weight=rng.normal(size=(3, 6)),
                       activation="identity", source="fc6"),
        ]
        model = ModelIR(nodes, name="tiny")
        path = model.to_npz(tmp_path / "tiny.npz")
        loaded = ModelIR.from_npz(path)
        assert [n.name for n in loaded] == ["fc6", "fc7"]
        assert loaded.nodes[0].activation == "relu"
        assert loaded.nodes[1].activation == "identity"
        assert np.array_equal(loaded.nodes[0].bias, nodes[0].bias)
        x = rng.normal(size=9)
        assert np.allclose(loaded.forward(x), model.forward(x))

    def test_to_npz_rejects_non_chain_models(self, rng, tmp_path):
        nodes = [
            MatVecNode(name="a", weight=rng.normal(size=(4, 6))),
            MatVecNode(name="b", weight=rng.normal(size=(4, 6))),
        ]
        model = ModelIR(nodes)
        with pytest.raises(ConfigurationError, match="chain"):
            model.to_npz(tmp_path / "fan.npz")

    def test_to_npz_without_suffix_returns_the_written_path(self, rng, tmp_path):
        model = chain_model(rng)
        path = model.to_npz(tmp_path / "no-suffix")
        assert path.exists() and path.suffix == ".npz"
        loaded = ModelIR.from_npz(path)
        assert loaded.fingerprint() == model.fingerprint()

    def test_from_npz_without_weight_members_fails(self, tmp_path):
        path = tmp_path / "empty.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ConfigurationError, match="weight"):
            ModelIR.from_npz(path)


class TestModelSpec:
    def test_json_round_trip(self):
        spec = ModelSpec(model="neuraltalk_lstm", scale=16, seed=3,
                         params={"mode": "stacked"})
        assert ModelSpec.from_json(spec.to_json()) == spec

    def test_unknown_keys_rejected_by_name(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            ModelSpec.from_dict({"model": "alexnet_fc", "bogus": 1})

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError, match="scale"):
            ModelSpec(model="alexnet_fc", scale=0)

    def test_merged_overlays_scalars_and_params(self):
        defaults = ModelSpec(model="m", scale=8, seed=7, params={"mode": "per_gate"})
        override = ModelSpec(model="m", scale=2, params={"extra": 1})
        merged = defaults.merged(override)
        assert merged.scale == 2 and merged.seed == 7
        assert merged.params == {"mode": "per_gate", "extra": 1}

    def test_merged_rejects_different_model(self):
        with pytest.raises(ConfigurationError, match="merge"):
            ModelSpec(model="a").merged(ModelSpec(model="b"))
