"""Tests for EIEConfig and its derived quantities."""

from __future__ import annotations

import pytest

from repro.core.config import EIEConfig
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_design_point(self):
        config = EIEConfig()
        assert config.num_pes == 64
        assert config.fifo_depth == 8
        assert config.clock_mhz == 800.0
        assert config.weight_bits == 4
        assert config.spmat_sram_width_bits == 64

    def test_entries_per_spmat_read_is_eight(self):
        assert EIEConfig().entries_per_spmat_read == 8

    def test_weights_per_pe_capacity_is_131k(self):
        # 128 KB at 8 bits per entry = 131072 entries ("131K weights" in the paper).
        assert EIEConfig().weights_per_pe_capacity == 131072

    def test_dense_equivalent_capacity(self):
        # ~1.2M dense-equivalent weights per PE at 10% density.
        assert EIEConfig().dense_weight_capacity == pytest.approx(1.3e6, rel=0.1)

    def test_peak_gops_around_102(self):
        assert EIEConfig().peak_gops == pytest.approx(102.4, rel=0.01)

    def test_max_run_and_codebook(self):
        config = EIEConfig()
        assert config.max_run == 15
        assert config.codebook_entries == 16

    def test_activation_capacity_covers_4k(self):
        assert EIEConfig().activation_capacity == 4096

    def test_cycle_time(self):
        assert EIEConfig().cycle_time_ns == pytest.approx(1.25)


class TestValidation:
    def test_invalid_pe_count(self):
        with pytest.raises(ConfigurationError):
            EIEConfig(num_pes=0)

    def test_invalid_fifo_depth(self):
        with pytest.raises(ConfigurationError):
            EIEConfig(fifo_depth=0)

    def test_sram_width_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            EIEConfig(spmat_sram_width_bits=48)

    def test_sram_width_must_hold_an_entry(self):
        with pytest.raises(ConfigurationError):
            EIEConfig(spmat_sram_width_bits=4, weight_bits=4, index_bits=4)


class TestCopies:
    def test_with_pes(self):
        config = EIEConfig().with_pes(256)
        assert config.num_pes == 256
        assert config.fifo_depth == 8

    def test_with_fifo_depth(self):
        assert EIEConfig().with_fifo_depth(32).fifo_depth == 32

    def test_with_spmat_width(self):
        config = EIEConfig().with_spmat_width(128)
        assert config.spmat_sram_width_bits == 128
        assert config.entries_per_spmat_read == 16

    def test_sram_bank_configs(self):
        config = EIEConfig()
        assert config.spmat_sram().capacity_kb == 128
        assert config.ptr_sram().capacity_kb == 16
        assert config.act_sram().capacity_kb == 2
