"""Crash consistency of shard publication: SIGKILL mid-publish leaves no lie.

A shard worker killed at the worst possible moment — after computing its
records, inside the publish step — must leave either the complete artifact
or nothing readable: the atomic tmp+rename protocol means a torn write can
only ever be an orphaned ``.tmp`` file, never a partial artifact that
``merge_shards`` would trust.  The child process here deterministically
SIGKILLs itself at exactly that moment by intercepting ``os.replace`` for
shard destinations (no timing races), and the parent then proves the
three recovery properties: nothing published, the ``.tmp`` is sweepable,
and the merge recomputes exactly the missing chunk to a byte-identical
result.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import ExperimentRegistry, ExperimentRunner
from repro.shard import merge_shards, plan_shards, run_shard
from repro.store import ArtifactStore

SMALL = [
    ("scale", 64),
    ("workloads", ["Alex-7", "NT-We"]),
    ("grid.fifo_depth", [1, 4, 8]),
    ("config.num_pes", 16),
]

REPO_ROOT = Path(__file__).resolve().parent.parent

# The child computes shard 1 normally, then dies by SIGKILL the instant the
# publish rename targets the shards directory — records computed, artifact
# not yet visible, .tmp on disk.  Deterministic: no sleeps, no polling.
CRASH_CHILD = """
import os, signal

real_replace = os.replace
def kill_on_shard_publish(src, dst, *args, **kwargs):
    if os.sep + "shards" + os.sep in str(dst):
        os.kill(os.getpid(), signal.SIGKILL)
    return real_replace(src, dst, *args, **kwargs)
os.replace = kill_on_shard_publish

from repro.experiments import ExperimentRegistry
from repro.shard import plan_shards, run_shard
from repro.store import ArtifactStore

spec = ExperimentRegistry.get("fig8_fifo_depth").spec.with_overrides({overrides})
plan = plan_shards(spec, shard_count=3)
run_shard(plan, 1, ArtifactStore({root!r}))
raise SystemExit("unreachable: the publish rename must have killed us")
"""


def _small_spec():
    return ExperimentRegistry.get("fig8_fifo_depth").spec.with_overrides(SMALL)


class TestShardCrashConsistency:
    def test_sigkill_mid_publish_leaves_no_partial_and_merge_repairs(self, tmp_path):
        root = tmp_path / "store"
        spec = _small_spec()
        plan = plan_shards(spec, shard_count=3)

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        child = subprocess.run(
            [sys.executable, "-c", CRASH_CHILD.format(overrides=SMALL, root=str(root))],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert child.returncode == -signal.SIGKILL, (
            f"child should die by SIGKILL mid-publish, got rc={child.returncode}\n"
            f"stdout: {child.stdout}\nstderr: {child.stderr}"
        )

        # Property 1: no partial/corrupt shard artifact became visible — the
        # rename never happened, so the store reports a clean miss.
        store = ArtifactStore(root)
        assert store.load_json("shards", plan.shard_key(1)) is None
        published = list((root / "shards").glob("*.json"))
        assert published == []

        # Property 2: the torn write is exactly one orphaned .tmp, and the
        # sweeper collects it once it is old enough to be abandoned.
        orphans = [
            path for path in (root / "shards").iterdir() if path.suffix == ".tmp"
        ]
        assert len(orphans) == 1
        assert store.sweep_stale_tmp(max_age_s=0.0) >= 1
        assert not any(
            path.suffix == ".tmp" for path in (root / "shards").iterdir()
        )

        # Property 3: the surviving shards publish fine, and the merge
        # recomputes exactly the one missing chunk — byte-identical to a
        # serial run of the whole spec.
        run_shard(plan, 0, store)
        run_shard(plan, 2, store)
        fresh = ArtifactStore(root)
        merged = merge_shards(plan, fresh)
        shard_stats = fresh.stats()["by_kind"]["shards"]
        assert shard_stats["stores"] == 1  # only shard 1 was recomputed
        assert merged.to_json() == ExperimentRunner().run(spec).to_json()

    def test_crash_then_rerun_publishes_normally(self, tmp_path):
        """The crashed shard's own retry (the scheduler's restart path)
        publishes cleanly over the orphaned .tmp."""
        root = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        child = subprocess.run(
            [sys.executable, "-c", CRASH_CHILD.format(overrides=SMALL, root=str(root))],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert child.returncode == -signal.SIGKILL

        store = ArtifactStore(root)
        plan = plan_shards(_small_spec(), shard_count=3)
        summary = run_shard(plan, 1, store)
        assert summary["cached"] is False
        payload = store.load_json("shards", plan.shard_key(1))
        assert payload is not None
        assert payload["shard_id"] == 1
