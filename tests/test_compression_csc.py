"""Tests for the relative-indexed interleaved CSC encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.csc import (
    CSCMatrix,
    InterleavedCSC,
    decode_column,
    encode_column,
    interleaved_entry_counts,
)
from repro.errors import EncodingError


class TestEncodeColumn:
    def test_paper_example(self):
        # Section III-B example: [0,0,1,2, 0*19, 3] -> v=[1,2,0,3], z=[2,0,15,2].
        column = np.zeros(23)
        column[2] = 1.0
        column[3] = 2.0
        column[22] = 3.0
        values, runs = encode_column(column)
        assert values.tolist() == [1.0, 2.0, 0.0, 3.0]
        assert runs.tolist() == [2, 0, 15, 2]

    def test_empty_column(self):
        values, runs = encode_column(np.zeros(10))
        assert values.size == 0 and runs.size == 0

    def test_dense_column_has_zero_runs(self):
        values, runs = encode_column(np.arange(1, 6, dtype=float))
        assert values.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert runs.tolist() == [0, 0, 0, 0, 0]

    def test_long_run_inserts_multiple_padding_zeros(self):
        column = np.zeros(40)
        column[39] = 7.0
        values, runs = encode_column(column)
        # 39 leading zeros need two padding zeros (16 + 16 positions) + run 7.
        assert values.tolist() == [0.0, 0.0, 7.0]
        assert runs.tolist() == [15, 15, 7]

    def test_runs_never_exceed_max(self, rng):
        column = (rng.random(200) < 0.03) * rng.normal(size=200)
        _, runs = encode_column(column)
        assert runs.size == 0 or runs.max() <= 15

    def test_trailing_zeros_not_stored(self):
        column = np.array([1.0] + [0.0] * 50)
        values, runs = encode_column(column)
        assert values.tolist() == [1.0]

    def test_decode_roundtrip(self, rng):
        column = (rng.random(97) < 0.08) * rng.normal(size=97)
        values, runs = encode_column(column)
        assert np.allclose(decode_column(values, runs, 97), column)

    def test_decode_overrun_rejected(self):
        with pytest.raises(EncodingError):
            decode_column(np.array([1.0]), np.array([5]), 3)

    def test_mismatched_streams_rejected(self):
        with pytest.raises(EncodingError):
            decode_column(np.array([1.0, 2.0]), np.array([0]), 10)

    def test_custom_max_run(self):
        column = np.zeros(10)
        column[9] = 1.0
        values, runs = encode_column(column, max_run=3)
        assert runs.max() <= 3
        assert np.allclose(decode_column(values, runs, 10), column)


class TestCSCMatrix:
    def test_roundtrip(self, sparse_weights):
        matrix = CSCMatrix.from_dense(sparse_weights)
        assert np.allclose(matrix.to_dense(), sparse_weights)

    def test_entry_accounting(self, sparse_weights):
        matrix = CSCMatrix.from_dense(sparse_weights)
        assert matrix.num_entries == matrix.num_true_nonzeros + matrix.num_padding_zeros
        assert matrix.num_true_nonzeros == np.count_nonzero(sparse_weights)

    def test_column_entry_counts_sum(self, sparse_weights):
        matrix = CSCMatrix.from_dense(sparse_weights)
        assert matrix.column_entry_counts().sum() == matrix.num_entries

    def test_column_row_indices_match_dense(self, sparse_weights):
        matrix = CSCMatrix.from_dense(sparse_weights)
        for column in range(0, sparse_weights.shape[1], 7):
            rows = matrix.column_row_indices(column)
            values, _ = matrix.column_entries(column)
            true_rows = rows[values != 0.0]
            assert np.array_equal(true_rows, np.nonzero(sparse_weights[:, column])[0])

    def test_sparse_column_padding(self):
        dense = np.zeros((64, 1))
        dense[63, 0] = 5.0
        matrix = CSCMatrix.from_dense(dense)
        assert matrix.num_padding_zeros == 3
        assert matrix.padding_fraction == pytest.approx(0.75)

    def test_storage_bits(self, sparse_weights):
        matrix = CSCMatrix.from_dense(sparse_weights)
        expected = matrix.num_entries * 8 + (sparse_weights.shape[1] + 1) * 16
        assert matrix.storage_bits() == expected

    def test_invalid_column_rejected(self, sparse_weights):
        matrix = CSCMatrix.from_dense(sparse_weights)
        with pytest.raises(EncodingError):
            matrix.column_entries(sparse_weights.shape[1])

    def test_inconsistent_construction_rejected(self):
        with pytest.raises(EncodingError):
            CSCMatrix(
                values=np.array([1.0]),
                runs=np.array([0, 1]),
                col_ptr=np.array([0, 1]),
                num_rows=4,
                num_cols=1,
            )
        with pytest.raises(EncodingError):
            CSCMatrix(
                values=np.array([1.0]),
                runs=np.array([20]),
                col_ptr=np.array([0, 1]),
                num_rows=30,
                num_cols=1,
            )


class TestInterleavedCSC:
    def test_roundtrip(self, sparse_weights, small_config):
        interleaved = InterleavedCSC.from_dense(sparse_weights, num_pes=small_config.num_pes)
        assert np.allclose(interleaved.to_dense(), sparse_weights)

    def test_row_distribution(self, sparse_weights):
        interleaved = InterleavedCSC.from_dense(sparse_weights, num_pes=4)
        rows = sparse_weights.shape[0]
        for pe, matrix in enumerate(interleaved.per_pe):
            assert matrix.num_rows == len(range(pe, rows, 4))

    def test_nonzero_conservation(self, sparse_weights):
        interleaved = InterleavedCSC.from_dense(sparse_weights, num_pes=4)
        assert interleaved.num_true_nonzeros == np.count_nonzero(sparse_weights)

    def test_entries_per_pe_column_shape_and_totals(self, sparse_weights):
        interleaved = InterleavedCSC.from_dense(sparse_weights, num_pes=4)
        counts = interleaved.entries_per_pe_column()
        assert counts.shape == (4, sparse_weights.shape[1])
        assert counts.sum() == interleaved.num_entries
        assert np.array_equal(counts.sum(axis=1), interleaved.entries_per_pe())

    def test_more_pes_reduce_padding(self, rng):
        # Figure 12's effect: interleaving shortens each PE's column slice.
        dense = (rng.random((256, 32)) < 0.03) * rng.normal(size=(256, 32))
        padding_by_pes = [
            InterleavedCSC.from_dense(dense, num_pes=n).num_padding_zeros for n in (1, 4, 16)
        ]
        assert padding_by_pes[0] >= padding_by_pes[1] >= padding_by_pes[2]

    def test_global_row_index(self, sparse_weights):
        interleaved = InterleavedCSC.from_dense(sparse_weights, num_pes=4)
        assert interleaved.global_row_index(pe=1, local_row=3) == 13

    def test_single_pe_equals_plain_csc(self, sparse_weights):
        interleaved = InterleavedCSC.from_dense(sparse_weights, num_pes=1)
        plain = CSCMatrix.from_dense(sparse_weights)
        assert interleaved.num_entries == plain.num_entries
        assert interleaved.num_padding_zeros == plain.num_padding_zeros

    def test_invalid_num_pes_rejected(self, sparse_weights):
        with pytest.raises(EncodingError):
            InterleavedCSC.from_dense(sparse_weights, num_pes=0)


class TestInterleavedEntryCounts:
    def _pattern_from_dense(self, dense):
        rows_list = []
        col_ptr = [0]
        for column in range(dense.shape[1]):
            nonzero_rows = np.nonzero(dense[:, column])[0]
            rows_list.extend(nonzero_rows.tolist())
            col_ptr.append(len(rows_list))
        return np.asarray(rows_list), np.asarray(col_ptr)

    @pytest.mark.parametrize("num_pes", [1, 2, 4, 8])
    def test_matches_explicit_encoding(self, rng, num_pes):
        dense = (rng.random((120, 17)) < 0.06) * rng.normal(size=(120, 17))
        row_indices, col_ptr = self._pattern_from_dense(dense)
        counts, padding = interleaved_entry_counts(
            row_indices, col_ptr, num_rows=120, num_pes=num_pes
        )
        explicit = InterleavedCSC.from_dense(dense, num_pes=num_pes)
        assert np.array_equal(counts, explicit.entries_per_pe_column())
        assert padding.sum() == explicit.num_padding_zeros

    def test_empty_pattern(self):
        counts, padding = interleaved_entry_counts(
            np.array([], dtype=np.int64), np.array([0, 0, 0]), num_rows=10, num_pes=2
        )
        assert counts.shape == (2, 2)
        assert counts.sum() == 0 and padding.sum() == 0

    def test_out_of_range_rows_rejected(self):
        with pytest.raises(EncodingError):
            interleaved_entry_counts(np.array([11]), np.array([0, 1]), num_rows=10, num_pes=2)
