"""Whole-network numerical parity: dense forward vs Session.run_model.

Tolerance contract (documented here and pinned below):

* EIE stores weights as 4-bit indices into a 16-entry shared codebook
  (entry 0 reserved for zero), so a matrix with **at most 15 distinct
  non-zero values** is represented *exactly*.  For such networks the
  functional engine's outputs match ``FeedForwardNetwork.forward`` to float64
  rounding (the only remaining difference is summation order between the
  PE-interleaved accumulation and the dense matmul): ``rtol=1e-10``.
* For arbitrary float weights the k-means codebook introduces genuine
  quantization error; the functional engine then matches the dense forward
  of the *decoded* weights (same ``rtol=1e-10``), while the deviation from
  the original float network is the Deep Compression approximation the paper
  accepts (Section IV; accuracy is preserved at the network level).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EIEConfig
from repro.engine import Session
from repro.models import ModelIR
from repro.nn.layers import FullyConnectedLayer
from repro.nn.model import FeedForwardNetwork

NUM_PES = 4
#: Functional-engine vs dense-matmul tolerance (float64 summation order only).
RTOL, ATOL = 1e-10, 1e-12


def quantizable_network(rng: np.random.Generator) -> FeedForwardNetwork:
    """A sparse two-layer network whose weights use <= 15 distinct non-zeros."""
    palette = np.linspace(-0.8, 0.8, 15)

    def matrix(rows: int, cols: int) -> np.ndarray:
        weights = rng.choice(palette, size=(rows, cols))
        weights[rng.random((rows, cols)) >= 0.25] = 0.0
        weights[0, 0] = palette[3]
        return weights

    return FeedForwardNetwork(
        [
            FullyConnectedLayer(weight=matrix(24, 32), activation="relu", name="fc6"),
            FullyConnectedLayer(weight=matrix(12, 24), activation="identity", name="fc7"),
        ],
        name="quantizable",
    )


def arbitrary_network(rng: np.random.Generator) -> FeedForwardNetwork:
    def matrix(rows: int, cols: int) -> np.ndarray:
        weights = rng.normal(0.0, 0.3, size=(rows, cols))
        weights[rng.random((rows, cols)) >= 0.25] = 0.0
        weights[0, 0] = 0.5
        return weights

    return FeedForwardNetwork(
        [
            FullyConnectedLayer(weight=matrix(20, 28), activation="relu", name="fc6"),
            FullyConnectedLayer(weight=matrix(10, 20), activation="identity", name="fc7"),
        ],
        name="arbitrary",
    )


@pytest.fixture
def session() -> Session:
    return Session(config=EIEConfig(num_pes=NUM_PES))


class TestExactCodebookParity:
    def test_per_node_and_end_to_end_match_dense_forward(self, rng, session):
        network = quantizable_network(rng)
        model = ModelIR.from_network(network)
        inputs = np.abs(rng.normal(size=(4, model.input_size)))
        run = session.run_model("functional", model, inputs)

        # The <=15-value weights are exactly representable: decoded weights
        # reproduce the originals bit for bit.
        for node, layer in session.compress_model(model, NUM_PES):
            assert np.array_equal(layer.dense_weights(), node.weight)

        for index, row in enumerate(inputs):
            trace = network.trace(row)
            # Per-node: every engine output against the dense layer output.
            for node_index, node_run in enumerate(run.nodes):
                assert np.allclose(
                    node_run.result.outputs[index],
                    trace.activations[node_index],
                    rtol=RTOL, atol=ATOL,
                )
            # End-to-end.
            assert np.allclose(run.outputs[index], trace.output, rtol=RTOL, atol=ATOL)

    def test_single_vector_run_matches_batch_row(self, rng, session):
        network = quantizable_network(rng)
        model = ModelIR.from_network(network)
        inputs = np.abs(rng.normal(size=(3, model.input_size)))
        batched = session.run_model("functional", model, inputs)
        single = session.run_model("functional", model, inputs[1])
        # Propagation uses one matmul per node; BLAS may sum a (1, n) and an
        # (n,)-shaped product in different orders, so parity is to rounding.
        assert np.allclose(batched.outputs[1], single.outputs[0], rtol=RTOL, atol=ATOL)


class TestQuantizedParity:
    def test_matches_decoded_weight_network(self, rng, session):
        network = arbitrary_network(rng)
        model = ModelIR.from_network(network)
        inputs = np.abs(rng.normal(size=(2, model.input_size)))
        run = session.run_model("functional", model, inputs)
        compressed = session.compress_model(model, NUM_PES)
        decoded_network = FeedForwardNetwork(
            [
                FullyConnectedLayer(
                    weight=compressed.layer(node.name).dense_weights(),
                    activation=node.activation,
                    name=node.name,
                )
                for node in model
            ],
            name="decoded",
        )
        for index, row in enumerate(inputs):
            trace = decoded_network.trace(row)
            for node_index, node_run in enumerate(run.nodes):
                assert np.allclose(
                    node_run.result.outputs[index],
                    trace.activations[node_index],
                    rtol=RTOL, atol=ATOL,
                )
            assert np.allclose(run.outputs[index], trace.output, rtol=RTOL, atol=ATOL)

    def test_quantization_error_vs_float_network_is_bounded(self, rng, session):
        network = arbitrary_network(rng)
        model = ModelIR.from_network(network)
        inputs = np.abs(rng.normal(size=(4, model.input_size)))
        run = session.run_model("functional", model, inputs)
        reference = model.trace(inputs).output
        scale = np.max(np.abs(reference))
        error = np.max(np.abs(run.outputs - reference)) / scale
        # 4-bit weight sharing: a genuine approximation, but a bounded one.
        assert 0.0 < error < 0.5
