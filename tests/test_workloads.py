"""Tests for benchmark specs, synthetic generators and the workload builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.csc import InterleavedCSC
from repro.core.config import EIEConfig
from repro.errors import WorkloadError
from repro.workloads.benchmarks import ALL_BENCHMARKS, BENCHMARK_NAMES, LayerSpec, get_benchmark, scaled_benchmarks
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.models import (
    build_alexnet_fc_network,
    build_neuraltalk_lstm,
    build_vgg_fc_network,
    random_dense_layer,
)
from repro.workloads.synthetic import (
    generate_activations,
    generate_dense_weights,
    generate_sparse_pattern,
)


class TestBenchmarkSpecs:
    def test_all_nine_benchmarks_present(self):
        assert len(BENCHMARK_NAMES) == 9
        assert set(BENCHMARK_NAMES) == set(ALL_BENCHMARKS)

    def test_table3_alex6(self):
        spec = get_benchmark("Alex-6")
        assert (spec.input_size, spec.output_size) == (9216, 4096)
        assert spec.weight_density == pytest.approx(0.09)
        assert spec.activation_density == pytest.approx(0.351)

    def test_table3_vgg6_and_nt(self):
        assert get_benchmark("VGG-6").input_size == 25088
        assert get_benchmark("NT-Wd").output_size == 8791
        assert get_benchmark("NT-We").activation_density == 1.0

    def test_flop_fraction_matches_paper_order_of_magnitude(self):
        # Table III FLOP% is roughly weight density times activation density.
        assert get_benchmark("Alex-6").flop_fraction == pytest.approx(0.03, abs=0.01)
        assert get_benchmark("VGG-6").flop_fraction == pytest.approx(0.01, abs=0.01)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            get_benchmark("Alex-9")

    def test_scaled_preserves_densities(self):
        scaled = get_benchmark("Alex-6").scaled(64)
        assert scaled.weight_density == get_benchmark("Alex-6").weight_density
        assert scaled.input_size == 9216 // 64
        assert scaled.rows == scaled.output_size

    def test_scaled_benchmarks_cover_all(self):
        assert set(scaled_benchmarks(128)) == set(BENCHMARK_NAMES)

    def test_seeds_differ_between_benchmarks(self):
        assert get_benchmark("Alex-6").weight_seed != get_benchmark("Alex-7").weight_seed
        assert get_benchmark("Alex-6").weight_seed != get_benchmark("Alex-6").activation_seed

    def test_invalid_spec_rejected(self):
        with pytest.raises(WorkloadError):
            LayerSpec(name="bad", input_size=0, output_size=4, weight_density=0.1, activation_density=0.5)
        with pytest.raises(WorkloadError):
            LayerSpec(name="bad", input_size=4, output_size=4, weight_density=0.0, activation_density=0.5)


class TestSyntheticGenerators:
    def test_pattern_density_close_to_target(self):
        pattern = generate_sparse_pattern(400, 300, 0.1, rng=1)
        assert pattern.density == pytest.approx(0.1, abs=0.01)
        assert pattern.shape == (400, 300)

    def test_pattern_rows_sorted_within_columns(self):
        pattern = generate_sparse_pattern(100, 50, 0.2, rng=2)
        for column in range(0, 50, 7):
            rows = pattern.column_rows(column)
            assert np.all(np.diff(rows) > 0)

    def test_pattern_column_nnz_sums_to_total(self):
        pattern = generate_sparse_pattern(64, 64, 0.15, rng=3)
        assert pattern.column_nnz().sum() == pattern.nnz

    def test_pattern_deterministic(self):
        first = generate_sparse_pattern(64, 32, 0.1, rng=7)
        second = generate_sparse_pattern(64, 32, 0.1, rng=7)
        assert np.array_equal(first.row_indices, second.row_indices)

    def test_pattern_dense_mask_roundtrip(self):
        pattern = generate_sparse_pattern(32, 16, 0.2, rng=5)
        mask = pattern.to_dense_mask()
        assert mask.sum() == pattern.nnz

    def test_pattern_validation(self):
        with pytest.raises(WorkloadError):
            generate_sparse_pattern(0, 4, 0.5)
        with pytest.raises(WorkloadError):
            generate_sparse_pattern(4, 4, 0.0)

    def test_activation_density_and_nonnegativity(self):
        activations = generate_activations(2000, 0.3, rng=4)
        density = np.count_nonzero(activations) / activations.size
        assert density == pytest.approx(0.3, abs=0.05)
        assert np.all(activations >= 0.0)

    def test_activation_always_has_a_nonzero(self):
        activations = generate_activations(5, 0.01, rng=6)
        assert np.count_nonzero(activations) >= 1

    def test_dense_weights_match_spec_density(self, tiny_spec):
        weights = generate_dense_weights(tiny_spec)
        density = np.count_nonzero(weights) / weights.size
        assert density == pytest.approx(tiny_spec.weight_density, abs=0.05)
        assert weights.shape == (tiny_spec.rows, tiny_spec.cols)


class TestWorkloadBuilder:
    def test_work_matrix_matches_explicit_encoding(self, tiny_spec):
        builder = WorkloadBuilder()
        workload = builder.build(tiny_spec, num_pes=4)
        # Rebuild the same matrix explicitly and compare the touched columns.
        pattern = builder.pattern(tiny_spec)
        dense = np.zeros((tiny_spec.rows, tiny_spec.cols))
        columns = np.repeat(np.arange(tiny_spec.cols), pattern.column_nnz())
        dense[pattern.row_indices, columns] = 1.0
        explicit = InterleavedCSC.from_dense(dense, num_pes=4)
        counts = explicit.entries_per_pe_column()
        assert np.array_equal(workload.work, counts[:, workload.nonzero_columns])
        assert workload.total_entries == explicit.num_entries
        assert workload.total_padding == explicit.num_padding_zeros

    def test_cache_returns_same_pattern(self, tiny_spec):
        builder = WorkloadBuilder()
        assert builder.pattern(tiny_spec) is builder.pattern(tiny_spec)
        builder.clear_cache()
        assert builder.pattern(tiny_spec) is not None

    def test_workload_properties(self, tiny_spec):
        workload = WorkloadBuilder().build(tiny_spec, num_pes=4)
        assert workload.broadcasts == workload.nonzero_columns.shape[0]
        assert workload.touched_entries == workload.work.sum()
        assert 0.0 < workload.real_work_fraction <= 1.0
        assert workload.dense_macs == tiny_spec.dense_macs

    def test_simulate_checks_pe_count(self, tiny_spec):
        workload = WorkloadBuilder().build(tiny_spec, num_pes=4)
        with pytest.raises(WorkloadError):
            workload.simulate(EIEConfig(num_pes=8))

    def test_simulate_runs(self, tiny_spec):
        workload = WorkloadBuilder().build(tiny_spec, num_pes=4)
        stats = workload.simulate(EIEConfig(num_pes=4, fifo_depth=8))
        assert stats.total_cycles > 0
        assert stats.entries_processed == workload.touched_entries

    def test_invalid_pe_count_rejected(self, tiny_spec):
        with pytest.raises(WorkloadError):
            WorkloadBuilder().build(tiny_spec, num_pes=0)


class TestModelBuilders:
    def test_alexnet_chain_runs(self):
        network = build_alexnet_fc_network(scale=96)
        output = network.forward(np.random.default_rng(0).uniform(size=network.input_size))
        assert output.shape == (network.output_size,)

    def test_vgg_chain_runs(self):
        network = build_vgg_fc_network(scale=128)
        assert len(network) == 3

    def test_neuraltalk_lstm_step(self):
        cell = build_neuraltalk_lstm(scale=32)
        state = cell.step(np.zeros(cell.input_size), cell.run_sequence(np.zeros((1, cell.input_size)))[0])
        assert state.hidden.shape == (cell.hidden_size,)

    def test_random_dense_layer_density(self, tiny_spec):
        layer = random_dense_layer(tiny_spec)
        assert layer.weight_density == pytest.approx(tiny_spec.weight_density, abs=0.06)

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            build_alexnet_fc_network(scale=0)
        with pytest.raises(WorkloadError):
            build_neuraltalk_lstm(scale=-1)
