"""Tests for the async serving layer: batching, parity, flow control, drain.

The load-bearing guarantee is bit-identity: a request's response must carry
exactly the bits an offline batch-1 ``Session.run_model`` call on the same
vector would produce, regardless of which other requests it was coalesced
with — outputs, cycle counts and simulated latency alike.  The throughput
test pins the ISSUE 7 acceptance criterion: dynamic batching sustains at
least 3x the throughput of batch-1 dispatch on the same engine.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.errors import (
    ConfigurationError,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.models import build_model, synthetic_model_inputs
from repro.serve import BatchPolicy, Server

CONFIG = EIEConfig(num_pes=8)
N_REQUESTS = 12


@pytest.fixture(scope="module")
def model():
    return build_model("neuraltalk_lstm", scale=64)


@pytest.fixture(scope="module")
def requests_and_offline(model):
    """The request vectors plus their offline batch-1 reference runs."""
    inputs = synthetic_model_inputs(model, batch=N_REQUESTS, seed=7)
    session = Session(config=CONFIG)
    runs = [
        session.run_model("cycle", model, inputs[i], CONFIG)
        for i in range(N_REQUESTS)
    ]
    return inputs, runs


def _serve_all(model, inputs, **server_kwargs):
    async def drive():
        async with Server([model], config=CONFIG, **server_kwargs) as server:
            return await asyncio.gather(
                *(server.submit(model.name, vector) for vector in inputs)
            )

    return asyncio.run(drive())


class TestBitIdentity:
    def test_single_request_matches_offline_run_model(self, model, requests_and_offline):
        inputs, offline = requests_and_offline

        async def drive():
            async with Server([model], config=CONFIG) as server:
                return await server.submit(model.name, inputs[0])

        response = asyncio.run(drive())
        assert response.batch_size == 1
        assert np.array_equal(response.output, offline[0].outputs[0])
        assert response.total_cycles == offline[0].total_cycles
        assert response.latency_s == offline[0].latency_s

    @pytest.mark.parametrize("pipeline", [True, False], ids=["pipelined", "sequential"])
    def test_coalesced_batches_are_bit_identical_per_request(
        self, model, requests_and_offline, pipeline
    ):
        """Batch composition must never change an individual answer."""
        inputs, offline = requests_and_offline
        responses = _serve_all(
            model,
            inputs,
            policy=BatchPolicy(max_batch=8, max_wait_us=50_000),
            pipeline=pipeline,
        )
        assert max(response.batch_size for response in responses) > 1
        for response, reference in zip(responses, offline):
            assert np.array_equal(response.output, reference.outputs[0])
            assert response.total_cycles == reference.total_cycles
            assert response.latency_s == reference.latency_s
            assert response.energy_j == reference.energy_j

    def test_functional_engine_serves_without_timing(self, model, requests_and_offline):
        inputs, _ = requests_and_offline
        responses = _serve_all(model, inputs[:4], engine="functional")
        for response in responses:
            assert response.total_cycles is None
            assert response.latency_s is None
            assert response.output.shape == (model.output_size,)


class TestFlowControl:
    def test_overload_rejects_with_retry_after(self, model, requests_and_offline):
        inputs, _ = requests_and_offline

        async def drive():
            policy = BatchPolicy(max_batch=1, max_wait_us=0.0, queue_depth=1)
            async with Server([model], config=CONFIG, policy=policy) as server:
                outcomes = await asyncio.gather(
                    *(
                        server.submit(model.name, inputs[i % len(inputs)])
                        for i in range(32)
                    ),
                    return_exceptions=True,
                )
            return outcomes

        outcomes = asyncio.run(drive())
        rejected = [o for o in outcomes if isinstance(o, ServerOverloadedError)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert rejected, "queue_depth=1 under a 32-request burst must reject"
        assert served, "admission control must not starve the service entirely"
        assert all(error.retry_after_s > 0 for error in rejected)

    def test_unknown_model_and_bad_shape_are_typed_errors(self, model):
        async def drive():
            async with Server([model], config=CONFIG) as server:
                with pytest.raises(ServeError, match="not served"):
                    await server.submit("no_such_model", np.zeros(model.input_size))
                with pytest.raises(ServeError, match="length"):
                    await server.submit(model.name, np.zeros(model.input_size + 1))
                with pytest.raises(ServeError, match="one vector"):
                    await server.submit(
                        model.name, np.zeros((2, model.input_size))
                    )

        asyncio.run(drive())

    def test_submit_after_close_raises_closed(self, model):
        async def drive():
            server = await Server([model], config=CONFIG).start()
            await server.close()
            with pytest.raises(ServerClosedError):
                await server.submit(model.name, np.zeros(model.input_size))

        asyncio.run(drive())

    def test_server_requires_models(self):
        with pytest.raises(ConfigurationError):
            Server([])

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_wait_us=-1.0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(queue_depth=0)


class TestDrain:
    def test_close_drains_queued_requests(self, model, requests_and_offline):
        """Every accepted request resolves with a real answer on shutdown."""
        inputs, offline = requests_and_offline

        async def drive():
            server = await Server(
                [model],
                config=CONFIG,
                policy=BatchPolicy(max_batch=4, max_wait_us=200_000),
            ).start()
            tasks = [
                asyncio.ensure_future(server.submit(model.name, vector))
                for vector in inputs
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            stats = await server.close(drain=True)
            responses = await asyncio.gather(*tasks)
            return responses, stats

        responses, stats = asyncio.run(drive())
        assert len(responses) == N_REQUESTS
        for response, reference in zip(responses, offline):
            assert np.array_equal(response.output, reference.outputs[0])
        model_stats = stats["models"][offline[0].model_name]
        assert model_stats["served"] == N_REQUESTS
        assert model_stats["queued"] == 0

    def test_close_without_drain_fails_queued_requests(self, model, requests_and_offline):
        inputs, _ = requests_and_offline

        async def drive():
            server = await Server(
                [model],
                config=CONFIG,
                policy=BatchPolicy(max_batch=4, max_wait_us=500_000),
            ).start()
            tasks = [
                asyncio.ensure_future(server.submit(model.name, vector))
                for vector in inputs
            ]
            await asyncio.sleep(0)
            await server.close(drain=False)
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = asyncio.run(drive())
        # The batcher may have dispatched the head of the queue already, but
        # everything still queued must fail fast with the typed error.
        assert any(isinstance(o, ServerClosedError) for o in outcomes)
        assert all(
            isinstance(o, ServerClosedError) or not isinstance(o, BaseException)
            for o in outcomes
        )


class TestThroughput:
    def test_dynamic_batching_sustains_3x_batch1_throughput(self):
        """ISSUE 7 acceptance: >= 3x batch-1 dispatch at a fixed offered load.

        The same 64-request burst is served twice on the same engine and
        configuration — once with batching disabled (max_batch=1) and once
        with max_batch=16.  Batched dispatch rides the vectorized
        ``(batch, n_in)`` engine path, which the calibration in PR 1 puts at
        ~5-8x, so the 3x floor has real margin.  Both servers run the
        sequential dispatch path so the comparison isolates batching itself.
        """
        model = build_model("neuraltalk_lstm", scale=32)
        inputs = synthetic_model_inputs(model, batch=64, seed=11)
        offline = Session(config=CONFIG).run_model("cycle", model, inputs, CONFIG)

        def timed(policy: BatchPolicy) -> tuple[float, list]:
            async def drive():
                async with Server(
                    [model], config=CONFIG, policy=policy, pipeline=False
                ) as server:
                    started = time.perf_counter()
                    responses = await asyncio.gather(
                        *(server.submit(model.name, vector) for vector in inputs)
                    )
                    return time.perf_counter() - started, responses

            return asyncio.run(drive())

        # Warm the layer/prepared caches so neither run pays compression.
        timed(BatchPolicy(max_batch=16, max_wait_us=2000.0))
        batch1_s, _ = timed(BatchPolicy(max_batch=1, max_wait_us=0.0))
        batched_s, responses = timed(BatchPolicy(max_batch=16, max_wait_us=2000.0))

        assert max(response.batch_size for response in responses) > 1
        for index, response in enumerate(responses):
            assert np.array_equal(response.output, offline.outputs[index])
        speedup = batch1_s / batched_s
        assert speedup >= 3.0, (
            f"dynamic batching must sustain >= 3x batch-1 dispatch, "
            f"got {speedup:.2f}x ({batch1_s * 1e3:.1f}ms vs {batched_s * 1e3:.1f}ms)"
        )


class TestDeadlinesHealthAndChaos:
    def test_expired_deadline_shed_with_typed_error(self, model):
        """A request whose relative deadline lapses in the queue is failed
        before compute — shed-before-work, the cheapest place to lose it."""
        from repro.errors import DeadlineExceededError

        async def drive():
            # A large max_wait keeps the batcher holding the lone request
            # long past its microscopic deadline.
            policy = BatchPolicy(max_batch=8, max_wait_us=30_000.0)
            async with Server([model], config=CONFIG, policy=policy) as server:
                with pytest.raises(DeadlineExceededError) as excinfo:
                    await server.submit(
                        model.name, np.zeros(model.input_size), deadline_s=1e-6
                    )
                assert excinfo.value.deadline_s == pytest.approx(1e-6)
                stats = server.stats()
            assert stats["models"][model.name]["expired"] == 1
            assert stats["models"][model.name]["served"] == 0

        asyncio.run(drive())

    def test_generous_deadline_completes_bit_identical(
        self, model, requests_and_offline
    ):
        inputs, offline = requests_and_offline

        async def drive():
            async with Server([model], config=CONFIG) as server:
                return await server.submit(model.name, inputs[0], deadline_s=60.0)

        response = asyncio.run(drive())
        assert np.array_equal(response.output, offline[0].outputs[0])

    def test_invalid_deadline_rejected(self, model):
        async def drive():
            async with Server([model], config=CONFIG) as server:
                with pytest.raises(ServeError, match="deadline_s"):
                    await server.submit(
                        model.name, np.zeros(model.input_size), deadline_s=0.0
                    )

        asyncio.run(drive())

    def test_health_snapshot(self, model, requests_and_offline):
        inputs, _ = requests_and_offline

        async def drive():
            async with Server([model], config=CONFIG) as server:
                before = server.health()
                await server.submit(model.name, inputs[0])
                after = server.health()
            closed = server.health()
            return before, after, closed

        before, after, closed = asyncio.run(drive())
        assert before["ok"] is True
        assert before["models"] == [model.name]
        assert before["served"] == 0 and before["queue_depth"] == 0
        assert after["served"] == 1
        assert after["uptime_s"] >= before["uptime_s"]
        assert closed["ok"] is False

    def test_chaos_injection_gated_off_by_default(self, model):
        async def drive():
            async with Server([model], config=CONFIG) as server:
                assert server.health()["chaos"] is False
                with pytest.raises(ServeError, match="chaos injection is disabled"):
                    server.inject_chaos(0.01, 1.0)

        asyncio.run(drive())

    def test_chaos_injection_stalls_dispatch_when_enabled(
        self, model, requests_and_offline
    ):
        inputs, offline = requests_and_offline

        async def drive():
            async with Server([model], config=CONFIG, chaos=True) as server:
                applied = server.inject_chaos(0.05, duration_s=5.0)
                assert applied["latency_s"] == pytest.approx(0.05)
                started = time.perf_counter()
                response = await server.submit(model.name, inputs[0])
                elapsed = time.perf_counter() - started
            return response, elapsed

        response, elapsed = asyncio.run(drive())
        # Stalled, but still bit-identical: chaos may slow answers, never
        # change them.
        assert elapsed >= 0.05
        assert np.array_equal(response.output, offline[0].outputs[0])

    def test_chaos_parameter_validation(self, model):
        async def drive():
            async with Server([model], config=CONFIG, chaos=True) as server:
                with pytest.raises(ServeError, match=">= 0"):
                    server.inject_chaos(-0.1, 1.0)

        asyncio.run(drive())
