"""Tests for the baseline platform models (roofline, DaDianNao, Table V)."""

from __future__ import annotations

import pytest

from repro.baselines.dadiannao import DaDianNaoModel
from repro.baselines.platforms import build_table5
from repro.baselines.reference import PAPER_TABLE_IV_US, PAPER_TABLE_V
from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1
from repro.errors import ConfigurationError
from repro.workloads.benchmarks import BENCHMARK_NAMES, get_benchmark
from repro.workloads.generator import WorkloadBuilder


class TestRooflineCalibration:
    """The models are calibrated on Alex-6; check they land near Table IV."""

    @pytest.mark.parametrize(
        "spec, platform_name",
        [(CPU_CORE_I7_5930K, "CPU"), (GPU_TITAN_X, "GPU"), (MOBILE_GPU_TEGRA_K1, "mGPU")],
    )
    def test_dense_batch1_matches_paper_within_2x(self, spec, platform_name):
        layer = get_benchmark("Alex-6")
        model = RooflinePlatform(spec)
        paper_us = PAPER_TABLE_IV_US[platform_name][(1, "dense")]["Alex-6"]
        ours_us = model.dense_time_s(layer, batch=1) * 1e6
        assert 0.5 < ours_us / paper_us < 2.0

    @pytest.mark.parametrize(
        "spec, platform_name",
        [(CPU_CORE_I7_5930K, "CPU"), (GPU_TITAN_X, "GPU"), (MOBILE_GPU_TEGRA_K1, "mGPU")],
    )
    def test_sparse_batch1_matches_paper_within_2x(self, spec, platform_name):
        layer = get_benchmark("Alex-6")
        model = RooflinePlatform(spec)
        paper_us = PAPER_TABLE_IV_US[platform_name][(1, "sparse")]["Alex-6"]
        ours_us = model.sparse_time_s(layer, batch=1) * 1e6
        assert 0.4 < ours_us / paper_us < 2.5


class TestRooflineShape:
    def test_compression_helps_at_batch_one(self):
        layer = get_benchmark("Alex-7")
        for spec in (CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1):
            model = RooflinePlatform(spec)
            assert model.sparse_time_s(layer, 1) < model.dense_time_s(layer, 1)

    def test_compression_hurts_at_batch_64_on_cpu(self):
        # Table IV crossover: the sparse kernel loses to batched dense GEMM.
        layer = get_benchmark("Alex-6")
        model = RooflinePlatform(CPU_CORE_I7_5930K)
        assert model.sparse_time_s(layer, 64) > model.dense_time_s(layer, 64)

    def test_batching_amortises_memory_traffic(self):
        layer = get_benchmark("Alex-6")
        model = RooflinePlatform(GPU_TITAN_X)
        assert model.dense_time_s(layer, 64) < model.dense_time_s(layer, 1) / 5

    def test_gpu_faster_than_cpu_faster_than_mgpu(self):
        layer = get_benchmark("VGG-6")
        gpu = RooflinePlatform(GPU_TITAN_X).dense_time_s(layer, 1)
        cpu = RooflinePlatform(CPU_CORE_I7_5930K).dense_time_s(layer, 1)
        mgpu = RooflinePlatform(MOBILE_GPU_TEGRA_K1).dense_time_s(layer, 1)
        assert gpu < cpu <= mgpu

    def test_energy_uses_platform_power(self):
        layer = get_benchmark("Alex-6")
        model = RooflinePlatform(CPU_CORE_I7_5930K)
        energy = model.energy(layer, compressed=False, batch=1)
        assert energy.power_w == CPU_CORE_I7_5930K.power_w
        assert energy.energy_j == pytest.approx(
            model.dense_time_s(layer, 1) * CPU_CORE_I7_5930K.power_w
        )

    def test_performance_record(self):
        layer = get_benchmark("NT-We")
        record = RooflinePlatform(GPU_TITAN_X).performance(layer, compressed=True, batch=1)
        assert record.dense_macs == layer.dense_weights
        assert record.macs_performed < record.dense_macs

    def test_invalid_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            RooflinePlatform(CPU_CORE_I7_5930K).dense_time_s(get_benchmark("Alex-6"), batch=0)


class TestDaDianNao:
    def test_bandwidth_value(self):
        assert DaDianNaoModel().bandwidth_gbs == pytest.approx(4964, rel=0.02)

    def test_fc7_throughput_matches_table5_order(self):
        model = DaDianNaoModel()
        fps = model.frames_per_second(get_benchmark("Alex-7"))
        assert fps == pytest.approx(PAPER_TABLE_V["DaDianNao"]["throughput_fps"], rel=0.1)

    def test_energy_positive(self):
        energy = DaDianNaoModel().energy(get_benchmark("Alex-7"))
        assert energy.energy_j > 0


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        builder = WorkloadBuilder()
        return {row.name: row for row in build_table5(builder=builder)}

    def test_all_platforms_present(self, rows):
        assert {"Core i7-5930K", "GeForce Titan X", "Tegra K1", "A-Eye", "TrueNorth",
                "DaDianNao", "EIE (64PE, 45nm)", "EIE (256PE, 28nm)"} <= set(rows)

    def test_eie_beats_dadiannao_energy_efficiency(self, rows):
        # Paper: 19x better energy efficiency (we only require a large factor).
        ratio = rows["EIE (64PE, 45nm)"].energy_efficiency / rows["DaDianNao"].energy_efficiency
        assert ratio > 5.0

    def test_eie_throughput_in_paper_ballpark(self, rows):
        fps = rows["EIE (64PE, 45nm)"].throughput_fps
        assert 0.5 * PAPER_TABLE_V["EIE (64PE, 45nm)"]["throughput_fps"] < fps < \
            2.0 * PAPER_TABLE_V["EIE (64PE, 45nm)"]["throughput_fps"]

    def test_256pe_faster_than_64pe(self, rows):
        assert rows["EIE (256PE, 28nm)"].throughput_fps > 2.0 * rows["EIE (64PE, 45nm)"].throughput_fps

    def test_eie_area_matches_paper(self, rows):
        assert rows["EIE (64PE, 45nm)"].area_mm2 == pytest.approx(40.8, rel=0.05)

    def test_area_efficiency_none_when_area_unknown(self, rows):
        assert rows["Tegra K1"].area_efficiency is None
