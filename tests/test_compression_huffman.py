"""Tests for the Huffman coder used for storage accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.huffman import HuffmanCode
from repro.errors import CompressionError


class TestConstruction:
    def test_single_symbol(self):
        code = HuffmanCode.from_symbols([5, 5, 5])
        assert code.code_length(5) == 1

    def test_two_symbols_one_bit_each(self):
        code = HuffmanCode.from_symbols([0, 0, 1])
        assert code.code_length(0) == 1
        assert code.code_length(1) == 1

    def test_skewed_distribution_gives_short_codes_to_common_symbols(self):
        symbols = [0] * 100 + [1] * 10 + [2] * 5 + [3] * 1
        code = HuffmanCode.from_symbols(symbols)
        assert code.code_length(0) < code.code_length(3)

    def test_deterministic(self):
        symbols = [0, 1, 1, 2, 2, 2, 3]
        first = HuffmanCode.from_symbols(symbols).codebook
        second = HuffmanCode.from_symbols(symbols).codebook
        assert first == second

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            HuffmanCode.from_symbols([])
        with pytest.raises(CompressionError):
            HuffmanCode.from_frequencies({})

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(CompressionError):
            HuffmanCode.from_frequencies({0: 0})


class TestPrefixProperty:
    def test_no_code_is_a_prefix_of_another(self, rng):
        symbols = rng.integers(0, 16, size=500).tolist()
        code = HuffmanCode.from_symbols(symbols)
        codes = list(code.codebook.values())
        for index, first in enumerate(codes):
            for second in codes[index + 1:]:
                assert not first.startswith(second)
                assert not second.startswith(first)


class TestEncodeDecode:
    def test_roundtrip(self, rng):
        symbols = rng.integers(0, 8, size=200).tolist()
        code = HuffmanCode.from_symbols(symbols)
        assert code.decode(code.encode(symbols)) == symbols

    def test_encoded_bits_matches_encode_length(self, rng):
        symbols = rng.integers(0, 8, size=300).tolist()
        code = HuffmanCode.from_symbols(symbols)
        assert code.encoded_bits(symbols) == len(code.encode(symbols))

    def test_unknown_symbol_rejected(self):
        code = HuffmanCode.from_symbols([0, 1, 1])
        with pytest.raises(CompressionError):
            code.encode([2])

    def test_invalid_bitstream_rejected(self):
        code = HuffmanCode.from_symbols([0, 1, 1, 2])
        with pytest.raises(CompressionError):
            code.decode("01x")

    def test_truncated_stream_rejected(self):
        code = HuffmanCode.from_symbols([0] * 5 + [1] * 3 + [2])
        longest = max(code.codebook.values(), key=len)
        with pytest.raises(CompressionError):
            code.decode(longest[:-1]) if len(longest) > 1 else None
        if len(longest) <= 1:
            pytest.skip("all codes are one bit; truncation cannot be mid-symbol")


class TestCompressionQuality:
    def test_average_bits_below_fixed_width_for_skewed_data(self, rng):
        # 4-bit symbols with a geometric-ish distribution compress below 4 bits.
        symbols = np.minimum(rng.geometric(0.5, size=2000) - 1, 15).tolist()
        code = HuffmanCode.from_symbols(symbols)
        frequencies = {symbol: symbols.count(symbol) for symbol in set(symbols)}
        assert code.average_bits(frequencies) < 4.0

    def test_average_bits_at_least_entropy_bound(self, rng):
        symbols = rng.integers(0, 4, size=1000).tolist()
        code = HuffmanCode.from_symbols(symbols)
        frequencies = {symbol: symbols.count(symbol) for symbol in set(symbols)}
        total = sum(frequencies.values())
        probabilities = np.array([count / total for count in frequencies.values()])
        entropy = -np.sum(probabilities * np.log2(probabilities))
        assert code.average_bits(frequencies) >= entropy - 1e-9


class TestVectorizedTallyParity:
    """The bincount/unique tally paths match the per-element string path."""

    def test_from_symbols_matches_counter_path(self, rng):
        symbols = rng.integers(0, 16, size=5000)
        from collections import Counter
        reference = HuffmanCode.from_frequencies(Counter(symbols.tolist()))
        vectorized = HuffmanCode.from_symbols(symbols)
        assert vectorized.codebook == reference.codebook

    def test_encoded_bits_matches_string_encoding(self, rng):
        # Both streams of a compressed layer: weight indices and zero runs.
        for high in (2, 16, 256):
            symbols = rng.integers(0, high, size=4000)
            code = HuffmanCode.from_symbols(symbols)
            assert code.encoded_bits(symbols) == len(code.encode(symbols))
            assert code.encoded_bits(symbols.tolist()) == len(code.encode(symbols))

    def test_encoded_bits_negative_and_float_symbols(self, rng):
        # np.unique fallback (negative ints, floats) agrees with the string path.
        negatives = rng.integers(-8, 8, size=1000)
        code = HuffmanCode.from_symbols(negatives)
        assert code.encoded_bits(negatives) == len(code.encode(negatives))
        floats = np.round(rng.normal(size=500), 1)
        float_code = HuffmanCode.from_symbols(floats)
        assert float_code.encoded_bits(floats) == len(float_code.encode(floats))

    def test_object_symbols_still_supported(self):
        words = ["a", "b", "a", "c", "a", "b"]
        code = HuffmanCode.from_symbols(np.asarray(words, dtype=object))
        assert code.encoded_bits(np.asarray(words, dtype=object)) == len(code.encode(words))

    def test_average_bits_consistent_with_weighted_bits(self):
        frequencies = {0: 70, 1: 20, 2: 9, 3: 1}
        code = HuffmanCode.from_frequencies(frequencies)
        total = sum(frequencies.values())
        assert code.average_bits(frequencies) == code.weighted_bits(frequencies) / total
