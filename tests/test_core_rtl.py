"""Tests for the two-phase RTL kernel and the single-PE RTL model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.csc import CSCMatrix
from repro.core.activation_queue import QueueEntry
from repro.core.pe import ProcessingElement
from repro.core.rtl.kernel import Module, Register, Simulator, Wire
from repro.core.rtl.pe_rtl import run_pe_rtl
from repro.errors import SimulationError


class _Counter(Module):
    """A module that increments a register every cycle."""

    def __init__(self):
        super().__init__("counter")
        self.count = self.add_register("count", 0)

    def propagate(self):
        self.count.write(self.count.read() + 1)


class _Follower(Module):
    """Drives a wire from a counter register (combinational)."""

    def __init__(self, counter: _Counter):
        super().__init__("follower")
        self.counter = counter
        self.double = Wire("double", 0)

    def propagate(self):
        self.double.drive(self.counter.count.read() * 2)


class TestKernel:
    def test_register_latches_on_tick(self):
        register = Register("r", 0)
        register.write(5)
        assert register.read() == 0
        register.tick()
        assert register.read() == 5

    def test_counter_advances_once_per_cycle(self):
        counter = _Counter()
        simulator = Simulator(modules=[counter])
        simulator.run(cycles=5)
        assert counter.count.read() == 5
        assert simulator.cycle == 5

    def test_combinational_wire_follows_register(self):
        counter = _Counter()
        follower = _Follower(counter)
        simulator = Simulator(modules=[follower, counter])  # order must not matter
        simulator.run(cycles=3)
        assert follower.double.value == 2 * (counter.count.read() - 1) or follower.double.value == 2 * counter.count.read()

    def test_run_until_predicate(self):
        counter = _Counter()
        simulator = Simulator(modules=[counter])
        executed = simulator.run(until=lambda: counter.count.read() >= 4)
        assert counter.count.read() >= 4
        assert executed >= 4

    def test_run_requires_condition(self):
        with pytest.raises(SimulationError):
            Simulator(modules=[_Counter()]).run()

    def test_runaway_simulation_detected(self):
        counter = _Counter()
        simulator = Simulator(modules=[counter])
        with pytest.raises(SimulationError):
            simulator.run(until=lambda: False, max_cycles=10)


class TestRTLProcessingElement:
    def _schedule(self, activations):
        return [
            QueueEntry(column=int(i), value=float(v))
            for i, v in enumerate(activations)
            if v != 0.0
        ]

    def test_matches_functional_pe(self, compressed_layer, small_config, dense_activations):
        pe_id = 0
        slice_matrix = compressed_layer.storage.per_pe[pe_id]
        schedule = self._schedule(dense_activations)
        rtl = run_pe_rtl(slice_matrix, compressed_layer.codebook, schedule)

        functional = ProcessingElement(
            pe_id=pe_id,
            slice_matrix=slice_matrix,
            codebook=compressed_layer.codebook,
            num_pes=small_config.num_pes,
            config=small_config,
        )
        for entry in schedule:
            functional.process_activation(entry.column, entry.value)
        assert np.allclose(rtl.accumulators, functional.read_outputs())
        assert rtl.entries_retired == functional.counters.entries_processed

    def test_cycle_count_bounds(self, compressed_layer, dense_activations):
        slice_matrix = compressed_layer.storage.per_pe[1]
        schedule = self._schedule(dense_activations)
        rtl = run_pe_rtl(slice_matrix, compressed_layer.codebook, schedule)
        # At least one cycle per retired entry; at most entries + a small
        # per-column overhead (pointer read / idle bubbles).
        assert rtl.cycles >= rtl.entries_retired
        assert rtl.cycles <= rtl.entries_retired + 3 * len(schedule) + 5
        assert rtl.busy_cycles == rtl.entries_retired

    def test_empty_schedule(self, compressed_layer):
        rtl = run_pe_rtl(compressed_layer.storage.per_pe[0], compressed_layer.codebook, [])
        assert rtl.entries_retired == 0
        assert np.all(rtl.accumulators == 0.0)

    def test_single_dense_column(self):
        dense = np.array([[1.0], [2.0], [3.0]])
        matrix = CSCMatrix.from_dense(dense)
        from repro.compression.quantization import WeightCodebook

        codebook = WeightCodebook(centroids=np.array([0.0, 1.0, 2.0, 3.0]), index_bits=4)
        indices = codebook.quantize(dense)
        index_matrix = CSCMatrix.from_dense(indices.astype(float))
        rtl = run_pe_rtl(index_matrix, codebook, [QueueEntry(column=0, value=2.0)])
        assert np.allclose(rtl.accumulators, dense[:, 0] * 2.0)
        assert rtl.ptr_reads == 2
