"""Tests for magnitude pruning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.compression.pruning import prune_by_threshold, prune_to_density


class TestPruneByThreshold:
    def test_removes_small_weights(self):
        weights = np.array([[0.1, -0.5], [0.9, -0.05]])
        result = prune_by_threshold(weights, 0.2)
        assert result.weights[0, 0] == 0.0
        assert result.weights[1, 1] == 0.0
        assert result.weights[0, 1] == -0.5
        assert result.weights[1, 0] == 0.9

    def test_mask_matches_weights(self, sparse_weights):
        result = prune_by_threshold(sparse_weights, 0.3)
        assert np.array_equal(result.mask, result.weights != 0.0)

    def test_zero_threshold_keeps_everything_nonzero(self, sparse_weights):
        result = prune_by_threshold(sparse_weights, 0.0)
        assert result.num_nonzero == np.count_nonzero(sparse_weights)

    def test_negative_threshold_rejected(self, sparse_weights):
        with pytest.raises(CompressionError):
            prune_by_threshold(sparse_weights, -0.1)

    def test_does_not_modify_input(self, sparse_weights):
        original = sparse_weights.copy()
        prune_by_threshold(sparse_weights, 0.5)
        assert np.array_equal(sparse_weights, original)


class TestPruneToDensity:
    @pytest.mark.parametrize("density", [0.05, 0.1, 0.25, 0.5])
    def test_achieves_requested_density(self, rng, density):
        weights = rng.normal(size=(64, 64))
        result = prune_to_density(weights, density)
        assert result.density == pytest.approx(density, abs=0.02)

    def test_keeps_largest_magnitudes(self, rng):
        weights = rng.normal(size=(32, 32))
        result = prune_to_density(weights, 0.1)
        kept = np.abs(weights[result.mask])
        dropped = np.abs(weights[~result.mask])
        assert kept.min() >= dropped.max() - 1e-12

    def test_density_one_keeps_existing_pattern(self, sparse_weights):
        result = prune_to_density(sparse_weights, 1.0)
        assert result.num_nonzero == np.count_nonzero(sparse_weights)

    def test_handles_ties(self):
        weights = np.ones((10, 10))
        result = prune_to_density(weights, 0.25)
        assert result.density == pytest.approx(0.25, abs=0.01)

    def test_invalid_density_rejected(self, sparse_weights):
        with pytest.raises(Exception):
            prune_to_density(sparse_weights, 0.0)
        with pytest.raises(Exception):
            prune_to_density(sparse_weights, 1.5)

    def test_compression_ratio(self, rng):
        weights = rng.normal(size=(40, 40))
        result = prune_to_density(weights, 0.1)
        assert result.compression_from_pruning == pytest.approx(10.0, rel=0.15)
