"""Tests for k-means weight sharing and the codebook."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.compression.quantization import WeightCodebook, kmeans_codebook


class TestKMeansCodebook:
    def test_centroids_sorted_and_count(self, rng):
        values = rng.normal(size=500)
        centroids = kmeans_codebook(values, 15, rng=rng)
        assert centroids.shape == (15,)
        assert np.all(np.diff(centroids) >= 0)

    def test_centroids_within_data_range(self, rng):
        values = rng.normal(size=300)
        centroids = kmeans_codebook(values, 8, rng=rng)
        assert centroids.min() >= values.min() - 1e-9
        assert centroids.max() <= values.max() + 1e-9

    def test_fewer_unique_values_than_clusters(self):
        centroids = kmeans_codebook(np.array([1.0, 2.0, 1.0]), 5)
        assert centroids.shape == (5,)
        assert {1.0, 2.0}.issubset(set(np.round(centroids, 9).tolist()))

    def test_empty_values_rejected(self):
        with pytest.raises(CompressionError):
            kmeans_codebook(np.array([]), 4)

    def test_bad_cluster_count_rejected(self, rng):
        with pytest.raises(CompressionError):
            kmeans_codebook(rng.normal(size=10), 0)

    def test_random_init_supported(self, rng):
        centroids = kmeans_codebook(rng.normal(size=200), 8, rng=rng, init="random")
        assert centroids.shape == (8,)

    def test_unknown_init_rejected(self, rng):
        with pytest.raises(CompressionError):
            kmeans_codebook(rng.normal(size=200), 8, rng=rng, init="plusplus")

    def test_reduces_quantization_error_vs_linear_grid(self, rng):
        # k-means should do no worse than the linear initialisation it starts from.
        values = np.concatenate([rng.normal(-1, 0.05, 300), rng.normal(2, 0.05, 300)])
        centroids = kmeans_codebook(values, 4, rng=rng)
        linear = np.linspace(values.min(), values.max(), 4)

        def rms(points):
            assignments = np.argmin(np.abs(values[:, None] - points[None, :]), axis=1)
            return np.sqrt(np.mean((values - points[assignments]) ** 2))

        assert rms(centroids) <= rms(linear) + 1e-9


class TestWeightCodebook:
    def test_fit_reserves_zero_entry(self, rng):
        codebook = WeightCodebook.fit(rng.normal(size=200), index_bits=4, rng=rng)
        assert codebook.centroids[0] == 0.0
        assert codebook.size == 16
        assert codebook.zero_index == 0

    def test_quantize_maps_zero_to_zero_index(self, rng):
        codebook = WeightCodebook.fit(rng.normal(size=200), rng=rng)
        values = np.array([0.0, 0.5, -0.5, 0.0])
        indices = codebook.quantize(values)
        assert indices[0] == 0 and indices[3] == 0

    def test_dequantize_roundtrip_error_small(self, rng):
        values = rng.normal(size=500)
        codebook = WeightCodebook.fit(values, rng=rng)
        reconstructed = codebook.dequantize(codebook.quantize(values))
        rms = np.sqrt(np.mean((reconstructed - values) ** 2))
        assert rms < np.std(values) * 0.25

    def test_quantization_error_method(self, rng):
        values = rng.normal(size=300)
        codebook = WeightCodebook.fit(values, rng=rng)
        assert codebook.quantization_error(values) >= 0.0
        assert codebook.quantization_error(codebook.centroids) == pytest.approx(0.0, abs=1e-12)

    def test_out_of_range_indices_rejected(self, rng):
        codebook = WeightCodebook.fit(rng.normal(size=100), rng=rng)
        with pytest.raises(CompressionError):
            codebook.dequantize(np.array([99]))

    def test_too_many_centroids_rejected(self):
        with pytest.raises(CompressionError):
            WeightCodebook(centroids=np.concatenate([[0.0], np.arange(1, 20)]), index_bits=4)

    def test_missing_zero_entry_rejected(self):
        with pytest.raises(CompressionError):
            WeightCodebook(centroids=np.array([0.5, 1.0]), index_bits=4)

    def test_storage_bits(self, rng):
        codebook = WeightCodebook.fit(rng.normal(size=100), index_bits=4, rng=rng)
        assert codebook.storage_bits == 16 * 16

    def test_all_zero_values_rejected(self):
        with pytest.raises(CompressionError):
            WeightCodebook.fit(np.zeros(10))

    def test_quantize_preserves_shape(self, rng):
        codebook = WeightCodebook.fit(rng.normal(size=100), rng=rng)
        matrix = rng.normal(size=(6, 5))
        assert codebook.quantize(matrix).shape == (6, 5)
