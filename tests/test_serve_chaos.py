"""The chaos harness: seeded plans, fault application, store corruption.

The full fleet-under-faults acceptance run lives in CI (``repro serve
chaos`` with ``--verify``); these tests cover the harness itself — plan
determinism, event validation, and that the store-corruption fault is
*harmless by construction* (CRC detection → recompute, never wrong bits).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import ChaosEvent, ChaosPlan
from repro.serve.chaos import _corrupt_store_file
from repro.store import ArtifactStore


class TestChaosEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown chaos event kind"):
            ChaosEvent(at_s=0.0, kind="meteor")

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError, match="must be >= 0"):
            ChaosEvent(at_s=-1.0, kind="kill")


class TestChaosPlan:
    def test_same_seed_same_plan(self):
        first = ChaosPlan.generate(seed=7, workers=3, duration_s=10.0)
        second = ChaosPlan.generate(seed=7, workers=3, duration_s=10.0)
        assert first.events == second.events

    def test_different_seed_different_plan(self):
        first = ChaosPlan.generate(seed=7, workers=3, duration_s=10.0)
        second = ChaosPlan.generate(seed=8, workers=3, duration_s=10.0)
        assert first.events != second.events

    def test_events_sorted_and_counted(self):
        plan = ChaosPlan.generate(
            seed=1, workers=4, duration_s=10.0, kills=3, stalls=2, corruptions=1
        )
        times = [event.at_s for event in plan.events]
        assert times == sorted(times)
        assert plan.kills == 3
        assert sum(1 for e in plan.events if e.kind == "stall") == 2
        assert sum(1 for e in plan.events if e.kind == "corrupt") == 1

    def test_kills_land_mid_window(self):
        plan = ChaosPlan.generate(seed=5, workers=2, duration_s=10.0, kills=8)
        for event in plan.events:
            if event.kind == "kill":
                assert 1.0 <= event.at_s <= 7.0
                assert 0 <= event.worker < 2

    def test_describe_is_json_friendly(self):
        plan = ChaosPlan.generate(seed=2, workers=2, duration_s=5.0)
        rows = plan.describe()
        assert len(rows) == len(plan.events)
        assert {"at_s", "kind", "worker", "latency_s", "duration_s"} <= rows[0].keys()

    def test_generate_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan.generate(seed=0, workers=0, duration_s=1.0)
        with pytest.raises(ConfigurationError):
            ChaosPlan.generate(seed=0, workers=1, duration_s=0.0)


class TestStoreCorruption:
    def test_corruption_is_detected_not_served(self, tmp_path):
        """A corrupted artifact must read back as a miss, never as bad data."""
        store = ArtifactStore(tmp_path)
        store.store_json("shards", "victim", {"value": [1.0, 2.0, 3.0]})
        assert store.load_json("shards", "victim") == {"value": [1.0, 2.0, 3.0]}

        hit = _corrupt_store_file(tmp_path, ordinal=0)
        assert hit is not None and "shards" in hit

        # The CRC catches the damage: a miss (recompute), not wrong bits.
        assert store.load_json("shards", "victim") is None

    def test_corruption_target_is_deterministic(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for name in ("a", "b", "c"):
            store.store_json("shards", name, {"name": name})
        files_before = sorted(p.name for p in (tmp_path / "shards").glob("*.json"))
        first = _corrupt_store_file(tmp_path, ordinal=1)
        # Same ordinal over the same file set → the same victim.
        assert _corrupt_store_file(tmp_path, ordinal=1) == first
        assert sorted(
            p.name for p in (tmp_path / "shards").glob("*.json")
        ) == files_before

    def test_empty_store_is_a_noop(self, tmp_path):
        assert _corrupt_store_file(tmp_path, ordinal=0) is None

    def test_corrupted_arrays_artifact_recomputes_identically(self, tmp_path):
        """End to end through the compression cache: corrupt the cached
        layer artifact, recompress, and get bit-identical weights back."""
        from repro.compression import CompressionConfig
        from repro.engine.session import Session
        from repro.models import build_model, synthetic_model_inputs
        from repro.core.config import EIEConfig

        config = EIEConfig(num_pes=4)
        model = build_model("neuraltalk_lstm", scale=64)
        vector = synthetic_model_inputs(model, batch=1, seed=3)[0]

        store = ArtifactStore(tmp_path)
        session = Session(CompressionConfig(), config=config, store=store)
        baseline = session.run_model("functional", model, vector, config).outputs[0]
        assert list(tmp_path.glob("layers/*.npz")), "compression was not cached"

        hit = _corrupt_store_file(tmp_path, ordinal=0)
        assert hit is not None

        fresh = Session(CompressionConfig(), config=config, store=store)
        again = fresh.run_model("functional", model, vector, config).outputs[0]
        assert np.array_equal(baseline, again)
