"""Tests for the command-line interface (static tables and cheap ablations only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_command(self):
        args = build_parser().parse_args(["table", "1"])
        assert args.command == "table" and args.number == 1

    def test_figure_command_with_options(self):
        args = build_parser().parse_args(
            ["figure", "8", "--pes", "16", "--benchmarks", "Alex-6", "NT-We"]
        )
        assert args.command == "figure"
        assert args.number == 8
        assert args.pes == 16
        assert args.benchmarks == ["Alex-6", "NT-We"]

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_invalid_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "1", "--benchmarks", "Alex-99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "--engine", "cycle", "--rows", "32", "--cols", "48", "--batch", "4"]
        )
        assert args.command == "run"
        assert args.engine == "cycle"
        assert (args.rows, args.cols, args.batch) == (32, 48, 4)

    def test_run_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine", "verilog"])


class TestStaticCommands:
    """Commands that do not build full-size workloads (fast enough for unit tests)."""

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "DRAM" in out and "640" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "spmat_read" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table", "3"]) == 0
        out = capsys.readouterr().out
        assert "Alex-6" in out and "NT-LSTM" in out

    def test_summary(self, capsys):
        assert main(["summary", "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "Peak GOP/s" in out
        assert "64" in out

    def test_figure10(self, capsys):
        assert main(["figure", "10"]) == 0
        out = capsys.readouterr().out
        assert "int16" in out and "int8" in out

    def test_codebook_ablation(self, capsys):
        assert main(["ablation", "codebook-bits"]) == 0
        assert "RMS error" in capsys.readouterr().out

    def test_run_functional_engine(self, capsys):
        assert main(["run", "--engine", "functional", "--rows", "24", "--cols", "36",
                     "--pes", "4", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "functional" in out
        assert "Matches dense reference" in out and "True" in out

    def test_run_cycle_engine(self, capsys):
        assert main(["run", "--engine", "cycle", "--rows", "24", "--cols", "36",
                     "--pes", "4", "--batch", "3"]) == 0
        out = capsys.readouterr().out
        assert "Cycles (total)" in out

    def test_run_rejects_bad_sizes(self):
        with pytest.raises(SystemExit):
            main(["run", "--rows", "0", "--cols", "8", "--pes", "1"])
