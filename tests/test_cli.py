"""Tests for the command-line interface (static tables and cheap ablations only)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_command(self):
        args = build_parser().parse_args(["table", "1"])
        assert args.command == "table" and args.number == 1

    def test_figure_command_with_options(self):
        args = build_parser().parse_args(
            ["figure", "8", "--pes", "16", "--benchmarks", "Alex-6", "NT-We"]
        )
        assert args.command == "figure"
        assert args.number == 8
        assert args.pes == 16
        assert args.benchmarks == ["Alex-6", "NT-We"]

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_invalid_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "1", "--benchmarks", "Alex-99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "--engine", "cycle", "--rows", "32", "--cols", "48", "--batch", "4"]
        )
        assert args.command == "run"
        assert args.engine == "cycle"
        assert (args.rows, args.cols, args.batch) == (32, 48, 4)

    def test_run_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine", "verilog"])

    def test_experiment_run_command_options(self):
        args = build_parser().parse_args(
            ["experiment", "run", "fig8_fifo_depth", "--set", "scale=64", "--jobs", "4"]
        )
        assert args.command == "experiment"
        assert args.experiment_command == "run"
        assert args.name == "fig8_fifo_depth"
        assert args.overrides == ["scale=64"]
        assert args.jobs == 4


class TestVersionAndUnknownCommands:
    def test_version_flag_prints_version_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert "repro-eie" in out and repro.__version__ in out

    def test_unknown_command_exits_2_with_one_line_hint(self, capsys):
        assert main(["bogus-command"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown command 'bogus-command'" in err
        assert "experiment" in err  # the hint names the valid commands


class TestExperimentCommands:
    def test_experiment_list_names_every_registered_experiment(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig8_fifo_depth", "table4_wallclock", "ablation_partitioning"):
            assert name in out

    def test_experiment_describe_emits_default_spec_json(self, capsys):
        assert main(["experiment", "describe", "fig8_fifo_depth"]) == 0
        description = json.loads(capsys.readouterr().out)
        assert description["name"] == "fig8_fifo_depth"
        assert description["axes"] == ["fifo_depth"]
        assert description["default_spec"]["grid"]["fifo_depth"] == [
            1, 2, 4, 8, 16, 32, 64, 128, 256
        ]

    def test_experiment_describe_unknown_name_exits_2(self, capsys):
        assert main(["experiment", "describe", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_run_with_overrides_and_jobs(self, capsys):
        assert main([
            "experiment", "run", "fig8_fifo_depth",
            "--set", "scale=64", "--set", "workloads=Alex-7",
            "--set", "grid.fifo_depth=[1,8]", "--set", "config.num_pes=16",
            "--jobs", "2",
        ]) == 0
        captured = capsys.readouterr()
        assert "Load-balance efficiency vs FIFO depth:" in captured.out
        assert "Alex-7-x64" in captured.out
        assert "2 points" not in captured.out  # run summary goes to stderr
        assert "jobs=2" in captured.err

    def test_experiment_run_from_spec_file_writes_results(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "experiment": "fig9_sram_width",
            "workloads": ["Alex-7"],
            "scale": 64,
            "grid": {"width_bits": [32, 64]},
            "config": {"num_pes": 16},
        }))
        results_dir = tmp_path / "results"
        assert main([
            "experiment", "run", "--spec", str(spec_path),
            "--results-dir", str(results_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "Spmat SRAM width sweep:" in out
        assert (results_dir / "fig9_sram_width.txt").exists()
        stored = json.loads((results_dir / "fig9_sram_width.json").read_text())
        assert stored["provenance"]["spec"]["scale"] == 64
        assert len(stored["records"]) == 2

    def test_experiment_run_without_name_or_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "run"])

    def test_experiment_run_rejects_bad_set_syntax(self):
        with pytest.raises(SystemExit):
            main(["experiment", "run", "table1_energy", "--set", "noequals"])

    def test_experiment_run_rejects_unknown_spec_key(self, capsys):
        assert main(["experiment", "run", "table1_energy", "--set", "bogus=1"]) == 2
        assert "no field 'bogus'" in capsys.readouterr().err

    def test_experiment_run_missing_spec_file_exits_2_without_traceback(self, capsys):
        assert main(["experiment", "run", "--spec", "/nonexistent/spec.json"]) == 2
        assert "repro-eie:" in capsys.readouterr().err

    def test_set_values_parse_json_lists_commas_and_quoted_strings(self):
        from repro.cli import _parse_override

        assert _parse_override("grid.fifo_depth=[1,8]") == ("grid.fifo_depth", [1, 8])
        assert _parse_override("workloads=Alex-6,NT-We") == (
            "workloads", ["Alex-6", "NT-We"]
        )
        assert _parse_override("scale=64") == ("scale", 64)
        # A JSON-quoted string keeps its commas (no list splitting).
        assert _parse_override('params.label="a, b"') == ("params.label", "a, b")

    def test_scale_on_fixed_workload_commands_prints_a_note(self, capsys):
        assert main(["table", "1", "--scale", "64"]) == 0
        captured = capsys.readouterr()
        assert "--scale has no effect" in captured.err
        assert "DRAM" in captured.out  # the table still renders normally


class TestStaticCommands:
    """Commands that do not build full-size workloads (fast enough for unit tests)."""

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "DRAM" in out and "640" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "spmat_read" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table", "3"]) == 0
        out = capsys.readouterr().out
        assert "Alex-6" in out and "NT-LSTM" in out

    def test_summary(self, capsys):
        assert main(["summary", "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "Peak GOP/s" in out
        assert "64" in out

    def test_figure10(self, capsys):
        assert main(["figure", "10"]) == 0
        out = capsys.readouterr().out
        assert "int16" in out and "int8" in out

    def test_codebook_ablation(self, capsys):
        assert main(["ablation", "codebook-bits"]) == 0
        assert "RMS error" in capsys.readouterr().out

    def test_run_functional_engine(self, capsys):
        assert main(["run", "--engine", "functional", "--rows", "24", "--cols", "36",
                     "--pes", "4", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "functional" in out
        assert "Matches dense reference" in out and "True" in out

    def test_run_cycle_engine(self, capsys):
        assert main(["run", "--engine", "cycle", "--rows", "24", "--cols", "36",
                     "--pes", "4", "--batch", "3"]) == 0
        out = capsys.readouterr().out
        assert "Cycles (total)" in out

    def test_run_rejects_bad_sizes(self):
        with pytest.raises(SystemExit):
            main(["run", "--rows", "0", "--cols", "8", "--pes", "1"])


class TestModelCommands:
    def test_model_list_names_every_registered_model(self, capsys):
        assert main(["model", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("alexnet_fc", "vgg_fc", "neuraltalk_lstm"):
            assert name in out

    def test_model_describe_emits_spec_and_nodes_json(self, capsys):
        assert main(["model", "describe", "neuraltalk_lstm"]) == 0
        description = json.loads(capsys.readouterr().out)
        assert description["default_spec"]["params"]["mode"] == "per_gate"
        assert description["default_build"]["num_nodes"] == 4

    def test_model_describe_unknown_name_exits_2(self, capsys):
        assert main(["model", "describe", "resnet"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_model_run_cycle_engine_reports_per_node_and_totals(self, capsys):
        assert main(["model", "run", "neuraltalk_lstm", "--engine", "cycle",
                     "--scale", "32", "--pes", "4"]) == 0
        out = capsys.readouterr().out
        for gate in ("gate_input", "gate_forget", "gate_output", "gate_cell"):
            assert gate in out
        assert "Total cycles" in out
        assert "Energy (uJ" in out

    def test_model_run_functional_engine_checks_reference(self, capsys):
        assert main(["model", "run", "alexnet_fc", "--engine", "functional",
                     "--scale", "64", "--pes", "4", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "Matches decoded dense reference" in out and "True" in out

    def test_model_run_stacked_lstm_via_param(self, capsys):
        assert main(["model", "run", "neuraltalk_lstm", "--engine", "cycle",
                     "--scale", "32", "--pes", "4", "--param", "mode=stacked"]) == 0
        out = capsys.readouterr().out
        assert "gates_stacked" in out

    def test_model_compress_reports_storage(self, capsys):
        assert main(["model", "compress", "vgg_fc", "--scale", "64", "--pes", "4"]) == 0
        out = capsys.readouterr().out
        assert "Compression ratio" in out
        assert "VGG-6-x64" in out

    def test_model_run_from_npz_import(self, capsys, tmp_path):
        import numpy as np

        path = tmp_path / "imported.npz"
        rng = np.random.default_rng(0)
        w0 = rng.normal(size=(16, 24))
        w0[rng.random((16, 24)) >= 0.3] = 0.0
        w0[0, 0] = 0.5
        w1 = rng.normal(size=(8, 16))
        w1[rng.random((8, 16)) >= 0.3] = 0.0
        w1[0, 0] = 0.5
        np.savez(path, **{"fc6.weight": w0, "fc7.weight": w1})
        assert main(["model", "run", "--npz", str(path), "--engine", "cycle",
                     "--pes", "4"]) == 0
        out = capsys.readouterr().out
        assert "fc6" in out and "fc7" in out and "Total cycles" in out

    def test_model_rejects_name_and_npz_together(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["model", "run", "alexnet_fc", "--npz", str(tmp_path / "x.npz")])

    def test_model_rejects_registry_flags_with_npz(self, tmp_path):
        with pytest.raises(SystemExit, match="no effect"):
            main(["model", "run", "--npz", str(tmp_path / "x.npz"), "--scale", "16"])
        with pytest.raises(SystemExit, match="no effect"):
            main(["model", "compress", "--npz", str(tmp_path / "x.npz"),
                  "--param", "mode=stacked"])

    def test_model_requires_name_or_npz(self):
        with pytest.raises(SystemExit):
            main(["model", "run"])

    def test_model_unknown_name_exits_2(self, capsys):
        assert main(["model", "run", "resnet", "--pes", "4"]) == 2
        assert "unknown model" in capsys.readouterr().err


class TestCacheAndExecutorCli:
    def test_executor_and_no_store_flags_parse(self):
        args = build_parser().parse_args([
            "experiment", "run", "fig8_fifo_depth",
            "--jobs", "4", "--executor", "processes", "--no-store",
        ])
        assert args.executor == "processes"
        assert args.no_store is True

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "run", "fig8_fifo_depth", "--executor", "gpu"]
            )

    def test_experiment_run_processes_matches_serial_output(self, capsys):
        argv_tail = [
            "--set", "scale=64", "--set", "workloads=Alex-7,NT-We",
            "--set", "grid.fifo_depth=[1,8]", "--set", "config.num_pes=16",
        ]
        assert main(["experiment", "run", "fig8_fifo_depth", *argv_tail]) == 0
        serial = capsys.readouterr().out
        assert main([
            "experiment", "run", "fig8_fifo_depth",
            "--jobs", "2", "--executor", "processes", *argv_tail,
        ]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_info_and_clear_roundtrip(self, capsys, tmp_path, monkeypatch):
        store_dir = tmp_path / "cli-store"
        monkeypatch.setenv("REPRO_STORE_DIR", str(store_dir))
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert str(store_dir) in out and "Entries" in out

        # A tiny synthetic run populates the store through the session layer.
        assert main([
            "run", "--engine", "functional",
            "--rows", "24", "--cols", "36", "--pes", "4", "--batch", "2",
        ]) == 0
        capsys.readouterr()
        assert len(list((store_dir / "layers").glob("*.npz"))) == 1

        assert main(["cache", "clear"]) == 0
        assert "removed 1 artifact store entry" in capsys.readouterr().out
        assert list((store_dir / "layers").glob("*.npz")) == []

    def test_cache_sweep_and_lifetime_rows(self, capsys, tmp_path, monkeypatch):
        import os
        import time

        from repro.store import ArtifactStore

        store_dir = tmp_path / "cli-store"
        monkeypatch.setenv("REPRO_STORE_DIR", str(store_dir))
        orphan = store_dir / "layers" / ".crashed.1.tmp"
        orphan.parent.mkdir(parents=True)
        orphan.write_bytes(b"leftovers")
        old = time.time() - 2 * ArtifactStore.STALE_TMP_SECONDS
        os.utime(orphan, (old, old))

        assert main(["cache", "sweep"]) == 0
        assert "swept 1 stale temp file" in capsys.readouterr().out
        assert not orphan.exists()

        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "Swept tmp (lifetime)" in out
        assert "Stored (lifetime)" in out
        assert "Corrupt (lifetime)" in out

    def test_no_store_skips_the_store(self, capsys, tmp_path, monkeypatch):
        store_dir = tmp_path / "cli-store-disabled"
        monkeypatch.setenv("REPRO_STORE_DIR", str(store_dir))
        assert main([
            "model", "compress", "alexnet_fc",
            "--scale", "64", "--pes", "8", "--no-store",
        ]) == 0
        capsys.readouterr()
        assert not (store_dir / "layers").exists()

    def test_store_env_gate_disables_cli_store(self, capsys, tmp_path, monkeypatch):
        store_dir = tmp_path / "cli-store-gated"
        monkeypatch.setenv("REPRO_STORE_DIR", str(store_dir))
        monkeypatch.setenv("REPRO_STORE", "0")
        assert main([
            "run", "--engine", "functional",
            "--rows", "24", "--cols", "36", "--pes", "4", "--batch", "2",
        ]) == 0
        capsys.readouterr()
        assert not (store_dir / "layers").exists()


class TestServeCli:
    def test_serve_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--models", "neuraltalk_lstm", "alexnet_fc",
            "--engine", "cycle", "--max-batch", "32", "--max-wait-us", "500",
            "--queue-depth", "64", "--pes", "8", "--port", "9999",
        ])
        assert args.command == "serve"
        assert args.serve_command is None  # daemon mode
        assert args.models == ["neuraltalk_lstm", "alexnet_fc"]
        assert (args.max_batch, args.max_wait_us, args.queue_depth) == (32, 500.0, 64)
        assert args.port == 9999

    def test_serve_bench_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "bench", "--connect", "127.0.0.1:8123",
            "--rate", "100", "200", "--requests", "50", "--verify",
        ])
        assert args.serve_command == "bench"
        assert args.connect == "127.0.0.1:8123"
        assert args.rate == [100.0, 200.0]
        assert args.requests == 50
        assert args.verify is True

    def test_serve_bench_rejects_bad_connect(self):
        with pytest.raises(SystemExit):
            main(["serve", "bench", "--connect", "nonsense", "--requests", "5"])

    def test_serve_bench_in_process_with_verify(self, capsys):
        assert main([
            "serve", "bench", "--models", "neuraltalk_lstm",
            "--scale", "64", "--pes", "8", "--rate", "500",
            "--requests", "20", "--no-store", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "Open-loop serving benchmark" in out
        assert "bit-identical to the offline run_model path" in out

    def test_serve_bench_unknown_model_exits(self, capsys):
        with pytest.raises(SystemExit, match="does not serve"):
            main([
                "serve", "bench", "--models", "neuraltalk_lstm",
                "--scale", "64", "--pes", "8", "--model", "vgg_fc",
                "--requests", "5", "--no-store",
            ])

    def test_serve_bench_closed_loop_flag_parses(self):
        args = build_parser().parse_args([
            "serve", "bench", "--requests", "10", "--closed-loop", "4",
        ])
        assert args.closed_loop == 4
        args = build_parser().parse_args(["serve", "bench", "--requests", "10"])
        assert args.closed_loop is None

    def test_serve_bench_closed_loop_in_process_with_verify(self, capsys):
        assert main([
            "serve", "bench", "--models", "neuraltalk_lstm",
            "--scale", "64", "--pes", "8", "--closed-loop", "4",
            "--requests", "16", "--no-store", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "Closed-loop serving benchmark" in out
        assert "Workers" in out
        assert "bit-identical to the offline run_model path" in out

    def test_serve_bench_rejects_bad_closed_loop(self):
        with pytest.raises(SystemExit, match="closed-loop"):
            main([
                "serve", "bench", "--models", "neuraltalk_lstm",
                "--scale", "64", "--requests", "5",
                "--closed-loop", "0", "--no-store",
            ])


class TestServeFleetCli:
    def test_serve_chaos_flag_parses_for_the_daemon(self):
        args = build_parser().parse_args(["serve", "--chaos", "--port", "7471"])
        assert args.serve_command is None
        assert args.chaos is True
        args = build_parser().parse_args(["serve"])
        assert args.chaos is False

    def test_serve_status_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "status", "--connect", "127.0.0.1:7471",
        ])
        assert args.serve_command == "status"
        assert args.connect == "127.0.0.1:7471"

    def test_serve_status_rejects_bad_connect(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["serve", "status", "--connect", "nonsense"])

    def test_serve_fleet_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "fleet", "--models", "neuraltalk_lstm", "--workers", "4",
            "--scale", "64", "--chaos",
        ])
        assert args.serve_command == "fleet"
        assert args.workers == 4
        assert args.chaos is True
        assert args.port == 0  # ephemeral worker ports by default

    def test_serve_fleet_rejects_bad_workers(self):
        with pytest.raises(SystemExit, match="workers"):
            main(["serve", "fleet", "--workers", "0"])

    def test_serve_chaos_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "chaos", "--models", "neuraltalk_lstm", "--scale", "64",
            "--workers", "3", "--kills", "2", "--stalls", "1",
            "--corruptions", "1", "--chaos-seed", "5", "--verify",
        ])
        assert args.serve_command == "chaos"
        assert (args.workers, args.kills, args.stalls, args.corruptions) == (3, 2, 1, 1)
        assert args.chaos_seed == 5
        assert args.verify is True
        assert args.closed_loop == 8  # closed-loop concurrency default

    def test_serve_chaos_rejects_bad_counts(self):
        with pytest.raises(SystemExit, match="workers"):
            main(["serve", "chaos", "--workers", "0"])
        with pytest.raises(SystemExit, match="requests"):
            main(["serve", "chaos", "--requests", "0"])

    def test_serve_worker_args_round_trip(self):
        """Every serve_common flag survives the fleet → worker re-encoding."""
        from repro.cli import _serve_worker_args

        args = build_parser().parse_args([
            "serve", "fleet", "--models", "neuraltalk_lstm", "alexnet_fc",
            "--engine", "functional", "--scale", "64", "--seed", "9",
            "--pes", "4", "--fifo-depth", "16", "--density", "0.25",
            "--max-batch", "8", "--max-wait-us", "500", "--queue-depth", "64",
            "--no-pipeline", "--no-store",
        ])
        worker = _serve_worker_args(args, chaos=True)
        reparsed = build_parser().parse_args(["serve", *worker])
        assert reparsed.models == ["neuraltalk_lstm", "alexnet_fc"]
        assert reparsed.engine == "functional"
        assert reparsed.scale == 64.0
        assert reparsed.seed == 9
        assert reparsed.pes == 4 and reparsed.fifo_depth == 16
        assert reparsed.density == 0.25
        assert reparsed.max_batch == 8 and reparsed.max_wait_us == 500.0
        assert reparsed.queue_depth == 64
        assert reparsed.no_pipeline and reparsed.no_store
        assert reparsed.chaos is True


SHARD_ARGV = [
    "--set", "scale=64", "--set", "workloads=Alex-7",
    "--set", "grid.fifo_depth=[1,8]", "--set", "config.num_pes=16",
]


class TestShardCli:
    def test_shard_flags_parse(self):
        args = build_parser().parse_args([
            "experiment", "run", "fig8_fifo_depth",
            "--shard-id", "2", "--shard-count", "4",
        ])
        assert (args.shard_id, args.shard_count) == (2, 4)
        args = build_parser().parse_args([
            "experiment", "merge", "fig8_fifo_depth", "--shard-count", "4",
        ])
        assert args.experiment_command == "merge"
        assert args.shard_count == 4
        args = build_parser().parse_args([
            "shard", "plan", "fig8_fifo_depth", "--shard-count", "3",
        ])
        assert args.command == "shard" and args.shard_command == "plan"

    def test_bad_shard_id_exits_2_with_typed_message(self, capsys, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        assert main([
            "experiment", "run", "fig8_fifo_depth", *SHARD_ARGV,
            "--shard-id", "5", "--shard-count", "3",
        ]) == 2
        err = capsys.readouterr().err
        assert "shard id must satisfy 0 <= id < 3" in err

    def test_half_given_coordinates_exit_2(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        assert main([
            "experiment", "run", "fig8_fifo_depth", *SHARD_ARGV, "--shard-id", "0",
        ]) == 2
        assert "give both or neither" in capsys.readouterr().err

    def test_bad_shard_count_exits_2(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        assert main([
            "shard", "plan", "fig8_fifo_depth", *SHARD_ARGV, "--shard-count", "0",
        ]) == 2
        assert "shard count must be >= 1" in capsys.readouterr().err

    def test_merge_without_partials_no_recompute_exits_2(self, capsys, tmp_path,
                                                         monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        assert main([
            "experiment", "merge", "fig8_fifo_depth", *SHARD_ARGV,
            "--shard-count", "3", "--no-recompute",
        ]) == 2
        err = capsys.readouterr().err
        assert "absent from the store" in err

    def test_shard_commands_need_an_enabled_store(self, capsys, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_STORE", "0")
        assert main([
            "experiment", "run", "fig8_fifo_depth", *SHARD_ARGV,
            "--shard-id", "0", "--shard-count", "2",
        ]) == 2
        assert "store" in capsys.readouterr().err

    def test_shard_run_merge_matches_serial_output(self, capsys, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        assert main(["experiment", "run", "fig8_fifo_depth", *SHARD_ARGV]) == 0
        serial = capsys.readouterr().out
        for shard_id in range(3):
            assert main([
                "experiment", "run", "fig8_fifo_depth", *SHARD_ARGV,
                "--shard-id", str(shard_id), "--shard-count", "3",
            ]) == 0
            capsys.readouterr()
        assert main([
            "experiment", "merge", "fig8_fifo_depth", *SHARD_ARGV,
            "--shard-count", "3",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial
        assert "3 shard hits, 0 recomputed" in captured.err

    def test_shard_plan_and_status_render(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        assert main([
            "shard", "plan", "fig8_fifo_depth", *SHARD_ARGV, "--shard-count", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 points over 2 shards" in out and "In store" in out
        assert main([
            "shard", "status", "fig8_fifo_depth", *SHARD_ARGV, "--shard-count", "2",
        ]) == 0
        assert "0/2 shards" in capsys.readouterr().out

    def test_cache_info_shows_budget_and_kind_breakdown(self, capsys, tmp_path,
                                                        monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_STORE_BUDGET_BYTES", "8192")
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "Size budget (KiB)" in out and "8.0" in out
        assert "Per artifact kind" in out
        for kind in ("layers", "prepared", "models", "shards"):
            assert kind in out
