"""Tests for the report rendering helpers."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_number, format_table, geometric_mean, render_series


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0, 16.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([7.5]) == pytest.approx(7.5)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_below_arithmetic_mean(self):
        values = [1.0, 2.0, 30.0]
        assert geometric_mean(values) < sum(values) / len(values)


class TestFormatNumber:
    def test_integers_grouped(self):
        assert format_number(1234567) == "1,234,567"

    def test_small_floats(self):
        assert format_number(0.5) == "0.5"

    def test_scientific_for_extremes(self):
        assert "e" in format_number(1.5e9)
        assert "e" in format_number(1.5e-6)

    def test_none_is_dash(self):
        assert format_number(None) == "-"

    def test_zero(self):
        assert format_number(0.0) == "0"


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len(lines) == 4  # header + separator + 2 rows

    def test_alignment_widths(self):
        text = format_table(["x"], [["longer-cell"]])
        header, separator, row = text.splitlines()
        assert len(separator) >= len("longer-cell")


class TestRenderSeries:
    def test_one_row_per_x(self):
        series = {"A": {1: 0.5, 2: 0.75}, "B": {1: 0.25, 2: 0.5}}
        text = render_series(series, x_label="depth")
        lines = text.splitlines()
        assert lines[0].startswith("depth")
        assert len(lines) == 4

    def test_missing_points_rendered_as_dash(self):
        series = {"A": {1: 0.5}, "B": {2: 0.25}}
        text = render_series(series)
        assert "-" in text
