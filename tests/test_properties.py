"""Property-based tests (hypothesis) on the core data structures and invariants.

These cover the invariants the paper's correctness rests on:

* the relative-indexed CSC encoding is lossless for any matrix and any
  PE-interleaving;
* the functional EIE computation equals the dense reference for any sparse
  matrix / sparse activation pair;
* the cycle-level timing model respects its structural bounds (critical-PE
  lower bound, serial upper bound, monotonicity in FIFO depth);
* Huffman codes are prefix-free and lossless;
* fixed-point quantisation error is bounded by half an LSB inside the range.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.compression.csc import CSCMatrix, InterleavedCSC, decode_column, encode_column
from repro.compression.huffman import HuffmanCode
from repro.compression.pipeline import DeepCompressor
from repro.compression.quantization import WeightCodebook
from repro.core.config import EIEConfig
from repro.core.cycle_model import simulate_layer_cycles
from repro.core.functional import FunctionalEIE
from repro.nn.fixed_point import FixedPointFormat

# Keep hypothesis runs quick but meaningful.
SETTINGS = settings(max_examples=25, deadline=None)


def sparse_matrix_strategy(max_rows: int = 40, max_cols: int = 24):
    """Random small sparse matrices with a guaranteed non-zero."""

    @st.composite
    def build(draw):
        rows = draw(st.integers(2, max_rows))
        cols = draw(st.integers(1, max_cols))
        density = draw(st.floats(0.02, 0.5))
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(rows, cols))
        matrix[rng.random((rows, cols)) >= density] = 0.0
        matrix[rng.integers(0, rows), rng.integers(0, cols)] = 1.0
        return matrix

    return build()


class TestCSCProperties:
    @SETTINGS
    @given(
        column=npst.arrays(
            dtype=np.float64,
            shape=st.integers(1, 200),
            elements=st.floats(-10, 10).map(lambda x: 0.0 if abs(x) < 5 else x),
        )
    )
    def test_column_roundtrip(self, column):
        values, runs = encode_column(column)
        assert np.allclose(decode_column(values, runs, column.shape[0]), column)
        assert runs.size == 0 or runs.max() <= 15

    @SETTINGS
    @given(matrix=sparse_matrix_strategy(), num_pes=st.integers(1, 8))
    def test_interleaved_roundtrip_and_conservation(self, matrix, num_pes):
        interleaved = InterleavedCSC.from_dense(matrix, num_pes=num_pes)
        assert np.allclose(interleaved.to_dense(), matrix)
        assert interleaved.num_true_nonzeros == np.count_nonzero(matrix)
        counts = interleaved.entries_per_pe_column()
        assert counts.sum() == interleaved.num_entries

    @SETTINGS
    @given(matrix=sparse_matrix_strategy())
    def test_padding_zeros_decode_to_zero(self, matrix):
        encoded = CSCMatrix.from_dense(matrix)
        decoded = encoded.to_dense()
        # Padding never introduces spurious non-zeros.
        assert np.count_nonzero(decoded) == np.count_nonzero(matrix)


class TestFunctionalEquivalenceProperties:
    @SETTINGS
    @given(
        matrix=sparse_matrix_strategy(max_rows=32, max_cols=20),
        num_pes=st.sampled_from([1, 2, 4]),
        activation_seed=st.integers(0, 2**31 - 1),
        activation_density=st.floats(0.1, 1.0),
    )
    def test_functional_matches_dense_reference(
        self, matrix, num_pes, activation_seed, activation_density
    ):
        layer = DeepCompressor().compress(matrix, num_pes=num_pes, name="prop")
        rng = np.random.default_rng(activation_seed)
        activations = rng.uniform(0.1, 1.0, size=matrix.shape[1])
        activations[rng.random(matrix.shape[1]) >= activation_density] = 0.0
        config = EIEConfig(num_pes=num_pes)
        result = FunctionalEIE(layer, config).run(activations, apply_nonlinearity=False)
        expected = layer.dense_weights() @ activations
        assert np.allclose(result.output, expected, atol=1e-9)

    @SETTINGS
    @given(
        matrix=sparse_matrix_strategy(max_rows=24, max_cols=16),
        pe_counts=st.lists(st.sampled_from([1, 2, 3, 4, 6]), min_size=2, max_size=3, unique=True),
    )
    def test_output_independent_of_pe_count(self, matrix, pe_counts):
        rng = np.random.default_rng(0)
        activations = rng.uniform(0.1, 1.0, size=matrix.shape[1])
        outputs = []
        for num_pes in pe_counts:
            layer = DeepCompressor().compress(matrix, num_pes=num_pes, name="prop")
            result = FunctionalEIE(layer, EIEConfig(num_pes=num_pes)).run(activations)
            outputs.append(result.output)
        for other in outputs[1:]:
            assert np.allclose(outputs[0], other)


class TestCycleModelProperties:
    @SETTINGS
    @given(
        num_pes=st.integers(1, 16),
        broadcasts=st.integers(1, 60),
        seed=st.integers(0, 2**31 - 1),
        fifo_depth=st.sampled_from([1, 2, 8, 64]),
    )
    def test_structural_bounds(self, num_pes, broadcasts, seed, fifo_depth):
        rng = np.random.default_rng(seed)
        work = rng.integers(0, 8, size=(num_pes, broadcasts))
        stats = simulate_layer_cycles(work, fifo_depth=fifo_depth)
        critical_pe = work.sum(axis=1).max()
        serial_upper_bound = work.sum() + broadcasts
        assert critical_pe <= stats.total_cycles <= serial_upper_bound
        assert 0.0 <= stats.load_balance_efficiency <= 1.0
        assert stats.entries_processed == work.sum()

    @SETTINGS
    @given(
        num_pes=st.integers(2, 12),
        broadcasts=st.integers(2, 50),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_monotone_in_fifo_depth(self, num_pes, broadcasts, seed):
        rng = np.random.default_rng(seed)
        work = rng.integers(0, 6, size=(num_pes, broadcasts))
        cycles = [
            simulate_layer_cycles(work, fifo_depth=depth).total_cycles for depth in (1, 4, 16, 256)
        ]
        assert all(later <= earlier for earlier, later in zip(cycles, cycles[1:]))


class TestHuffmanProperties:
    @SETTINGS
    @given(symbols=st.lists(st.integers(0, 15), min_size=1, max_size=300))
    def test_roundtrip_and_prefix_free(self, symbols):
        code = HuffmanCode.from_symbols(symbols)
        assert code.decode(code.encode(symbols)) == symbols
        codes = list(code.codebook.values())
        for index, first in enumerate(codes):
            for second in codes[index + 1:]:
                assert not first.startswith(second) and not second.startswith(first)

    @SETTINGS
    @given(symbols=st.lists(st.integers(0, 15), min_size=2, max_size=300))
    def test_never_longer_than_fixed_width_plus_one_bit(self, symbols):
        assume(len(set(symbols)) > 1)
        code = HuffmanCode.from_symbols(symbols)
        # For a 16-symbol alphabet no code exceeds 15 bits, and the average
        # cannot exceed the fixed-width 4 bits by more than the worst case.
        assert max(len(bits) for bits in code.codebook.values()) <= 15


class TestQuantizationProperties:
    @SETTINGS
    @given(
        values=npst.arrays(
            dtype=np.float64,
            shape=st.integers(1, 200),
            elements=st.floats(-100.0, 100.0),
        )
    )
    def test_fixed_point_error_bounded_inside_range(self, values):
        fmt = FixedPointFormat(total_bits=16, fraction_bits=8)
        in_range = values[(values <= fmt.max_value) & (values >= fmt.min_value)]
        errors = fmt.quantization_error(in_range)
        assert errors.size == 0 or np.max(np.abs(errors)) <= fmt.scale / 2 + 1e-12

    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1), count=st.integers(2, 400))
    def test_codebook_reconstruction_never_increases_range(self, seed, count):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=count)
        values[0] = 1.0  # ensure a non-zero
        codebook = WeightCodebook.fit(values, rng=rng)
        reconstructed = codebook.dequantize(codebook.quantize(values))
        assert reconstructed.max() <= values.max() + 1e-9
        assert reconstructed.min() >= values.min() - 1e-9
