"""Parity tests: registered experiments reproduce the legacy entry points.

Each paper entry point must be runnable as an experiment whose rendered
table and reshaped (legacy-view) values match the legacy analysis function
bit for bit, and the CLI's classic ``figure``/``table``/``ablation`` commands
must print byte-identical output to ``experiment run <name>``.  A direct
engine-level recomputation guards against the shims and the catalog drifting
together.
"""

from __future__ import annotations

import pytest

from repro.analysis.ablation import codebook_bits_ablation, index_width_ablation
from repro.analysis.design_space import fifo_depth_sweep, precision_study, sram_width_sweep
from repro.analysis.energy_efficiency import energy_efficiency_table
from repro.analysis.scalability import pe_sweep
from repro.analysis.speedup import speedup_table
from repro.cli import main
from repro.core.config import EIEConfig
from repro.engine import EngineRegistry
from repro.experiments import run_experiment
from repro.workloads.benchmarks import scaled_benchmarks
from repro.workloads.generator import WorkloadBuilder

SCALE = 64.0


@pytest.fixture(scope="module")
def builder() -> WorkloadBuilder:
    return WorkloadBuilder()


@pytest.fixture(scope="module")
def subset():
    specs = scaled_benchmarks(SCALE)
    return [specs["Alex-7"], specs["NT-We"]]


class TestLegacyFunctionParity:
    """The shims and the experiments must agree exactly (same objects/values)."""

    def test_fifo_depth_sweep(self, builder, subset):
        legacy = fifo_depth_sweep((1, 8), subset, num_pes=16, builder=builder)
        result = run_experiment(
            "fig8_fifo_depth", builder=builder, workloads=subset,
            grid={"fifo_depth": (1, 8)}, config={"num_pes": 16},
        )
        assert result.legacy() == legacy

    def test_fifo_depth_against_direct_engine_runs(self, builder, subset):
        """Independent recomputation: the experiment cannot drift silently."""
        result = run_experiment(
            "fig8_fifo_depth", builder=builder, workloads=subset,
            grid={"fifo_depth": (1, 8)}, config={"num_pes": 16},
        )
        for record in result.records:
            spec = next(s for s in subset if s.name == record["benchmark"])
            workload = builder.build(spec, 16)
            config = EIEConfig(num_pes=16, fifo_depth=record["fifo_depth"])
            engine = EngineRegistry.create("cycle", config)
            stats = engine.run(engine.prepare(workload)).stats
            assert record["load_balance_efficiency"] == stats.load_balance_efficiency

    def test_sram_width_sweep(self, builder, subset):
        legacy = sram_width_sweep((32, 64, 128), subset, num_pes=16, builder=builder)
        result = run_experiment(
            "fig9_sram_width", builder=builder, workloads=subset,
            grid={"width_bits": (32, 64, 128)}, config={"num_pes": 16},
        )
        assert result.legacy() == legacy

    def test_precision_study(self):
        legacy = precision_study(num_samples=32, input_size=16, hidden_size=12, classes=8)
        result = run_experiment(
            "fig10_precision",
            params={"num_samples": 32, "input_size": 16, "hidden_size": 12, "classes": 8},
        )
        assert result.legacy() == legacy

    def test_pe_sweep(self, builder, subset):
        legacy = pe_sweep((1, 4, 16), subset, builder=builder)
        result = run_experiment(
            "fig11_scalability", builder=builder, workloads=subset,
            grid={"num_pes": (1, 4, 16)}, config={"fifo_depth": 8},
        )
        assert result.legacy() == legacy

    def test_speedup_table(self, builder, subset):
        legacy = speedup_table(subset, builder=builder, eie_config=EIEConfig(num_pes=16))
        result = run_experiment(
            "fig6_speedup", builder=builder, workloads=subset, config={"num_pes": 16}
        )
        assert result.legacy() == legacy

    def test_energy_efficiency_table(self, builder, subset):
        legacy = energy_efficiency_table(
            subset, builder=builder, eie_config=EIEConfig(num_pes=16)
        )
        result = run_experiment(
            "fig7_energy_efficiency", builder=builder, workloads=subset,
            config={"num_pes": 16},
        )
        assert result.legacy() == legacy

    def test_index_width_ablation(self, builder, subset):
        legacy = index_width_ablation(
            subset[0], index_bits_options=(2, 4, 8), num_pes=8, builder=builder
        )
        result = run_experiment(
            "ablation_index_width", builder=builder, workloads=subset[:1],
            grid={"index_bits": (2, 4, 8)}, config={"num_pes": 8},
        )
        assert result.legacy() == legacy

    def test_codebook_bits_ablation(self):
        legacy = codebook_bits_ablation(weight_bits_options=(2, 4), num_weights=2000)
        result = run_experiment(
            "ablation_codebook_bits", grid={"weight_bits": (2, 4)},
            params={"num_weights": 2000},
        )
        assert result.legacy() == legacy

    def test_tables_match_legacy_row_builders(self):
        # Table V is exercised at full scale by the benchmark harness only
        # (its AlexNet-FC7 workload is too heavy for the unit suite).
        from repro.analysis.tables import table1_rows, table2_rows, table3_rows

        assert run_experiment("table1_energy").records == table1_rows()
        assert run_experiment("table2_area_power").records == table2_rows()
        assert run_experiment("table3_benchmarks").records == table3_rows()

    def test_table4_matches_legacy_rows(self, builder, subset):
        from repro.analysis.tables import table4_rows

        config = EIEConfig(num_pes=16)
        legacy = table4_rows(subset, builder=builder, eie_config=config)
        result = run_experiment(
            "table4_wallclock", builder=builder, workloads=subset, config={"num_pes": 16}
        )
        assert result.records == legacy


class TestCliParity:
    """`repro figure/table/ablation` and `repro experiment run` print the same bytes."""

    def _capture(self, capsys, argv) -> str:
        assert main(argv) == 0
        return capsys.readouterr().out

    @pytest.mark.parametrize(
        "legacy_argv, experiment_argv",
        [
            (
                ["figure", "8", "--scale", "64", "--benchmarks", "Alex-7", "--pes", "16"],
                ["experiment", "run", "fig8_fifo_depth", "--set", "scale=64",
                 "--set", "workloads=Alex-7", "--set", "config.num_pes=16"],
            ),
            (
                ["figure", "12", "--scale", "64", "--benchmarks", "Alex-7"],
                ["experiment", "run", "fig12_padding_zeros", "--set", "scale=64",
                 "--set", "workloads=Alex-7"],
            ),
            (["table", "1"], ["experiment", "run", "table1_energy"]),
            (["table", "2"], ["experiment", "run", "table2_area_power"]),
            (["table", "3"], ["experiment", "run", "table3_benchmarks"]),
            (
                ["ablation", "index-width", "--scale", "64", "--benchmarks", "Alex-7",
                 "--pes", "16"],
                ["experiment", "run", "ablation_index_width", "--set", "scale=64",
                 "--set", "workloads=Alex-7", "--set", "config.num_pes=16"],
            ),
        ],
    )
    def test_legacy_command_equals_experiment_run(self, capsys, legacy_argv, experiment_argv):
        legacy_output = self._capture(capsys, legacy_argv)
        experiment_output = self._capture(capsys, experiment_argv)
        assert experiment_output == legacy_output
