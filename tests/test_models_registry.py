"""Tests for the model registry and the built-in paper models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.models import (
    BUILTIN_MODELS,
    MatVecNode,
    ModelIR,
    ModelRegistry,
    ModelSpec,
    RegisteredModel,
    build_model,
    register_model,
)
from repro.workloads.benchmarks import ALL_BENCHMARKS


class TestRegistry:
    def test_paper_models_are_registered(self):
        names = ModelRegistry.names()
        for expected in ("alexnet_fc", "vgg_fc", "neuraltalk_lstm"):
            assert expected in names

    def test_unknown_model_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="alexnet_fc"):
            ModelRegistry.get("resnet")

    def test_register_and_unregister_custom_model(self, rng):
        def build(spec: ModelSpec) -> ModelIR:
            return ModelIR(
                [MatVecNode(name="fc", weight=rng.normal(size=(4, 4)))], name="custom"
            )

        registered = RegisteredModel(
            name="custom-test",
            description="unit test model",
            spec=ModelSpec(model="custom-test"),
            build=build,
        )
        register_model(registered)
        try:
            assert build_model("custom-test").num_nodes == 1
            with pytest.raises(ConfigurationError, match="already registered"):
                register_model(
                    RegisteredModel(
                        name="custom-test", description="", spec=ModelSpec(model="custom-test"),
                        build=build,
                    )
                )
        finally:
            ModelRegistry.unregister("custom-test")
        with pytest.raises(ConfigurationError):
            ModelRegistry.get("custom-test")

    def test_spec_name_must_match_registration_name(self):
        with pytest.raises(ConfigurationError, match="default spec"):
            RegisteredModel(
                name="a", description="", spec=ModelSpec(model="b"), build=lambda s: None
            )

    def test_describe_includes_default_spec_and_nodes(self):
        info = ModelRegistry.describe("neuraltalk_lstm")
        assert info["default_spec"]["params"]["mode"] == "per_gate"
        assert info["default_build"]["num_nodes"] == 4

    def test_unknown_params_rejected_by_name(self):
        with pytest.raises(ConfigurationError, match="'Mode'"):
            build_model("neuraltalk_lstm", params={"Mode": "stacked"})
        with pytest.raises(ConfigurationError, match="no parameter"):
            build_model("alexnet_fc", params={"mode": "stacked"})

    def test_build_merges_partial_spec_over_defaults(self):
        default = build_model("neuraltalk_lstm")
        scaled = ModelRegistry.build(ModelSpec(model="neuraltalk_lstm", scale=16))
        assert scaled.input_size < default.input_size
        stacked = build_model("neuraltalk_lstm", params={"mode": "stacked"})
        assert stacked.num_nodes == 1


class TestBuiltinModels:
    def test_catalog_tuple_matches_registry(self):
        for registered in BUILTIN_MODELS:
            assert ModelRegistry.get(registered.name) is registered

    @pytest.mark.parametrize(
        "name, bench_name", [("alexnet_fc", "Alex-6"), ("vgg_fc", "VGG-6"),
                             ("neuraltalk_lstm", "NT-LSTM")]
    )
    def test_input_density_matches_table3(self, name, bench_name):
        model = build_model(name)
        assert model.input_density == ALL_BENCHMARKS[bench_name].activation_density

    def test_fc_models_have_table3_densities(self):
        model = build_model("alexnet_fc", scale=16)
        densities = [node.weight_density for node in model]
        # Alex-6/7 prune to 9%, Alex-8 to 25% (up to sampling noise).
        assert densities[0] == pytest.approx(0.09, abs=0.02)
        assert densities[1] == pytest.approx(0.09, abs=0.02)
        assert densities[2] == pytest.approx(0.25, abs=0.04)

    def test_builds_are_deterministic(self):
        first = build_model("vgg_fc", scale=64)
        second = build_model("vgg_fc", scale=64)
        assert first.fingerprint() == second.fingerprint()

    def test_lstm_scale_and_seed_change_the_build(self):
        base = build_model("neuraltalk_lstm")
        rescaled = build_model("neuraltalk_lstm", scale=16)
        reseeded = build_model("neuraltalk_lstm", seed=11)
        assert rescaled.input_size != base.input_size
        assert reseeded.fingerprint() != base.fingerprint()

    @pytest.mark.parametrize("name", ["alexnet_fc", "vgg_fc"])
    def test_fc_seed_changes_the_weights(self, name):
        base = build_model(name, scale=64)
        reseeded = build_model(name, seed=11, scale=64)
        again = build_model(name, seed=11, scale=64)
        assert reseeded.fingerprint() != base.fingerprint()
        assert reseeded.fingerprint() == again.fingerprint()
        # The default (no seed) keeps the benchmarks' canonical patterns.
        assert base.fingerprint() == build_model(name, scale=64).fingerprint()
