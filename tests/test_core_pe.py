"""Tests for the functional processing element."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EIEConfig
from repro.core.pe import ProcessingElement
from repro.errors import SimulationError
from repro.nn.fixed_point import FixedPointFormat


def _build_pe(compressed_layer, pe_id: int, config: EIEConfig, fixed_point=None):
    return ProcessingElement(
        pe_id=pe_id,
        slice_matrix=compressed_layer.storage.per_pe[pe_id],
        codebook=compressed_layer.codebook,
        num_pes=config.num_pes,
        config=config,
        fixed_point=fixed_point,
    )


class TestProcessingElement:
    def test_accumulates_one_column_correctly(self, compressed_layer, small_config):
        pe = _build_pe(compressed_layer, pe_id=0, config=small_config)
        dense = compressed_layer.dense_weights()
        column, value = 3, 0.8
        pe.process_activation(column, value)
        expected = dense[0::small_config.num_pes, column] * value
        assert np.allclose(pe.read_outputs(), expected)

    def test_accumulates_across_columns(self, compressed_layer, small_config, dense_activations):
        pe = _build_pe(compressed_layer, pe_id=2, config=small_config)
        dense = compressed_layer.dense_weights()
        for column in np.nonzero(dense_activations)[0]:
            pe.process_activation(int(column), float(dense_activations[column]))
        expected = dense[2::small_config.num_pes, :] @ dense_activations
        assert np.allclose(pe.read_outputs(), expected)

    def test_zero_activation_broadcast_rejected(self, compressed_layer, small_config):
        pe = _build_pe(compressed_layer, pe_id=0, config=small_config)
        with pytest.raises(SimulationError):
            pe.process_activation(0, 0.0)

    def test_column_out_of_range_rejected(self, compressed_layer, small_config):
        pe = _build_pe(compressed_layer, pe_id=0, config=small_config)
        with pytest.raises(SimulationError):
            pe.process_activation(compressed_layer.cols, 1.0)

    def test_counters_track_entries_and_reads(self, compressed_layer, small_config):
        pe = _build_pe(compressed_layer, pe_id=1, config=small_config)
        entries = pe.process_activation(5, 1.0)
        assert pe.counters.entries_processed == entries
        assert pe.counters.macs == entries
        assert pe.counters.ptr_sram_reads == 2
        expected_reads = int(np.ceil(entries / small_config.entries_per_spmat_read)) if entries else 0
        assert pe.counters.spmat_sram_reads == expected_reads

    def test_empty_column_counts_skip(self, compressed_layer, small_config):
        pe = _build_pe(compressed_layer, pe_id=0, config=small_config)
        counts = compressed_layer.storage.per_pe[0].column_entry_counts()
        empty_columns = np.nonzero(counts == 0)[0]
        if empty_columns.size == 0:
            pytest.skip("fixture has no empty column for PE 0")
        processed = pe.process_activation(int(empty_columns[0]), 1.0)
        assert processed == 0
        assert pe.counters.columns_skipped == 1

    def test_reset_clears_state(self, compressed_layer, small_config):
        pe = _build_pe(compressed_layer, pe_id=0, config=small_config)
        pe.process_activation(3, 1.0)
        pe.reset()
        assert np.all(pe.read_outputs() == 0.0)
        assert pe.counters.entries_processed == 0

    def test_global_output_indices_interleaved(self, compressed_layer, small_config):
        pe = _build_pe(compressed_layer, pe_id=1, config=small_config)
        indices = pe.global_output_indices()
        assert indices[0] == 1
        assert np.all(np.diff(indices) == small_config.num_pes)

    def test_capacity_check(self, compressed_layer):
        tiny_config = EIEConfig(num_pes=4, spmat_sram_kb=0.001)
        pe = ProcessingElement(
            pe_id=0,
            slice_matrix=compressed_layer.storage.per_pe[0],
            codebook=compressed_layer.codebook,
            num_pes=4,
            config=tiny_config,
        )
        with pytest.raises(SimulationError):
            pe.check_capacity()

    def test_invalid_pe_id_rejected(self, compressed_layer, small_config):
        with pytest.raises(SimulationError):
            ProcessingElement(
                pe_id=9,
                slice_matrix=compressed_layer.storage.per_pe[0],
                codebook=compressed_layer.codebook,
                num_pes=4,
                config=small_config,
            )

    def test_fixed_point_mode_close_to_float(self, compressed_layer, small_config, dense_activations):
        fmt = FixedPointFormat(total_bits=16, fraction_bits=8)
        float_pe = _build_pe(compressed_layer, pe_id=0, config=small_config)
        fixed_pe = _build_pe(compressed_layer, pe_id=0, config=small_config, fixed_point=fmt)
        for column in np.nonzero(dense_activations)[0]:
            float_pe.process_activation(int(column), float(dense_activations[column]))
            fixed_pe.process_activation(int(column), float(dense_activations[column]))
        assert np.allclose(float_pe.read_outputs(), fixed_pe.read_outputs(), atol=0.1)

    def test_counter_merge(self, compressed_layer, small_config):
        first = _build_pe(compressed_layer, pe_id=0, config=small_config)
        second = _build_pe(compressed_layer, pe_id=1, config=small_config)
        first.process_activation(3, 1.0)
        second.process_activation(3, 1.0)
        merged = first.counters.merge(second.counters)
        assert merged.entries_processed == (
            first.counters.entries_processed + second.counters.entries_processed
        )
        assert merged.ptr_sram_reads == 4
