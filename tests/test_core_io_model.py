"""Tests for the I/O-mode (DMA loading) and activation-batching models."""

from __future__ import annotations

import pytest

from repro.core.config import EIEConfig
from repro.core.io_model import (
    DMAModel,
    activation_batches,
    activation_sram_overhead_cycles,
)
from repro.errors import ConfigurationError


class TestDMAModel:
    def test_layer_load_cost_matches_storage(self, compressed_layer, small_config):
        cost = DMAModel(bandwidth_gbs=4.0).layer_load_cost(compressed_layer, small_config)
        expected_bytes = -(-compressed_layer.storage_bits(small_config.pointer_bits) // 8)
        assert cost.bytes_transferred == expected_bytes
        assert cost.transfer_time_s == pytest.approx(expected_bytes / 4e9)
        assert cost.cycles >= 1

    def test_faster_link_loads_faster(self, compressed_layer, small_config):
        slow = DMAModel(bandwidth_gbs=1.0).layer_load_cost(compressed_layer, small_config)
        fast = DMAModel(bandwidth_gbs=8.0).layer_load_cost(compressed_layer, small_config)
        assert fast.transfer_time_s < slow.transfer_time_s
        assert fast.bytes_transferred == slow.bytes_transferred

    def test_network_load_cost_sums_layers(self, compressed_layer, small_config):
        dma = DMAModel()
        single = dma.layer_load_cost(compressed_layer, small_config)
        network = dma.network_load_cost([compressed_layer, compressed_layer], small_config)
        assert network.bytes_transferred == 2 * single.bytes_transferred
        assert network.transfer_time_s == pytest.approx(2 * single.transfer_time_s)

    def test_amortization(self, compressed_layer, small_config):
        cost = DMAModel().layer_load_cost(compressed_layer, small_config)
        assert cost.amortized_over(1000) == pytest.approx(cost.transfer_time_s / 1000)
        with pytest.raises(ConfigurationError):
            cost.amortized_over(0)

    def test_load_is_one_time_cost_versus_inference(self, compressed_layer, small_config,
                                                    dense_activations):
        # Amortised over a realistic number of inferences, loading is negligible
        # compared to the per-inference compute time — the paper's argument for
        # ignoring the I/O mode in Table IV.
        from repro.core.cycle_model import CycleAccurateEIE

        load = DMAModel().layer_load_cost(compressed_layer, small_config)
        inference = CycleAccurateEIE(small_config).simulate_layer(compressed_layer, dense_activations)
        assert load.amortized_over(100_000) < inference.time_s

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            DMAModel(bandwidth_gbs=0.0)

    def test_empty_network_rejected(self, small_config):
        with pytest.raises(ConfigurationError):
            DMAModel().network_load_cost([], small_config)


class TestActivationBatching:
    def test_short_vectors_fit_in_one_batch(self):
        config = EIEConfig(num_pes=64)
        assert activation_batches(4096, config) == 1
        assert activation_sram_overhead_cycles(4096, config) == 0

    def test_vgg6_needs_batching(self):
        # VGG-16 FC6 has 25088 inputs: 7 register-file batches on 64 PEs.
        config = EIEConfig(num_pes=64)
        assert activation_batches(25088, config) == 7
        assert activation_sram_overhead_cycles(25088, config) == 6 * 2 * 64

    def test_fewer_pes_need_more_batches(self):
        assert activation_batches(4096, EIEConfig(num_pes=16)) == 4

    def test_overhead_is_small_relative_to_compute(self):
        # Even for VGG-6 the spill/fill overhead is well under 1% of the
        # ~23k-cycle layer computation.
        config = EIEConfig(num_pes=64)
        assert activation_sram_overhead_cycles(25088, config) < 0.05 * 23_000

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigurationError):
            activation_batches(0, EIEConfig())
