"""Tests for the JSON-lines TCP protocol: daemon + client round trips.

The wire format must preserve every float bit (JSON numbers serialize via
``repr``, the shortest round-trip form), so a remote client sees exactly
the offline ``run_model`` bits — the CI daemon job leans on this.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.errors import ServeError, ServerOverloadedError
from repro.models import build_model, synthetic_model_inputs
from repro.serve import AsyncServeClient, BatchPolicy, Server, start_daemon

CONFIG = EIEConfig(num_pes=8)


@pytest.fixture(scope="module")
def model():
    return build_model("neuraltalk_lstm", scale=64)


def _with_daemon(model, coro_factory, **server_kwargs):
    """Run ``coro_factory(client, server)`` against an ephemeral-port daemon."""

    async def drive():
        server = await Server([model], config=CONFIG, **server_kwargs).start()
        listener = await start_daemon(server)
        port = listener.sockets[0].getsockname()[1]
        client = await AsyncServeClient.connect("127.0.0.1", port)
        try:
            return await coro_factory(client, server)
        finally:
            await client.close()
            listener.close()
            await listener.wait_closed()
            await server.close()

    return asyncio.run(drive())


class TestRoundTrip:
    def test_infer_bit_identical_through_the_wire(self, model):
        inputs = synthetic_model_inputs(model, batch=8, seed=13)
        session = Session(config=CONFIG)
        offline = [
            session.run_model("cycle", model, inputs[i], CONFIG) for i in range(8)
        ]

        async def scenario(client, server):
            return await asyncio.gather(
                *(client.infer(model.name, vector) for vector in inputs)
            )

        responses = _with_daemon(
            model, scenario, policy=BatchPolicy(max_batch=4, max_wait_us=20_000)
        )
        assert max(response.batch_size for response in responses) > 1
        for response, reference in zip(responses, offline):
            assert np.array_equal(response.output, reference.outputs[0])
            assert response.total_cycles == reference.total_cycles
            assert response.latency_s == reference.latency_s

    def test_models_stats_and_ping(self, model):
        async def scenario(client, server):
            assert await client.ping()
            described = await client.models()
            stats = await client.stats()
            return described, stats

        described, stats = _with_daemon(model, scenario)
        description = described[model.name]
        assert description["input_size"] == model.input_size
        assert description["engine"] == "cycle"
        assert description["num_pes"] == CONFIG.num_pes
        assert description["spec"] is None  # served from a raw IR
        assert stats["models"][model.name]["received"] == 0

    def test_registry_served_model_reports_rebuild_spec(self):
        from repro.models import ModelSpec

        model = build_model("neuraltalk_lstm", scale=64)

        async def scenario(client, server):
            return await client.models()

        async def drive():
            server = await Server(
                [ModelSpec(model="neuraltalk_lstm", scale=64)], config=CONFIG
            ).start()
            listener = await start_daemon(server)
            port = listener.sockets[0].getsockname()[1]
            client = await AsyncServeClient.connect("127.0.0.1", port)
            try:
                return await client.models()
            finally:
                await client.close()
                listener.close()
                await listener.wait_closed()
                await server.close()

        described = asyncio.run(drive())
        spec = described[model.name]["spec"]
        assert spec == {
            "model": "neuraltalk_lstm",
            "scale": 64,
            "seed": None,
            "params": {},
        }


class TestErrors:
    def test_unknown_model_maps_to_serve_error(self, model):
        async def scenario(client, server):
            with pytest.raises(ServeError, match="not served"):
                await client.infer("nope", np.zeros(4))

        _with_daemon(model, scenario)

    def test_overload_maps_to_typed_rejection(self, model):
        inputs = synthetic_model_inputs(model, batch=32, seed=3)

        async def scenario(client, server):
            outcomes = await asyncio.gather(
                *(client.infer(model.name, vector) for vector in inputs),
                return_exceptions=True,
            )
            return outcomes

        outcomes = _with_daemon(
            model,
            scenario,
            policy=BatchPolicy(max_batch=1, max_wait_us=0.0, queue_depth=1),
        )
        rejections = [o for o in outcomes if isinstance(o, ServerOverloadedError)]
        assert rejections and all(r.retry_after_s > 0 for r in rejections)

    def test_malformed_json_and_unknown_op_answered_not_fatal(self, model):
        async def scenario(client, server):
            port_reader, port_writer = client._reader, client._writer
            # Ride the same socket below the client: a bad line must get an
            # error response and must not kill the connection.
            async with client._write_lock:
                port_writer.write(b"this is not json\n")
                await port_writer.drain()
            with pytest.raises(ServeError, match="unknown operation"):
                await client._call({"op": "frobnicate"})
            assert await client.ping()

        _with_daemon(model, scenario)

    def test_json_floats_round_trip_exactly(self):
        values = [0.1, 1 / 3, 1e-300, 123456.789e-12, np.random.default_rng(0).normal()]
        decoded = json.loads(json.dumps(values))
        assert all(a == b for a, b in zip(values, decoded))
