"""Tests for the JSON-lines TCP protocol: daemon + client round trips.

The wire format must preserve every float bit (JSON numbers serialize via
``repr``, the shortest round-trip form), so a remote client sees exactly
the offline ``run_model`` bits — the CI daemon job leans on this.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.errors import (
    ServeError,
    ServeTimeoutError,
    ServerOverloadedError,
)
from repro.models import build_model, synthetic_model_inputs
from repro.serve import AsyncServeClient, BatchPolicy, Server, start_daemon

CONFIG = EIEConfig(num_pes=8)


@pytest.fixture(scope="module")
def model():
    return build_model("neuraltalk_lstm", scale=64)


def _with_daemon(model, coro_factory, **server_kwargs):
    """Run ``coro_factory(client, server)`` against an ephemeral-port daemon."""

    async def drive():
        server = await Server([model], config=CONFIG, **server_kwargs).start()
        listener = await start_daemon(server)
        port = listener.sockets[0].getsockname()[1]
        client = await AsyncServeClient.connect("127.0.0.1", port)
        try:
            return await coro_factory(client, server)
        finally:
            await client.close()
            listener.close()
            await listener.wait_closed()
            await server.close()

    return asyncio.run(drive())


class TestRoundTrip:
    def test_infer_bit_identical_through_the_wire(self, model):
        inputs = synthetic_model_inputs(model, batch=8, seed=13)
        session = Session(config=CONFIG)
        offline = [
            session.run_model("cycle", model, inputs[i], CONFIG) for i in range(8)
        ]

        async def scenario(client, server):
            return await asyncio.gather(
                *(client.infer(model.name, vector) for vector in inputs)
            )

        responses = _with_daemon(
            model, scenario, policy=BatchPolicy(max_batch=4, max_wait_us=20_000)
        )
        assert max(response.batch_size for response in responses) > 1
        for response, reference in zip(responses, offline):
            assert np.array_equal(response.output, reference.outputs[0])
            assert response.total_cycles == reference.total_cycles
            assert response.latency_s == reference.latency_s

    def test_models_stats_and_ping(self, model):
        async def scenario(client, server):
            assert await client.ping()
            described = await client.models()
            stats = await client.stats()
            return described, stats

        described, stats = _with_daemon(model, scenario)
        description = described[model.name]
        assert description["input_size"] == model.input_size
        assert description["engine"] == "cycle"
        assert description["num_pes"] == CONFIG.num_pes
        assert description["spec"] is None  # served from a raw IR
        assert stats["models"][model.name]["received"] == 0

    def test_registry_served_model_reports_rebuild_spec(self):
        from repro.models import ModelSpec

        model = build_model("neuraltalk_lstm", scale=64)

        async def scenario(client, server):
            return await client.models()

        async def drive():
            server = await Server(
                [ModelSpec(model="neuraltalk_lstm", scale=64)], config=CONFIG
            ).start()
            listener = await start_daemon(server)
            port = listener.sockets[0].getsockname()[1]
            client = await AsyncServeClient.connect("127.0.0.1", port)
            try:
                return await client.models()
            finally:
                await client.close()
                listener.close()
                await listener.wait_closed()
                await server.close()

        described = asyncio.run(drive())
        spec = described[model.name]["spec"]
        assert spec == {
            "model": "neuraltalk_lstm",
            "scale": 64,
            "seed": None,
            "params": {},
        }


class TestErrors:
    def test_unknown_model_maps_to_serve_error(self, model):
        async def scenario(client, server):
            with pytest.raises(ServeError, match="not served"):
                await client.infer("nope", np.zeros(4))

        _with_daemon(model, scenario)

    def test_overload_maps_to_typed_rejection(self, model):
        inputs = synthetic_model_inputs(model, batch=32, seed=3)

        async def scenario(client, server):
            outcomes = await asyncio.gather(
                *(client.infer(model.name, vector) for vector in inputs),
                return_exceptions=True,
            )
            return outcomes

        outcomes = _with_daemon(
            model,
            scenario,
            policy=BatchPolicy(max_batch=1, max_wait_us=0.0, queue_depth=1),
        )
        rejections = [o for o in outcomes if isinstance(o, ServerOverloadedError)]
        assert rejections and all(r.retry_after_s > 0 for r in rejections)

    def test_malformed_json_and_unknown_op_answered_not_fatal(self, model):
        async def scenario(client, server):
            port_reader, port_writer = client._reader, client._writer
            # Ride the same socket below the client: a bad line must get an
            # error response and must not kill the connection.
            async with client._write_lock:
                port_writer.write(b"this is not json\n")
                await port_writer.drain()
            with pytest.raises(ServeError, match="unknown operation"):
                await client._call({"op": "frobnicate"})
            assert await client.ping()

        _with_daemon(model, scenario)

    def test_json_floats_round_trip_exactly(self):
        values = [0.1, 1 / 3, 1e-300, 123456.789e-12, np.random.default_rng(0).normal()]
        decoded = json.loads(json.dumps(values))
        assert all(a == b for a, b in zip(values, decoded))


class TestProtocolRobustness:
    def test_garbage_mid_session_answered_per_line_not_fatal(self, model):
        async def scenario(client, server):
            host, port = client._writer.get_extra_info("peername")[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                # One healthy request proves the session is live...
                writer.write(b'{"id": 1, "op": "ping"}\n')
                await writer.drain()
                assert json.loads(await reader.readline())["pong"]
                # ...then every flavour of garbage gets a typed error on its
                # own line and must not tear the connection down.
                for line, fragment in (
                    (b"this is not json\n", "bad JSON"),
                    (b"42\n", "JSON object, got int"),
                    (b"[1, 2]\n", "JSON object, got list"),
                    (b'"just a string"\n', "JSON object, got str"),
                    (b'{"id": [7], "op": "ping"}\n', "'id' must be"),
                    (b'{"id": {"k": 1}, "op": "ping"}\n', "'id' must be"),
                ):
                    writer.write(line)
                    await writer.drain()
                    payload = json.loads(await reader.readline())
                    assert payload["ok"] is False
                    assert payload["error"] == "bad_request"
                    assert payload["id"] is None
                    assert fragment in payload["message"]
                # Schema-violating but well-formed: the error echoes the id.
                writer.write(b'{"id": 5, "op": "infer"}\n')
                await writer.drain()
                payload = json.loads(await reader.readline())
                assert payload["id"] == 5
                assert payload["error"] == "bad_request"
                # The *next* request on the same connection still succeeds.
                writer.write(b'{"id": 9, "op": "ping"}\n')
                await writer.drain()
                assert json.loads(await reader.readline()) == {
                    "id": 9, "ok": True, "pong": True,
                }
            finally:
                writer.close()
                await writer.wait_closed()
            # The managed client on its own connection is unaffected.
            assert await client.ping()

        _with_daemon(model, scenario)


def _with_stub_server(respond, scenario, **client_kwargs):
    """Drive ``scenario(client)`` against a scripted line-by-line server.

    ``respond(message, count)`` returns the raw bytes to write back for the
    ``count``-th received line (b"" for silence).  Returns every message the
    stub received, so tests can count retry attempts.
    """

    async def drive():
        received: list[dict] = []
        handlers: set[asyncio.Task] = set()

        async def handler(reader, writer):
            handlers.add(asyncio.current_task())
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = json.loads(line)
                received.append(message)
                reply = respond(message, len(received))
                if reply:
                    writer.write(reply)
                    await writer.drain()
            writer.close()

        listener = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = listener.sockets[0].getsockname()[1]
        client = await AsyncServeClient.connect("127.0.0.1", port, **client_kwargs)
        try:
            await scenario(client)
        finally:
            # EOF the stub first so it drains every line already on the wire
            # (retry counts below depend on `received` being complete).
            await client.close()
            if handlers:
                await asyncio.gather(*handlers, return_exceptions=True)
            listener.close()
            await listener.wait_closed()
        return received

    return asyncio.run(drive())


def _ok_infer_reply(request_id):
    return (
        json.dumps(
            {
                "id": request_id, "ok": True, "model": "m", "outputs": [1.0, 2.0],
                "batch_size": 1, "total_cycles": 10, "latency_s": 1e-6,
                "energy_j": 1e-9, "queue_wait_s": 0.0, "service_s": 1e-6,
            }
        ).encode()
        + b"\n"
    )


def _overloaded_reply(request_id, retry_after_s=0.01):
    return (
        json.dumps(
            {
                "id": request_id, "ok": False, "error": "overloaded",
                "message": "queue full", "retry_after_s": retry_after_s,
            }
        ).encode()
        + b"\n"
    )


class TestClientTimeoutAndRetry:
    def test_timeout_raises_typed_error(self):
        async def scenario(client):
            with pytest.raises(ServeTimeoutError, match="within"):
                await client.ping()
            assert not client._pending  # the abandoned future was reaped

        received = _with_stub_server(
            lambda message, count: b"", scenario, timeout_s=0.05
        )
        assert len(received) == 1  # only infer retries; ping fails fast

    def test_infer_retries_timeouts_then_raises(self):
        async def scenario(client):
            with pytest.raises(ServeTimeoutError):
                await client.infer("m", np.zeros(4))

        received = _with_stub_server(
            lambda message, count: b"",
            scenario,
            timeout_s=0.05, retries=2, backoff_s=0.001,
        )
        assert len(received) == 3  # initial attempt + two retries

    def test_infer_retries_after_overload_and_succeeds(self):
        def respond(message, count):
            if count == 1:
                return _overloaded_reply(message["id"])
            return _ok_infer_reply(message["id"])

        async def scenario(client):
            response = await client.infer("m", np.zeros(4))
            assert np.array_equal(response.output, [1.0, 2.0])

        received = _with_stub_server(respond, scenario, retries=1, backoff_s=0.001)
        assert len(received) == 2

    def test_overload_without_retries_fails_fast(self):
        def respond(message, count):
            return _overloaded_reply(message["id"])

        async def scenario(client):
            with pytest.raises(ServerOverloadedError):
                await client.infer("m", np.zeros(4))

        received = _with_stub_server(respond, scenario)
        assert len(received) == 1

    def test_retries_exhausted_raises_overloaded(self):
        def respond(message, count):
            return _overloaded_reply(message["id"])

        async def scenario(client):
            with pytest.raises(ServerOverloadedError):
                await client.infer("m", np.zeros(4))

        received = _with_stub_server(
            respond, scenario, retries=2, backoff_s=0.001
        )
        assert len(received) == 3

    def test_read_loop_survives_server_garbage(self):
        def respond(message, count):
            # Garbage, a non-object line and an alien id precede the answer.
            return (
                b"not json\n"
                + b"[3]\n"
                + json.dumps({"id": [1, 2], "ok": True}).encode() + b"\n"
                + _ok_infer_reply(message["id"])
            )

        async def scenario(client):
            response = await client.infer("m", np.zeros(4))
            assert np.array_equal(response.output, [1.0, 2.0])

        _with_stub_server(respond, scenario, timeout_s=5.0)

    def test_invalid_client_parameters_rejected(self):
        # Validation fires before the reader task spawns, so no event loop
        # (and no real socket) is needed.
        with pytest.raises(ServeError, match="timeout_s"):
            AsyncServeClient(None, None, timeout_s=0.0)
        with pytest.raises(ServeError, match="retries"):
            AsyncServeClient(None, None, retries=-1)
        with pytest.raises(ServeError, match="backoff_s"):
            AsyncServeClient(None, None, backoff_s=-0.1)


class TestHealthDeadlineAndChaosVerbs:
    def test_health_round_trip(self, model):
        async def scenario(client, server):
            health = await client.health()
            assert health["ok"] is True
            assert health["models"] == [model.name]
            assert health["engine"] == "cycle"
            assert health["queue_depth"] == 0
            assert health["uptime_s"] >= 0.0
            assert health["chaos"] is False
            assert isinstance(health["pid"], int)

        _with_daemon(model, scenario)

    def test_deadline_expiry_maps_to_typed_error_over_the_wire(self, model):
        from repro.errors import DeadlineExceededError

        async def scenario(client, server):
            with pytest.raises(DeadlineExceededError) as excinfo:
                await client.infer(
                    model.name,
                    np.zeros(model.input_size),
                    deadline_s=1e-6,
                    timeout_s=10.0,
                )
            assert excinfo.value.deadline_s == pytest.approx(1e-6)

        # A long batching wait guarantees the tiny deadline expires queued.
        _with_daemon(
            model, scenario, policy=BatchPolicy(max_batch=8, max_wait_us=30_000.0)
        )

    def test_invalid_deadline_is_a_bad_request(self, model):
        async def scenario(client, server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", client._writer.get_extra_info("peername")[1]
            )
            try:
                writer.write(
                    json.dumps(
                        {
                            "id": 1, "op": "infer", "model": model.name,
                            "input": [0.0] * model.input_size,
                            "deadline_s": -2.0,
                        }
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                payload = json.loads(await reader.readline())
                assert payload["ok"] is False
                assert "deadline_s" in payload["message"]
            finally:
                writer.close()
                await writer.wait_closed()

        _with_daemon(model, scenario)

    def test_chaos_verb_is_gated_by_the_server_flag(self, model):
        async def scenario(client, server):
            with pytest.raises(ServeError, match="chaos injection is disabled"):
                await client.chaos(0.01, 1.0)

        _with_daemon(model, scenario)

    def test_chaos_verb_applies_when_enabled(self, model):
        async def scenario(client, server):
            applied = await client.chaos(0.02, 0.5)
            assert applied == {"latency_s": 0.02, "duration_s": 0.5}

        _with_daemon(model, scenario, chaos=True)


class TestErrorPayloadDecoding:
    """The wire error kinds decode back to the exact typed exceptions."""

    def test_fleet_error_kinds_round_trip(self):
        from repro.errors import (
            CircuitOpenError,
            DeadlineExceededError,
            WorkerCrashedError,
        )
        from repro.serve.protocol import _error_from_payload, _error_payload

        cases = [
            DeadlineExceededError("late", deadline_s=0.25),
            CircuitOpenError("open", worker_id=2, retry_after_s=0.5),
            WorkerCrashedError("gone", worker_id=1, restarts=3, retry_after_s=0.1),
            ServerOverloadedError("full", retry_after_s=0.05),
        ]
        for original in cases:
            payload = _error_payload(7, original)
            assert payload["ok"] is False
            decoded = _error_from_payload(payload)
            assert type(decoded) is type(original)
            for attr in ("deadline_s", "worker_id", "restarts", "retry_after_s"):
                if hasattr(original, attr):
                    assert getattr(decoded, attr) == getattr(original, attr)

    def test_unknown_kind_degrades_to_serve_error(self):
        from repro.serve.protocol import _error_from_payload

        decoded = _error_from_payload(
            {"ok": False, "error": "mystery", "message": "weird"}
        )
        assert type(decoded) is ServeError
        assert "weird" in str(decoded)
