"""Technology scaling between CMOS process nodes.

The paper reports EIE results at TSMC 45 nm and projects them to 28 nm for the
Table V comparison with DaDianNao, TrueNorth and the GPU platforms (which are
built in 28 nm).  The projection uses classical constant-field (Dennard-style)
scaling rules: area scales with the square of the feature size, delay scales
linearly (so frequency scales inversely), and dynamic power scales with
capacitance times voltage squared times frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = [
    "TechnologyNode",
    "scale_area",
    "scale_frequency",
    "scale_power",
    "project",
    "NODE_45NM",
    "NODE_28NM",
]


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS process node used for scaling projections.

    Attributes:
        feature_nm: drawn feature size in nanometres.
        supply_v: nominal supply voltage.
    """

    feature_nm: float
    supply_v: float

    def __post_init__(self) -> None:
        require_positive("feature_nm", self.feature_nm)
        require_positive("supply_v", self.supply_v)


#: TSMC 45 nm GP (the node EIE was synthesised in).
NODE_45NM = TechnologyNode(feature_nm=45.0, supply_v=1.0)
#: A generic 28 nm node (the node of Titan X / Tegra K1 / DaDianNao).
NODE_28NM = TechnologyNode(feature_nm=28.0, supply_v=0.9)


def scale_area(area: float, source: TechnologyNode, target: TechnologyNode) -> float:
    """Scale ``area`` from ``source`` to ``target`` (quadratic in feature size)."""
    require_positive("area", area)
    return area * (target.feature_nm / source.feature_nm) ** 2


def scale_frequency(freq: float, source: TechnologyNode, target: TechnologyNode) -> float:
    """Scale a clock frequency (gate delay is proportional to feature size)."""
    require_positive("freq", freq)
    return freq * (source.feature_nm / target.feature_nm)


def scale_power(
    power: float,
    source: TechnologyNode,
    target: TechnologyNode,
    frequency_ratio: float | None = None,
) -> float:
    """Scale dynamic power ``P ~ C * V^2 * f`` between nodes.

    Capacitance scales linearly with feature size; if ``frequency_ratio`` is
    not given the frequency is assumed to scale with the gate-delay
    improvement.
    """
    require_positive("power", power)
    capacitance_ratio = target.feature_nm / source.feature_nm
    voltage_ratio = (target.supply_v / source.supply_v) ** 2
    if frequency_ratio is None:
        frequency_ratio = source.feature_nm / target.feature_nm
    return power * capacitance_ratio * voltage_ratio * frequency_ratio


def project(
    area_mm2: float,
    power_w: float,
    clock_mhz: float,
    source: TechnologyNode = NODE_45NM,
    target: TechnologyNode = NODE_28NM,
) -> dict[str, float]:
    """Project (area, power, clock) of a design from ``source`` to ``target``.

    Returns a dict with keys ``area_mm2``, ``power_w`` and ``clock_mhz``.
    Projecting the 64-PE, 800 MHz, 40.8 mm^2, 0.59 W EIE from 45 nm to 28 nm
    yields a clock of roughly 1.2-1.3 GHz, which is how the paper arrives at
    the 1200 MHz, 256-PE 28 nm configuration in Table V.
    """
    frequency_ratio = scale_frequency(1.0, source, target)
    return {
        "area_mm2": scale_area(area_mm2, source, target),
        "power_w": scale_power(power_w, source, target, frequency_ratio=frequency_ratio),
        "clock_mhz": clock_mhz * frequency_ratio,
    }
