"""SRAM read-energy and access-count models.

The paper sweeps the Spmat SRAM interface width from 32 to 512 bits
(Figure 9): a wider interface needs fewer reads per column but costs more
energy per read, and the product of the two curves has its minimum at 64
bits.  The authors used Cacti for the energy-per-read curve; here we use a
Cacti-like analytic scaling law anchored so that a 64-bit read of the 128 KB
Spmat SRAM costs roughly what Table I quotes for a 32-bit read of a 32 KB
SRAM, scaled for width and capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.validation import require_positive, require_power_of_two

__all__ = [
    "sram_read_energy_pj",
    "SramConfig",
    "SramBank",
    "SPMAT_SRAM_KB",
    "PTR_SRAM_KB",
    "ACT_SRAM_KB",
    "ecc_storage_factor",
    "ecc_read_energy_factor",
    "protected_storage_bits",
]

#: Default EIE per-PE SRAM capacities (Section VI): 128 KB Spmat, 32 KB Ptr,
#: 2 KB activation SRAM, 162 KB total.
SPMAT_SRAM_KB = 128
PTR_SRAM_KB = 32
ACT_SRAM_KB = 2

#: Calibration constants for the Cacti-like model.  The reference point is
#: Table I: a 32-bit read from a 32 KB SRAM costs 5 pJ at 45 nm.
_REFERENCE_ENERGY_PJ = 5.0
_REFERENCE_WIDTH_BITS = 32
_REFERENCE_CAPACITY_KB = 32
#: Exponent of the width term.  Energy per read grows sub-linearly with the
#: interface width because the decoder and wordline energy are amortised; the
#: value is fitted to Figure 9 (left), where energy per read grows roughly 5x
#: from a 32-bit to a 512-bit interface.
_WIDTH_EXPONENT = 0.6
#: Exponent of the capacity term (bitline/decoder growth ~ sqrt of capacity).
_CAPACITY_EXPONENT = 0.5


def sram_read_energy_pj(width_bits: int, capacity_kb: float = SPMAT_SRAM_KB) -> float:
    """Energy in pJ of one read of ``width_bits`` from a ``capacity_kb`` SRAM.

    The model is ``E = E_ref * (width / 32)^0.6 * (capacity / 32KB)^0.5``,
    anchored at Table I's 5 pJ for a 32-bit read of a 32 KB array.  It
    reproduces the qualitative Figure 9 (left) curve: energy per read grows
    with width, roughly 5x from 32-bit to 512-bit.
    """
    require_power_of_two("width_bits", width_bits)
    require_positive("capacity_kb", capacity_kb)
    width_factor = (width_bits / _REFERENCE_WIDTH_BITS) ** _WIDTH_EXPONENT
    capacity_factor = (capacity_kb / _REFERENCE_CAPACITY_KB) ** _CAPACITY_EXPONENT
    return _REFERENCE_ENERGY_PJ * width_factor * capacity_factor


def ecc_storage_factor(scheme: str) -> float:
    """Stored-bits multiplier of an ECC scheme over raw data bits.

    ``none`` stores raw bits; ``parity`` adds 1 check bit per 64-bit word
    (~1.6% overhead); ``secded`` adds 8 for the (72,64) Hamming+parity code
    (12.5% overhead).  This is the area/capacity cost the reliability
    Pareto charges protected configurations.
    """
    from repro.reliability.ecc import ECC_DATA_BITS, ecc_check_bits

    return (ECC_DATA_BITS + ecc_check_bits(scheme)) / ECC_DATA_BITS


def ecc_read_energy_factor(scheme: str) -> float:
    """Per-read energy multiplier of an ECC scheme.

    A protected word read fetches ``64 + check`` bits instead of 64, so the
    read energy scales with the same sub-linear width exponent the Cacti
    model uses for interface width (decoder/wordline energy is shared):
    ``((64 + check) / 64) ** 0.6`` — ~1.0093 for parity, ~1.073 for SECDED.
    The syndrome XOR tree itself is noise next to the array access.
    """
    return ecc_storage_factor(scheme) ** _WIDTH_EXPONENT


def protected_storage_bits(data_bits: int, scheme: str) -> int:
    """Bits held in SRAM to store ``data_bits`` under ``scheme``.

    Check bits are per 64-bit word, so protection is word-granular: a
    partial last word still pays full check bits.  ``none`` stores the raw
    bits unchanged.
    """
    from repro.reliability.ecc import ECC_DATA_BITS, ecc_check_bits

    if data_bits < 0:
        raise ConfigurationError(f"data_bits must be >= 0, got {data_bits}")
    check = ecc_check_bits(scheme)
    if check == 0:
        return int(data_bits)
    words = -(-int(data_bits) // ECC_DATA_BITS)
    return words * (ECC_DATA_BITS + check)


@dataclass(frozen=True)
class SramConfig:
    """Geometry of one SRAM bank.

    Attributes:
        capacity_kb: capacity in kilobytes.
        width_bits: read/write interface width in bits.
        name: label used in reports (e.g. ``"Spmat"``).
    """

    capacity_kb: float
    width_bits: int
    name: str = "sram"

    def __post_init__(self) -> None:
        require_positive("capacity_kb", self.capacity_kb)
        require_power_of_two("width_bits", self.width_bits)

    @property
    def capacity_bits(self) -> int:
        """Total capacity in bits."""
        return int(self.capacity_kb * 1024 * 8)

    @property
    def num_rows(self) -> int:
        """Number of addressable rows at the configured width."""
        return self.capacity_bits // self.width_bits

    @property
    def read_energy_pj(self) -> float:
        """Energy of one read at the configured width."""
        return sram_read_energy_pj(self.width_bits, self.capacity_kb)

    def reads_for_entries(self, num_entries: int, entry_bits: int) -> int:
        """Number of reads needed to stream ``num_entries`` packed entries.

        Entries are packed ``width_bits // entry_bits`` per row; a partial row
        still costs one full read (this is exactly the wasted-read effect that
        makes very wide interfaces lose in Figure 9).
        """
        if entry_bits <= 0 or entry_bits > self.width_bits:
            raise ConfigurationError(
                f"entry_bits must be in [1, {self.width_bits}], got {entry_bits}"
            )
        if num_entries < 0:
            raise ConfigurationError(f"num_entries must be >= 0, got {num_entries}")
        entries_per_row = self.width_bits // entry_bits
        return math.ceil(num_entries / entries_per_row) if num_entries else 0


class SramBank:
    """A counting SRAM bank: tracks reads/writes and accumulates energy.

    The simulators use one bank per physical SRAM in the PE (Spmat, two Ptr
    banks, Act) and read the accumulated statistics when building the energy
    reports.
    """

    def __init__(self, config: SramConfig) -> None:
        self.config = config
        self.reads = 0
        self.writes = 0

    def read(self, count: int = 1) -> None:
        """Record ``count`` read accesses."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self.reads += int(count)

    def write(self, count: int = 1) -> None:
        """Record ``count`` write accesses."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self.writes += int(count)

    def reset(self) -> None:
        """Clear the access counters."""
        self.reads = 0
        self.writes = 0

    @property
    def access_count(self) -> int:
        """Total reads plus writes."""
        return self.reads + self.writes

    @property
    def energy_pj(self) -> float:
        """Energy of all recorded accesses (writes cost the same as reads)."""
        return self.access_count * self.config.read_energy_pj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SramBank(name={self.config.name!r}, reads={self.reads}, "
            f"writes={self.writes})"
        )
