"""Hardware cost models: energy, SRAM, area/power breakdown, technology scaling.

This subpackage provides the analytic substitutes for the paper's physical
design flow (Synopsys DC/ICC synthesis, Cacti, Prime-Time PX).  The models are
anchored to the numbers published in the paper (Tables I and II) and provide
the scaling laws needed for the design-space-exploration figures (Figures 9
and 10) and the cross-platform comparison (Table V).
"""

from repro.hardware.area import LNZD_UNIT, PEAreaModel, chip_area_mm2, num_lnzd_units
from repro.hardware.energy import (
    ENERGY_TABLE_45NM,
    EnergyModel,
    EnergyTable,
    OperationEnergy,
    multiply_energy_pj,
)
from repro.hardware.sram import (
    SramBank,
    SramConfig,
    ecc_read_energy_factor,
    ecc_storage_factor,
    protected_storage_bits,
    sram_read_energy_pj,
)
from repro.hardware.technology import TechnologyNode, scale_area, scale_frequency, scale_power

__all__ = [
    "ENERGY_TABLE_45NM",
    "EnergyModel",
    "EnergyTable",
    "LNZD_UNIT",
    "OperationEnergy",
    "PEAreaModel",
    "SramBank",
    "SramConfig",
    "TechnologyNode",
    "chip_area_mm2",
    "ecc_read_energy_factor",
    "ecc_storage_factor",
    "multiply_energy_pj",
    "protected_storage_bits",
    "num_lnzd_units",
    "scale_area",
    "scale_frequency",
    "scale_power",
    "sram_read_energy_pj",
]
