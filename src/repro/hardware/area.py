"""Area and power models for the EIE processing element and chip.

The numbers reproduce Table II of the paper (implementation results of one PE
at TSMC 45 nm, broken down by component type and by module) plus the LNZD
unit cost quoted in Section VI, and compose them into whole-chip area and
power for an arbitrary number of PEs (used by Table V and the 28 nm
projection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.utils.validation import require_positive

__all__ = [
    "ModuleCost",
    "PEAreaModel",
    "LNZD_UNIT",
    "num_lnzd_units",
    "chip_area_mm2",
    "chip_power_w",
]


@dataclass(frozen=True)
class ModuleCost:
    """Power and area of one module or component class inside a PE."""

    name: str
    power_mw: float
    area_um2: float


#: Table II, lines 8-13: breakdown of one PE by module.
PE_MODULE_BREAKDOWN: tuple[ModuleCost, ...] = (
    ModuleCost("act_queue", power_mw=0.112, area_um2=758.0),
    ModuleCost("ptr_read", power_mw=1.807, area_um2=121_849.0),
    ModuleCost("spmat_read", power_mw=4.955, area_um2=469_412.0),
    ModuleCost("arithmetic", power_mw=1.162, area_um2=3_110.0),
    ModuleCost("act_rw", power_mw=1.122, area_um2=18_934.0),
    ModuleCost("filler", power_mw=0.0, area_um2=23_961.0),
)

#: Table II, lines 3-7: breakdown of one PE by component type.
PE_COMPONENT_BREAKDOWN: tuple[ModuleCost, ...] = (
    ModuleCost("memory", power_mw=5.416, area_um2=594_786.0),
    ModuleCost("clock_network", power_mw=1.874, area_um2=866.0),
    ModuleCost("register", power_mw=1.026, area_um2=9_465.0),
    ModuleCost("combinational", power_mw=0.841, area_um2=8_946.0),
    ModuleCost("filler", power_mw=0.0, area_um2=23_961.0),
)

#: Section VI: one leading-non-zero-detection node costs 0.023 mW and 189 um2.
LNZD_UNIT = ModuleCost("lnzd_node", power_mw=0.023, area_um2=189.0)

#: Paper headline numbers for one PE (Table II, line 2).
PE_TOTAL_POWER_MW = 9.157
PE_TOTAL_AREA_UM2 = 638_024.0
#: Critical path reported by the paper (Section VI / Table II caption).
PE_CRITICAL_PATH_NS = 1.15


def num_lnzd_units(num_pes: int) -> int:
    """Number of LNZD nodes needed for ``num_pes`` PEs.

    Each node covers four children, arranged as a quadtree, and the root node
    doubles as the central control unit.  For 64 PEs this gives
    16 + 4 + 1 = 21 units, matching the paper.
    """
    if num_pes < 1:
        raise ConfigurationError(f"num_pes must be >= 1, got {num_pes}")
    count = 0
    nodes = int(num_pes)
    while nodes > 1:
        nodes = -(-nodes // 4)  # ceil division
        count += nodes
    return max(count, 1)


@dataclass
class PEAreaModel:
    """Area/power model of one EIE PE with Table II's breakdown.

    The breakdown can be rescaled (e.g. for a different Spmat SRAM capacity)
    but by default reproduces the published numbers exactly.

    Attributes:
        modules: per-module costs (act queue, pointer read, Spmat read,
            arithmetic, activation R/W, filler cells).
        components: per-component-type costs (memory, clock, registers,
            combinational, filler).
        clock_mhz: PE clock frequency.
    """

    modules: tuple[ModuleCost, ...] = field(default_factory=lambda: PE_MODULE_BREAKDOWN)
    components: tuple[ModuleCost, ...] = field(default_factory=lambda: PE_COMPONENT_BREAKDOWN)
    clock_mhz: float = 800.0

    def __post_init__(self) -> None:
        require_positive("clock_mhz", self.clock_mhz)

    @property
    def total_power_mw(self) -> float:
        """Total PE power in milliwatts (sum of the module breakdown)."""
        return sum(module.power_mw for module in self.modules)

    @property
    def total_area_um2(self) -> float:
        """Total PE area in square micrometres (sum of the module breakdown)."""
        return sum(module.area_um2 for module in self.modules)

    @property
    def total_area_mm2(self) -> float:
        """Total PE area in square millimetres."""
        return self.total_area_um2 / 1e6

    def module_fraction(self, name: str, quantity: str = "area") -> float:
        """Fraction of total area or power attributed to module ``name``."""
        for module in self.modules:
            if module.name == name:
                if quantity == "area":
                    return module.area_um2 / self.total_area_um2
                if quantity == "power":
                    return module.power_mw / max(self.total_power_mw, 1e-12)
                raise ConfigurationError(f"unknown quantity {quantity!r}")
        raise ConfigurationError(f"unknown module {name!r}")

    def component_fraction(self, name: str, quantity: str = "area") -> float:
        """Fraction of total area or power attributed to component ``name``."""
        total_area = sum(component.area_um2 for component in self.components)
        total_power = sum(component.power_mw for component in self.components)
        for component in self.components:
            if component.name == name:
                if quantity == "area":
                    return component.area_um2 / total_area
                if quantity == "power":
                    return component.power_mw / max(total_power, 1e-12)
                raise ConfigurationError(f"unknown quantity {quantity!r}")
        raise ConfigurationError(f"unknown component {name!r}")

    def breakdown_rows(self) -> list[dict[str, object]]:
        """Table-II-style rows (name, power mW, power %, area um2, area %)."""
        rows: list[dict[str, object]] = []
        total_power = self.total_power_mw
        total_area = self.total_area_um2
        rows.append(
            {
                "name": "Total",
                "group": "total",
                "power_mw": total_power,
                "power_pct": 100.0,
                "area_um2": total_area,
                "area_pct": 100.0,
            }
        )
        for group_name, group in (("component", self.components), ("module", self.modules)):
            for cost in group:
                rows.append(
                    {
                        "name": cost.name,
                        "group": group_name,
                        "power_mw": cost.power_mw,
                        "power_pct": 100.0 * cost.power_mw / total_power,
                        "area_um2": cost.area_um2,
                        "area_pct": 100.0 * cost.area_um2 / total_area,
                    }
                )
        return rows


def chip_area_mm2(num_pes: int, pe_model: PEAreaModel | None = None) -> float:
    """Total chip area in mm^2 for ``num_pes`` PEs plus their LNZD tree.

    For 64 PEs this reproduces the paper's ~40.8 mm^2.
    """
    pe_model = pe_model or PEAreaModel()
    lnzd_area_um2 = num_lnzd_units(num_pes) * LNZD_UNIT.area_um2
    return (num_pes * pe_model.total_area_um2 + lnzd_area_um2) / 1e6


def chip_power_w(num_pes: int, pe_model: PEAreaModel | None = None) -> float:
    """Total chip power in watts for ``num_pes`` PEs plus their LNZD tree.

    For 64 PEs this reproduces the paper's ~0.59 W.
    """
    pe_model = pe_model or PEAreaModel()
    lnzd_power_mw = num_lnzd_units(num_pes) * LNZD_UNIT.power_mw
    return (num_pes * pe_model.total_power_mw + lnzd_power_mw) / 1e3
