"""Per-operation energy models for a 45 nm CMOS process.

``ENERGY_TABLE_45NM`` reproduces Table I of the paper (energy per basic
arithmetic and memory operation, from Horowitz's 45 nm energy table).  The
:class:`EnergyModel` combines these unit energies with operation counts
produced by the simulators to estimate the energy of an EIE inference or of a
DRAM-based dense baseline, which underlies the 120x / 10x / 8x / 3x savings
decomposition and Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.utils.validation import require_in, require_non_negative

__all__ = [
    "OperationEnergy",
    "EnergyTable",
    "ENERGY_TABLE_45NM",
    "multiply_energy_pj",
    "MULTIPLY_ENERGY_PJ",
    "EnergyModel",
    "EnergyBreakdown",
]


@dataclass(frozen=True)
class OperationEnergy:
    """Energy of one basic operation.

    Attributes:
        name: human readable operation name as it appears in Table I.
        energy_pj: energy per operation in picojoules.
        relative_cost: cost relative to a 32-bit integer add (Table I column 3).
    """

    name: str
    energy_pj: float
    relative_cost: float

    def total_pj(self, count: int) -> float:
        """Energy in pJ for ``count`` repetitions of this operation."""
        require_non_negative("count", count)
        return self.energy_pj * count


@dataclass(frozen=True)
class EnergyTable:
    """A table of per-operation energies for one technology node.

    The default instance, :data:`ENERGY_TABLE_45NM`, carries the exact values
    of Table I in the paper.
    """

    technology_nm: int
    int32_add_pj: float
    float32_add_pj: float
    int32_mult_pj: float
    float32_mult_pj: float
    sram32_read_pj: float
    dram32_read_pj: float

    def as_operations(self) -> tuple[OperationEnergy, ...]:
        """Return the table as Table-I-style rows (relative to int32 add)."""
        base = self.int32_add_pj
        rows = (
            ("32 bit int ADD", self.int32_add_pj),
            ("32 bit float ADD", self.float32_add_pj),
            ("32 bit int MULT", self.int32_mult_pj),
            ("32 bit float MULT", self.float32_mult_pj),
            ("32 bit 32KB SRAM", self.sram32_read_pj),
            ("32 bit DRAM", self.dram32_read_pj),
        )
        return tuple(
            OperationEnergy(name=name, energy_pj=pj, relative_cost=pj / base)
            for name, pj in rows
        )

    @property
    def dram_over_sram(self) -> float:
        """DRAM-to-SRAM energy ratio (the paper quotes 128x)."""
        return self.dram32_read_pj / self.sram32_read_pj


#: Table I of the paper: energy for a 45 nm CMOS process.
ENERGY_TABLE_45NM = EnergyTable(
    technology_nm=45,
    int32_add_pj=0.1,
    float32_add_pj=0.9,
    int32_mult_pj=3.1,
    float32_mult_pj=3.7,
    sram32_read_pj=5.0,
    dram32_read_pj=640.0,
)

#: Multiplier energy versus arithmetic precision (Figure 10, left axis).
#: The paper states that 16-bit fixed-point multiplication consumes 5x less
#: energy than 32-bit fixed-point and 6.2x less than 32-bit floating point.
MULTIPLY_ENERGY_PJ: dict[str, float] = {
    "float32": ENERGY_TABLE_45NM.float32_mult_pj,           # 3.7 pJ
    "int32": ENERGY_TABLE_45NM.int32_mult_pj,               # 3.1 pJ
    "int16": ENERGY_TABLE_45NM.int32_mult_pj / 5.0,         # ~0.62 pJ
    "int8": ENERGY_TABLE_45NM.int32_mult_pj / 5.0 / 3.1,    # ~0.2 pJ
}


def multiply_energy_pj(precision: str) -> float:
    """Energy of one multiplication at ``precision``.

    ``precision`` is one of ``float32``, ``int32``, ``int16``, ``int8``.
    """
    require_in("precision", precision, MULTIPLY_ENERGY_PJ)
    return MULTIPLY_ENERGY_PJ[precision]


def add_energy_pj(precision: str) -> float:
    """Energy of one addition at ``precision`` (scaled from Table I)."""
    require_in("precision", precision, MULTIPLY_ENERGY_PJ)
    if precision == "float32":
        return ENERGY_TABLE_45NM.float32_add_pj
    scale = {"int32": 1.0, "int16": 0.5, "int8": 0.25}[precision]
    return ENERGY_TABLE_45NM.int32_add_pj * scale


@dataclass
class EnergyBreakdown:
    """Energy of one inference broken down by source, all in picojoules."""

    sram_read_pj: float = 0.0
    dram_read_pj: float = 0.0
    multiply_pj: float = 0.0
    add_pj: float = 0.0
    overhead_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        """Total energy in picojoules."""
        return (
            self.sram_read_pj
            + self.dram_read_pj
            + self.multiply_pj
            + self.add_pj
            + self.overhead_pj
        )

    @property
    def total_nj(self) -> float:
        """Total energy in nanojoules."""
        return self.total_pj / 1e3

    @property
    def total_uj(self) -> float:
        """Total energy in microjoules."""
        return self.total_pj / 1e6

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            sram_read_pj=self.sram_read_pj * factor,
            dram_read_pj=self.dram_read_pj * factor,
            multiply_pj=self.multiply_pj * factor,
            add_pj=self.add_pj * factor,
            overhead_pj=self.overhead_pj * factor,
        )


@dataclass
class EnergyModel:
    """Combines unit energies with operation counts.

    The model distinguishes where weights are fetched from (on-chip SRAM for
    EIE, off-chip DRAM for an uncompressed baseline) and which arithmetic
    precision is used, capturing the four energy-saving factors the paper
    decomposes: DRAM->SRAM (120x), sparsity (10x), weight sharing (8x) and
    activation sparsity (3x).

    Attributes:
        table: the per-operation energy table (defaults to 45 nm, Table I).
        precision: arithmetic precision used for multiply/accumulate.
        sram_read_pj_per_32b: energy of one 32-bit-equivalent SRAM read.
        dram_read_pj_per_32b: energy of one 32-bit-equivalent DRAM read.
        ecc_scheme: ECC protection on the weight SRAMs (``"none"``,
            ``"parity"`` or ``"secded"``); protected reads fetch check bits
            alongside the data and pay the corresponding energy factor
            (:func:`~repro.hardware.sram.ecc_read_energy_factor`).
    """

    table: EnergyTable = field(default_factory=lambda: ENERGY_TABLE_45NM)
    precision: str = "int16"
    sram_read_pj_per_32b: float | None = None
    dram_read_pj_per_32b: float | None = None
    ecc_scheme: str = "none"

    def __post_init__(self) -> None:
        require_in("precision", self.precision, MULTIPLY_ENERGY_PJ)
        if self.sram_read_pj_per_32b is None:
            self.sram_read_pj_per_32b = self.table.sram32_read_pj
        if self.dram_read_pj_per_32b is None:
            self.dram_read_pj_per_32b = self.table.dram32_read_pj
        from repro.reliability.ecc import ECC_SCHEMES

        require_in("ecc_scheme", self.ecc_scheme, ECC_SCHEMES)

    # -- elementary energies -------------------------------------------------

    def mac_energy_pj(self) -> float:
        """Energy of one multiply-accumulate at the configured precision."""
        return multiply_energy_pj(self.precision) + add_energy_pj(self.precision)

    def memory_read_energy_pj(self, bits: float, location: str) -> float:
        """Energy of fetching ``bits`` bits from ``location`` (sram or dram).

        SRAM reads pay the configured ECC scheme's read-energy factor (check
        bits come out of the array with the data); DRAM reads are unaffected.
        """
        require_in("location", location, ("sram", "dram"))
        require_non_negative("bits", bits)
        if location == "sram":
            from repro.hardware.sram import ecc_read_energy_factor

            return (
                self.sram_read_pj_per_32b
                * ecc_read_energy_factor(self.ecc_scheme)
                * bits
                / 32.0
            )
        return self.dram_read_pj_per_32b * bits / 32.0

    # -- composite estimates -------------------------------------------------

    def matrix_vector_energy(
        self,
        weight_reads: int,
        weight_bits: float,
        activation_reads: int,
        activation_bits: float,
        macs: int,
        weight_location: str = "sram",
    ) -> EnergyBreakdown:
        """Energy of one M x V given explicit counts.

        Args:
            weight_reads: number of weight fetches performed.
            weight_bits: bits per weight fetch (4 for the compressed model,
                32 for an uncompressed float baseline).
            activation_reads: number of activation fetches.
            activation_bits: bits per activation fetch.
            macs: number of multiply-accumulate operations.
            weight_location: ``"sram"`` or ``"dram"``.
        """
        require_non_negative("weight_reads", weight_reads)
        require_non_negative("activation_reads", activation_reads)
        require_non_negative("macs", macs)
        weight_energy = weight_reads * self.memory_read_energy_pj(weight_bits, weight_location)
        act_energy = activation_reads * self.memory_read_energy_pj(activation_bits, "sram")
        breakdown = EnergyBreakdown(
            multiply_pj=macs * multiply_energy_pj(self.precision),
            add_pj=macs * add_energy_pj(self.precision),
        )
        if weight_location == "sram":
            breakdown.sram_read_pj = weight_energy + act_energy
        else:
            breakdown.dram_read_pj = weight_energy
            breakdown.sram_read_pj = act_energy
        return breakdown

    def dense_baseline_energy(self, rows: int, cols: int, precision: str = "float32") -> EnergyBreakdown:
        """Energy of an uncompressed dense M x V with weights fetched from DRAM.

        This is the reference the paper's 120x / 10x / 8x / 3x factors are
        measured against: every one of ``rows * cols`` weights is a 32-bit
        DRAM fetch and a float MAC.
        """
        macs = int(rows) * int(cols)
        weight_energy = macs * self.memory_read_energy_pj(32, "dram")
        act_energy = macs * self.memory_read_energy_pj(32, "sram")
        return EnergyBreakdown(
            dram_read_pj=weight_energy,
            sram_read_pj=act_energy,
            multiply_pj=macs * multiply_energy_pj(precision),
            add_pj=macs * add_energy_pj(precision),
        )

    def theoretical_saving_factors(
        self,
        weight_density: float,
        activation_density: float,
        weight_bits: int = 4,
    ) -> dict[str, float]:
        """The paper's multiplicative energy-saving decomposition.

        Returns a dict with the four factors (``dram_to_sram``, ``sparsity``,
        ``weight_sharing``, ``activation_sparsity``) and their product
        (``total``).  With the paper's typical numbers (10% weights, 4-bit
        weights, 30% activations) this reproduces 120 x 10 x 8 x 3 = 28,800.
        """
        if not 0 < weight_density <= 1 or not 0 < activation_density <= 1:
            raise ConfigurationError("densities must be in (0, 1]")
        factors = {
            "dram_to_sram": self.dram_read_pj_per_32b / self.sram_read_pj_per_32b,
            "sparsity": 1.0 / weight_density,
            "weight_sharing": 32.0 / weight_bits,
            "activation_sparsity": 1.0 / activation_density,
        }
        factors["total"] = (
            factors["dram_to_sram"]
            * factors["sparsity"]
            * factors["weight_sharing"]
            * factors["activation_sparsity"]
        )
        return factors
