"""repro.store: the content-addressed artifact layer.

One :class:`~repro.store.artifacts.ArtifactStore` caches compression output
on disk, keyed by weight fingerprint + compression parameters + PE count, so
every process on a machine shares one Deep Compression pass per distinct
layer.  See ``docs/ARCHITECTURE.md`` ("Execution & artifact layer") for the
key derivation and invalidation rules.
"""

from repro.store.artifacts import (
    ArtifactStore,
    default_store_root,
    maybe_default_store,
    store_enabled,
)

__all__ = [
    "ArtifactStore",
    "default_store_root",
    "maybe_default_store",
    "store_enabled",
]
