"""Content-addressed on-disk store for compression and experiment artifacts.

Deep Compression dominates the wall-clock of every whole-model flow, and its
output depends only on three things: the dense weight matrix (captured by
:func:`~repro.compression.pipeline.weights_fingerprint`), the
:class:`~repro.compression.pipeline.CompressionConfig`, and the PE count the
result is interleaved over.  The :class:`ArtifactStore` keys one file per
distinct triple, so a layer is compressed **once per machine** instead of
once per process: every later
:meth:`~repro.engine.session.Session.compress` — across experiment runs, CLI
invocations, process-pool workers and CI steps — becomes a load.

The store holds four artifact *kinds*, each in its own subdirectory:

* ``layers`` — per-layer compression output (codebook + per-PE CSC streams),
  the original and still the hottest kind;
* ``prepared`` — engine-prepared layer payloads (array bundles keyed by the
  layer content and the engine's prepare token);
* ``models`` — whole compressed-model manifests: the per-node layer keys of
  one :class:`~repro.models.ir.ModelIR` at one PE count, so a warm
  ``compress_model`` is pure loads;
* ``shards`` — partial experiment results written by
  :mod:`repro.shard` workers (one JSON record set per ``(spec, shard_id,
  shard_count)``), merged back into full results byte-identically.

Guarantees:

* **Bit-identical round trips.**  Layer payloads are the exact codebook and
  per-PE CSC streams; loading rebuilds the layer through the *validating*
  constructors, so ``storage_bits``, ``to_dense`` and the per-PE streams are
  equal to the freshly compressed layer's.  JSON artifacts carry a CRC over
  their payload so silent value corruption is detected on load.
* **Never half-loaded.**  Writes go to a temporary file in the kind
  directory and are published with one atomic :func:`os.replace`; readers can
  never observe a partially written entry.  Corrupt or truncated entries
  (zip CRC failures, invalid stream invariants, key/format mismatches) are
  detected on load, counted in :meth:`ArtifactStore.stats`, deleted, and
  reported as a miss — the caller recomputes and overwrites.
* **Concurrency-safe.**  Multiple processes may load and store the same key
  simultaneously; last-writer-wins on identical content is harmless because
  entries are content-addressed.
* **Bounded (optionally).**  With a ``size_budget_bytes`` the store evicts
  least-recently-used entries (loads refresh recency) after each publish
  until it fits the budget.  Eviction is atomic per entry, counted per kind
  and in the machine-lifetime counters, and never touches entries referenced
  by an in-flight pin manifest (:meth:`ArtifactStore.pinned`) — a sharded
  sweep pins its partials so a concurrent writer cannot evict them mid-merge.

The store root defaults to ``$REPRO_STORE_DIR``, falling back to
``$XDG_CACHE_HOME/repro-eie/artifacts`` (``~/.cache/repro-eie/artifacts``).
Setting ``REPRO_STORE=0`` disables the default store everywhere it is wired
up implicitly (the CLI and the experiment runner); explicitly constructed
stores are unaffected.  ``REPRO_STORE_BUDGET_BYTES`` applies a size budget to
the implicit default store.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
import zlib
from pathlib import Path
from typing import Any, Iterable, Iterator

import numpy as np

from repro.compression.csc import CSCMatrix, InterleavedCSC, _rows_owned_by
from repro.compression.pipeline import CompressedLayer, CompressionConfig
from repro.compression.quantization import WeightCodebook
from repro.errors import ConfigurationError

__all__ = [
    "ArtifactStore",
    "default_store_root",
    "maybe_default_store",
    "store_enabled",
]

#: On-disk payload format; bumped on any incompatible serialization change.
FORMAT_VERSION = 1

#: Environment variable overriding the default store root directory.
ENV_ROOT = "REPRO_STORE_DIR"

#: Environment variable disabling the implicit default store (``0``/``false``).
ENV_ENABLED = "REPRO_STORE"

#: Environment variable applying a size budget (bytes) to the default store.
ENV_BUDGET = "REPRO_STORE_BUDGET_BYTES"


def default_store_root() -> Path:
    """The machine-wide store root (``$REPRO_STORE_DIR`` or the user cache)."""
    override = os.environ.get(ENV_ROOT)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-eie" / "artifacts"


def store_enabled() -> bool:
    """Whether the implicit default store is enabled (``REPRO_STORE`` gate)."""
    return os.environ.get(ENV_ENABLED, "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def _default_budget() -> int | None:
    raw = os.environ.get(ENV_BUDGET, "").strip()
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        return None
    return budget if budget > 0 else None


def maybe_default_store() -> "ArtifactStore | None":
    """The default :class:`ArtifactStore`, or ``None`` when disabled."""
    if not store_enabled():
        return None
    return ArtifactStore(default_store_root(), size_budget_bytes=_default_budget())


def _records_crc(records: Any) -> int:
    """CRC32 over the canonical JSON form of a record payload."""
    return zlib.crc32(json.dumps(records, sort_keys=True).encode())


class ArtifactStore:
    """A content-addressed cache of compression and experiment artifacts.

    Args:
        root: store directory (created lazily on the first write).
        size_budget_bytes: optional cap on the total bytes of published
            entries; exceeding it after a publish evicts least-recently-used
            unpinned entries until the store fits.
    """

    #: Artifact kinds, each stored under ``<root>/<kind>/``.
    KINDS = ("layers", "prepared", "models", "shards")

    #: File suffix per kind (array bundles vs JSON records).
    _SUFFIX = {"layers": ".npz", "prepared": ".npz", "models": ".json", "shards": ".json"}

    #: Per-kind counter names tracked by :meth:`stats`.
    COUNTERS = ("hits", "misses", "stores", "errors", "evictions")

    def __init__(self, root: Path | str, size_budget_bytes: int | None = None) -> None:
        if size_budget_bytes is not None and size_budget_bytes < 1:
            raise ConfigurationError(
                f"size_budget_bytes must be >= 1, got {size_budget_bytes}"
            )
        self.root = Path(root)
        self.size_budget_bytes = size_budget_bytes
        self._stats = {
            kind: dict.fromkeys(self.COUNTERS, 0) for kind in self.KINDS
        }
        self._swept = False

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def layer_key(
        fingerprint: str, num_pes: int, config: CompressionConfig
    ) -> str:
        """Content address of one compressed layer.

        The key covers exactly the inputs that shape the compressed form:
        the dense matrix's content fingerprint, the PE count, the full
        compression configuration, and the payload format version (so a
        format bump invalidates every old entry instead of misreading it).
        The layer's *name* and *activation* are presentation metadata and
        deliberately excluded — they are reapplied by the loader.
        """
        if num_pes < 1:
            raise ConfigurationError(f"num_pes must be >= 1, got {num_pes}")
        payload = json.dumps(
            {
                "fingerprint": fingerprint,
                "num_pes": int(num_pes),
                "config": config.to_dict(),
                "format": FORMAT_VERSION,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    @staticmethod
    def content_key(payload: dict) -> str:
        """Content address of an arbitrary JSON-serializable key payload.

        The format version is folded in so a payload-format bump invalidates
        every old entry of every kind instead of misreading it.
        """
        text = json.dumps({**payload, "format": FORMAT_VERSION}, sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()

    def _kind_dir(self, kind: str) -> Path:
        if kind not in self.KINDS:
            raise ConfigurationError(
                f"unknown artifact kind {kind!r}; expected one of {', '.join(self.KINDS)}"
            )
        return self.root / kind

    def _entry_path(self, kind: str, key: str) -> Path:
        return self._kind_dir(kind) / f"{key}{self._SUFFIX[kind]}"

    def _layer_path(self, key: str) -> Path:
        return self._entry_path("layers", key)

    # -- counters --------------------------------------------------------------

    def _count(self, kind: str, counter: str, delta: int = 1) -> None:
        self._stats[kind][counter] += delta

    def _touch(self, path: Path) -> None:
        """Refresh an entry's recency for the LRU eviction order."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    # -- atomic publish --------------------------------------------------------

    def _publish_bytes(self, kind: str, key: str, payload: bytes) -> Path:
        """Atomically publish raw bytes under ``<kind>/<key>``; may raise OSError."""
        if not self._swept:
            # One opportunistic pass per handle: the first write is the
            # natural moment to collect .tmp files orphaned by crashed
            # writers (a sweep on every store would just churn the directory).
            self._swept = True
            self.sweep_stale_tmp()
        path = self._entry_path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=f".{key[:16]}.", suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        except BaseException:
            Path(handle.name).unlink(missing_ok=True)
            raise
        self._count(kind, "stores")
        self._bump_lifetime(stored_entries=1)
        self.evict_to_budget()
        return path

    # -- JSON artifacts (models, shards) ---------------------------------------

    def store_json(self, kind: str, key: str, payload: dict) -> Path | None:
        """Publish a JSON artifact under its content address (atomic, CRC'd).

        The stored document wraps ``payload`` with the format version, its
        own key (so a misplaced file is rejected on load) and a CRC32 over
        the payload.  Best-effort like every publish: an unwritable root is
        counted under ``errors`` and reported as ``None``.
        """
        document = {
            "format": FORMAT_VERSION,
            "key": key,
            "payload": payload,
            "crc": _records_crc(payload),
        }
        try:
            # No sort_keys: the payload's insertion order is part of the
            # contract (shard records must round-trip byte-identically); the
            # CRC is computed over the canonical sorted form either way.
            return self._publish_bytes(
                kind, key, (json.dumps(document) + "\n").encode()
            )
        except OSError:
            self._count(kind, "errors")
            return None

    def load_json(self, kind: str, key: str) -> dict | None:
        """Load a JSON artifact, or ``None`` on miss/corruption.

        Any unreadable, unparsable, foreign-keyed or CRC-mismatched entry is
        treated as corrupt: counted under ``errors``, deleted, and reported
        as a miss — the caller recomputes that artifact only.
        """
        path = self._entry_path(kind, key)
        if not path.exists():
            self._count(kind, "misses")
            return None
        try:
            document = json.loads(path.read_text())
            if not isinstance(document, dict):
                raise ValueError("not a JSON object")
            if document.get("format") != FORMAT_VERSION or document.get("key") != key:
                raise ValueError("stale or foreign key")
            payload = document["payload"]
            if _records_crc(payload) != document.get("crc"):
                raise ValueError("payload CRC mismatch")
        except Exception:
            self._count(kind, "errors")
            self._count(kind, "misses")
            self._bump_lifetime(corrupt_entries=1)
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # read-only filesystem: leave the corrupt entry in place
            return None
        self._count(kind, "hits")
        self._touch(path)
        return payload

    # -- array artifacts (prepared layers) -------------------------------------

    def store_arrays(
        self, kind: str, key: str, meta: dict, arrays: dict[str, np.ndarray]
    ) -> Path | None:
        """Publish a bundle of named arrays plus JSON metadata (atomic)."""
        meta = {"format": FORMAT_VERSION, "key": key, **meta}
        try:
            import io

            buffer = io.BytesIO()
            np.savez(
                buffer,
                meta=np.frombuffer(
                    json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
                ),
                **arrays,
            )
            return self._publish_bytes(kind, key, buffer.getvalue())
        except OSError:
            self._count(kind, "errors")
            return None

    def load_arrays(self, kind: str, key: str) -> tuple[dict, dict[str, np.ndarray]] | None:
        """Load an array bundle, or ``None`` on miss/corruption."""
        path = self._entry_path(kind, key)
        if not path.exists():
            self._count(kind, "misses")
            return None
        try:
            with np.load(path) as archive:
                meta = json.loads(bytes(archive["meta"]).decode())
                if meta.get("format") != FORMAT_VERSION or meta.get("key") != key:
                    raise ValueError("stale or foreign key")
                arrays = {
                    name: np.asarray(archive[name])
                    for name in archive.files
                    if name != "meta"
                }
        except Exception:
            self._count(kind, "errors")
            self._count(kind, "misses")
            self._bump_lifetime(corrupt_entries=1)
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        self._count(kind, "hits")
        self._touch(path)
        return meta, arrays

    # -- layer store / load ----------------------------------------------------

    def store_layer(
        self,
        fingerprint: str,
        num_pes: int,
        config: CompressionConfig,
        layer: CompressedLayer,
    ) -> Path | None:
        """Serialize ``layer`` under its content address (atomic publish).

        Publishing is best-effort: the store is a cache, so an unwritable
        root, a full disk or a concurrently swept temp file must never take
        down the computation that produced the layer.  Any ``OSError`` is
        counted under ``errors`` and reported as ``None``; the caller keeps
        its freshly compressed layer either way.
        """
        key = self.layer_key(fingerprint, num_pes, config)
        try:
            return self._publish_layer(key, fingerprint, num_pes, config, layer)
        except OSError:
            self._count("layers", "errors")
            return None

    def _publish_layer(
        self,
        key: str,
        fingerprint: str,
        num_pes: int,
        config: CompressionConfig,
        layer: CompressedLayer,
    ) -> Path:
        per_pe = layer.storage.per_pe
        values = (
            np.concatenate([matrix.values for matrix in per_pe])
            if per_pe
            else np.empty(0, dtype=np.float64)
        )
        runs = (
            np.concatenate([matrix.runs for matrix in per_pe])
            if per_pe
            else np.empty(0, dtype=np.int64)
        )
        # The value stream holds codebook indices (integral, small); the run
        # stream is bounded by max_run.  Both downcast losslessly to uint16
        # in every real configuration, which keeps entries compact — float64
        # is the fallback for exotic configs, flagged by the saved dtype.
        if values.size == 0 or (
            layer.codebook.size <= 2**16
            and np.array_equal(values, values.astype(np.uint16))
        ):
            values = values.astype(np.uint16)
        if layer.storage.per_pe and max(m.max_run for m in per_pe) < 2**16:
            runs = runs.astype(np.uint16)
        col_ptrs = (
            np.stack([matrix.col_ptr for matrix in per_pe])
            if per_pe
            else np.zeros((0, layer.cols + 1), dtype=np.int64)
        )
        entries_per_pe = np.asarray(
            [matrix.num_entries for matrix in per_pe], dtype=np.int64
        )
        meta = {
            "format": FORMAT_VERSION,
            "key": key,
            "fingerprint": fingerprint,
            "num_pes": int(num_pes),
            "shape": [int(layer.rows), int(layer.cols)],
            "max_run": int(per_pe[0].max_run) if per_pe else int(config.max_run),
            "index_bits": int(layer.codebook.index_bits),
            "config": config.to_dict(),
            "metadata": dict(layer.metadata),
        }

        import io

        buffer = io.BytesIO()
        # Uncompressed: the streams are already downcast to compact
        # dtypes, and a warm hit must stay a fast mmap-friendly read
        # (zlib would cost seconds on a paper-scale layer).
        np.savez(
            buffer,
            meta=np.frombuffer(
                json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
            ),
            centroids=layer.codebook.centroids,
            values=values,
            runs=runs,
            col_ptrs=col_ptrs,
            entries_per_pe=entries_per_pe,
        )
        return self._publish_bytes("layers", key, buffer.getvalue())

    def load_layer(
        self,
        fingerprint: str,
        num_pes: int,
        config: CompressionConfig,
        name: str = "layer",
        activation_name: str = "relu",
    ) -> CompressedLayer | None:
        """Load a layer by content address, or ``None`` on miss/corruption.

        The payload is rebuilt through the validating
        :class:`~repro.compression.csc.CSCMatrix` /
        :class:`~repro.compression.csc.InterleavedCSC` /
        :class:`CompressedLayer` constructors, so any logically inconsistent
        entry (as well as any unreadable archive) is treated as corrupt:
        counted under ``errors``, deleted, and reported as a miss.
        """
        key = self.layer_key(fingerprint, num_pes, config)
        return self.load_layer_by_key(key, name=name, activation_name=activation_name)

    def load_layer_by_key(
        self, key: str, name: str = "layer", activation_name: str = "relu"
    ) -> CompressedLayer | None:
        """Load a layer directly by its content key (manifest-driven loads)."""
        path = self._layer_path(key)
        if not path.exists():
            self._count("layers", "misses")
            return None
        try:
            layer = self._read_layer(path, key, name, activation_name)
        except Exception:
            self._count("layers", "errors")
            self._count("layers", "misses")
            self._bump_lifetime(corrupt_entries=1)
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # read-only filesystem: leave the corrupt entry in place
            return None
        self._count("layers", "hits")
        self._touch(path)
        return layer

    def _read_layer(
        self, path: Path, key: str, name: str, activation_name: str
    ) -> CompressedLayer:
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            if meta.get("format") != FORMAT_VERSION or meta.get("key") != key:
                raise ValueError(f"store entry {path.name} has a stale or foreign key")
            centroids = np.asarray(archive["centroids"], dtype=np.float64)
            values = np.asarray(archive["values"], dtype=np.float64)
            runs = np.asarray(archive["runs"], dtype=np.int64)
            col_ptrs = np.asarray(archive["col_ptrs"], dtype=np.int64)
            entries_per_pe = np.asarray(archive["entries_per_pe"], dtype=np.int64)
        num_pes = int(meta["num_pes"])
        rows, cols = (int(side) for side in meta["shape"])
        max_run = int(meta["max_run"])
        if entries_per_pe.shape[0] != num_pes or col_ptrs.shape[0] != num_pes:
            raise ValueError(f"store entry {path.name} has inconsistent PE counts")
        if int(entries_per_pe.sum()) != values.shape[0]:
            raise ValueError(f"store entry {path.name} has truncated streams")
        boundaries = np.zeros(num_pes + 1, dtype=np.int64)
        np.cumsum(entries_per_pe, out=boundaries[1:])
        per_pe = [
            CSCMatrix(
                values=values[boundaries[pe]:boundaries[pe + 1]],
                runs=runs[boundaries[pe]:boundaries[pe + 1]],
                col_ptr=col_ptrs[pe],
                num_rows=_rows_owned_by(pe, rows, num_pes),
                num_cols=cols,
                max_run=max_run,
            )
            for pe in range(num_pes)
        ]
        storage = InterleavedCSC(
            per_pe=per_pe, num_rows=rows, num_cols=cols, num_pes=num_pes
        )
        codebook = WeightCodebook(
            centroids=centroids, index_bits=int(meta["index_bits"])
        )
        return CompressedLayer(
            name=name,
            shape=(rows, cols),
            codebook=codebook,
            storage=storage,
            num_pes=num_pes,
            activation_name=activation_name,
            metadata=dict(meta.get("metadata", {})),
        )

    # -- pin manifests ---------------------------------------------------------

    #: Pin manifests older than this are presumed abandoned and ignored.
    PIN_TTL_SECONDS = 3600.0

    def _pins_dir(self) -> Path:
        return self.root / "pins"

    def pin(self, name: str, paths: Iterable[Path | str]) -> Path | None:
        """Write an in-flight manifest protecting ``paths`` from eviction.

        ``name`` identifies the manifest (one per sharded run or merge);
        ``paths`` are store entry paths (absolute or root-relative).  Pins
        are advisory and time-bounded (:data:`PIN_TTL_SECONDS`): a crashed
        pinner cannot exempt entries from eviction forever.
        """
        relative = []
        for path in paths:
            path = Path(path)
            if path.is_absolute():
                try:
                    path = path.relative_to(self.root)
                except ValueError:
                    raise ConfigurationError(
                        f"pinned path {path} is outside the store root {self.root}"
                    ) from None
            relative.append(path.as_posix())
        document = {"created": time.time(), "paths": sorted(relative)}
        target = self._pins_dir() / f"{name}.json"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                dir=target.parent, prefix=f".{name}.", suffix=".tmp",
                delete=False, mode="w",
            )
            with handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(handle.name, target)
        except OSError:
            return None
        return target

    def unpin(self, name: str) -> None:
        """Remove the pin manifest ``name`` (missing manifests are fine)."""
        try:
            (self._pins_dir() / f"{name}.json").unlink(missing_ok=True)
        except OSError:
            pass

    @contextlib.contextmanager
    def pinned(self, name: str, paths: Iterable[Path | str]) -> Iterator[None]:
        """Context manager: pin ``paths`` for the duration of the block."""
        self.pin(name, paths)
        try:
            yield
        finally:
            self.unpin(name)

    def pinned_paths(self) -> set[Path]:
        """Absolute paths protected by live (non-expired) pin manifests."""
        pins = self._pins_dir()
        if not pins.is_dir():
            return set()
        protected: set[Path] = set()
        now = time.time()
        for manifest in pins.glob("*.json"):
            try:
                document = json.loads(manifest.read_text())
                created = float(document.get("created", 0.0))
                paths = document.get("paths", [])
            except (OSError, ValueError):
                continue
            if now - created > self.PIN_TTL_SECONDS:
                continue
            for entry in paths:
                if isinstance(entry, str):
                    protected.add(self.root / entry)
        return protected

    # -- eviction --------------------------------------------------------------

    def evict_to_budget(self, budget_bytes: int | None = None) -> int:
        """Evict least-recently-used unpinned entries down to the budget.

        Returns how many entries were removed.  A ``None`` budget (and no
        configured ``size_budget_bytes``) is a no-op.  Recency is the entry
        file's mtime — every load refreshes it — so the oldest *unused*
        entries go first; pinned entries (and entries that vanish
        concurrently) are skipped.  Each unlink is atomic and counted, so a
        reader that already opened the file keeps its snapshot and a
        concurrent loader sees a clean miss.
        """
        budget = self.size_budget_bytes if budget_bytes is None else budget_bytes
        if budget is None:
            return 0
        entries: list[tuple[float, Path, int, str]] = []
        total = 0
        for kind in self.KINDS:
            directory = self.root / kind
            if not directory.is_dir():
                continue
            for path in directory.glob(f"*{self._SUFFIX[kind]}"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, path, stat.st_size, kind))
                total += stat.st_size
        if total <= budget:
            return 0
        pinned = self.pinned_paths()
        removed = 0
        for _mtime, path, size, kind in sorted(entries, key=lambda e: (e[0], str(e[1]))):
            if total <= budget:
                break
            if path in pinned:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            self._count(kind, "evictions")
        if removed:
            self._bump_lifetime(evicted_entries=removed)
        return removed

    # -- maintenance / introspection -------------------------------------------

    def entries(self, kind: str | None = None) -> list[Path]:
        """Paths of every published store entry (optionally of one kind)."""
        kinds = self.KINDS if kind is None else (kind,)
        found: list[Path] = []
        for which in kinds:
            directory = self._kind_dir(which)
            if directory.is_dir():
                found.extend(directory.glob(f"*{self._SUFFIX[which]}"))
        return sorted(found)

    def size_bytes(self) -> int:
        """Total bytes held by published entries."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    #: Temp files younger than this are presumed in-flight and left alone.
    STALE_TMP_SECONDS = 3600.0

    #: Lifetime counter names persisted in ``<root>/counters.json``.
    LIFETIME_COUNTERS = (
        "stored_entries", "corrupt_entries", "swept_tmp_files", "evicted_entries",
    )

    def sweep_stale_tmp(self, max_age_s: float | None = None) -> int:
        """Delete abandoned ``.tmp`` files; returns how many were removed.

        Temp files are only swept when they are clearly abandoned (older
        than ``max_age_s``, default :data:`STALE_TMP_SECONDS`): a fresh
        ``.tmp`` may belong to a writer mid-publish in another process, and
        deleting it would make that writer's atomic rename fail.  Expired
        pin manifests are collected on the same pass.  Runs opportunistically
        on each handle's first publish and on demand via ``repro cache
        sweep``.
        """
        max_age = self.STALE_TMP_SECONDS if max_age_s is None else float(max_age_s)
        removed = 0
        now = time.time()
        for kind in self.KINDS:
            directory = self.root / kind
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                if path.suffix != ".tmp":
                    continue
                try:
                    abandoned = now - path.stat().st_mtime > max_age
                except OSError:
                    continue
                if abandoned:
                    try:
                        path.unlink(missing_ok=True)
                    except OSError:
                        continue
                    removed += 1
        pins = self._pins_dir()
        if pins.is_dir():
            for manifest in pins.iterdir():
                try:
                    expired = now - manifest.stat().st_mtime > self.PIN_TTL_SECONDS
                except OSError:
                    continue
                if expired or manifest.suffix == ".tmp":
                    try:
                        manifest.unlink(missing_ok=True)
                    except OSError:
                        continue
        if removed:
            self._bump_lifetime(swept_tmp_files=removed)
        return removed

    def clear(self, kind: str | None = None) -> int:
        """Delete every entry (and stale temp files); returns entries removed."""
        removed = 0
        for path in self.entries(kind):
            path.unlink(missing_ok=True)
            removed += 1
        self.sweep_stale_tmp()
        return removed

    def stats(self) -> dict[str, Any]:
        """Counters for this process's store handle.

        The aggregate ``hits``/``misses``/``stores``/``errors``/``evictions``
        keys sum over every artifact kind; ``by_kind`` breaks the same
        counters down per kind (layers vs prepared vs models vs shards), so
        a sharded run can show *where* the store saved work.
        """
        aggregate = dict.fromkeys(self.COUNTERS, 0)
        for counters in self._stats.values():
            for name, value in counters.items():
                aggregate[name] += value
        aggregate["by_kind"] = {
            kind: dict(counters) for kind, counters in self._stats.items()
        }
        return aggregate

    @classmethod
    def zero_stats(cls) -> dict[str, Any]:
        """The all-zero shape of :meth:`stats` (sessions without a store)."""
        zero = dict.fromkeys(cls.COUNTERS, 0)
        zero["by_kind"] = {
            kind: dict.fromkeys(cls.COUNTERS, 0) for kind in cls.KINDS
        }
        return zero

    def _bump_lifetime(self, **deltas: int) -> None:
        """Best-effort read-modify-write of the persistent counters.

        The counters are diagnostics, not bookkeeping the cache depends on:
        a concurrent bump may be lost and an unwritable root is ignored, but
        the file itself is always published atomically so it never reads as
        half-written JSON.
        """
        path = self.root / "counters.json"
        counters = self.lifetime_counters()
        for name, delta in deltas.items():
            counters[name] = counters.get(name, 0) + int(delta)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                dir=self.root, prefix=".counters.", suffix=".json",
                delete=False, mode="w",
            )
            with handle:
                json.dump(counters, handle, sort_keys=True)
            os.replace(handle.name, path)
        except OSError:
            pass

    def lifetime_counters(self) -> dict[str, int]:
        """Machine-lifetime counters persisted across processes.

        ``stored_entries`` counts every publish (first computations and
        post-corruption recomputes alike), ``corrupt_entries`` every entry
        rejected and deleted on load, ``swept_tmp_files`` every orphaned
        temp file collected, ``evicted_entries`` every entry removed by the
        size-budget LRU policy.
        """
        counters = dict.fromkeys(self.LIFETIME_COUNTERS, 0)
        try:
            data = json.loads((self.root / "counters.json").read_text())
        except (OSError, ValueError):
            return counters
        if isinstance(data, dict):
            for name, value in data.items():
                if isinstance(value, int):
                    counters[name] = value
        return counters

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly summary (CLI ``cache info``)."""
        by_kind = {}
        total_entries = 0
        total_bytes = 0
        for kind in self.KINDS:
            paths = self.entries(kind)
            size = 0
            for path in paths:
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
            by_kind[kind] = {"entries": len(paths), "size_bytes": size}
            total_entries += len(paths)
            total_bytes += size
        return {
            "root": str(self.root),
            "entries": total_entries,
            "size_bytes": total_bytes,
            "size_budget_bytes": self.size_budget_bytes,
            "kinds": by_kind,
            "format": FORMAT_VERSION,
            **self.stats(),
            "lifetime": self.lifetime_counters(),
        }
