"""Content-addressed on-disk store for compression artifacts.

Deep Compression dominates the wall-clock of every whole-model flow, and its
output depends only on three things: the dense weight matrix (captured by
:func:`~repro.compression.pipeline.weights_fingerprint`), the
:class:`~repro.compression.pipeline.CompressionConfig`, and the PE count the
result is interleaved over.  The :class:`ArtifactStore` keys one ``.npz``
file per distinct triple, so a layer is compressed **once per machine**
instead of once per process: every later
:meth:`~repro.engine.session.Session.compress` — across experiment runs, CLI
invocations, process-pool workers and CI steps — becomes a load.

Guarantees:

* **Bit-identical round trips.**  The serialized payload is the exact
  codebook and per-PE CSC streams; loading rebuilds the layer through the
  *validating* constructors, so ``storage_bits``, ``to_dense`` and the per-PE
  streams are equal to the freshly compressed layer's.
* **Never half-loaded.**  Writes go to a temporary file in the store
  directory and are published with one atomic :func:`os.replace`; readers can
  never observe a partially written entry.  Corrupt or truncated entries
  (zip CRC failures, invalid stream invariants, key/format mismatches) are
  detected on load, counted in :meth:`ArtifactStore.stats`, deleted, and
  reported as a miss — the caller recompresses and overwrites.
* **Concurrency-safe.**  Multiple processes may load and store the same key
  simultaneously; last-writer-wins on identical content is harmless because
  entries are content-addressed.

The store root defaults to ``$REPRO_STORE_DIR``, falling back to
``$XDG_CACHE_HOME/repro-eie/artifacts`` (``~/.cache/repro-eie/artifacts``).
Setting ``REPRO_STORE=0`` disables the default store everywhere it is wired
up implicitly (the CLI and the experiment runner); explicitly constructed
stores are unaffected.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.compression.csc import CSCMatrix, InterleavedCSC, _rows_owned_by
from repro.compression.pipeline import CompressedLayer, CompressionConfig
from repro.compression.quantization import WeightCodebook
from repro.errors import ConfigurationError

__all__ = [
    "ArtifactStore",
    "default_store_root",
    "maybe_default_store",
    "store_enabled",
]

#: On-disk payload format; bumped on any incompatible serialization change.
FORMAT_VERSION = 1

#: Environment variable overriding the default store root directory.
ENV_ROOT = "REPRO_STORE_DIR"

#: Environment variable disabling the implicit default store (``0``/``false``).
ENV_ENABLED = "REPRO_STORE"


def default_store_root() -> Path:
    """The machine-wide store root (``$REPRO_STORE_DIR`` or the user cache)."""
    override = os.environ.get(ENV_ROOT)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-eie" / "artifacts"


def store_enabled() -> bool:
    """Whether the implicit default store is enabled (``REPRO_STORE`` gate)."""
    return os.environ.get(ENV_ENABLED, "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def maybe_default_store() -> "ArtifactStore | None":
    """The default :class:`ArtifactStore`, or ``None`` when disabled."""
    return ArtifactStore(default_store_root()) if store_enabled() else None


class ArtifactStore:
    """A content-addressed cache of :class:`CompressedLayer` payloads.

    Args:
        root: store directory (created lazily on the first write).
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self._stats = {"hits": 0, "misses": 0, "stores": 0, "errors": 0}
        self._swept = False

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def layer_key(
        fingerprint: str, num_pes: int, config: CompressionConfig
    ) -> str:
        """Content address of one compressed layer.

        The key covers exactly the inputs that shape the compressed form:
        the dense matrix's content fingerprint, the PE count, the full
        compression configuration, and the payload format version (so a
        format bump invalidates every old entry instead of misreading it).
        The layer's *name* and *activation* are presentation metadata and
        deliberately excluded — they are reapplied by the loader.
        """
        if num_pes < 1:
            raise ConfigurationError(f"num_pes must be >= 1, got {num_pes}")
        payload = json.dumps(
            {
                "fingerprint": fingerprint,
                "num_pes": int(num_pes),
                "config": config.to_dict(),
                "format": FORMAT_VERSION,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _layer_path(self, key: str) -> Path:
        return self.root / "layers" / f"{key}.npz"

    # -- store / load ----------------------------------------------------------

    def store_layer(
        self,
        fingerprint: str,
        num_pes: int,
        config: CompressionConfig,
        layer: CompressedLayer,
    ) -> Path | None:
        """Serialize ``layer`` under its content address (atomic publish).

        Publishing is best-effort: the store is a cache, so an unwritable
        root, a full disk or a concurrently swept temp file must never take
        down the computation that produced the layer.  Any ``OSError`` is
        counted under ``errors`` and reported as ``None``; the caller keeps
        its freshly compressed layer either way.
        """
        if not self._swept:
            # One opportunistic pass per handle: the first write is the
            # natural moment to collect .tmp files orphaned by crashed
            # writers (a sweep on every store would just churn the directory).
            self._swept = True
            self.sweep_stale_tmp()
        key = self.layer_key(fingerprint, num_pes, config)
        path = self._layer_path(key)
        try:
            return self._publish_layer(key, path, fingerprint, num_pes, config, layer)
        except OSError:
            self._stats["errors"] += 1
            return None

    def _publish_layer(
        self,
        key: str,
        path: Path,
        fingerprint: str,
        num_pes: int,
        config: CompressionConfig,
        layer: CompressedLayer,
    ) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)

        per_pe = layer.storage.per_pe
        values = (
            np.concatenate([matrix.values for matrix in per_pe])
            if per_pe
            else np.empty(0, dtype=np.float64)
        )
        runs = (
            np.concatenate([matrix.runs for matrix in per_pe])
            if per_pe
            else np.empty(0, dtype=np.int64)
        )
        # The value stream holds codebook indices (integral, small); the run
        # stream is bounded by max_run.  Both downcast losslessly to uint16
        # in every real configuration, which keeps entries compact — float64
        # is the fallback for exotic configs, flagged by the saved dtype.
        if values.size == 0 or (
            layer.codebook.size <= 2**16
            and np.array_equal(values, values.astype(np.uint16))
        ):
            values = values.astype(np.uint16)
        if layer.storage.per_pe and max(m.max_run for m in per_pe) < 2**16:
            runs = runs.astype(np.uint16)
        col_ptrs = (
            np.stack([matrix.col_ptr for matrix in per_pe])
            if per_pe
            else np.zeros((0, layer.cols + 1), dtype=np.int64)
        )
        entries_per_pe = np.asarray(
            [matrix.num_entries for matrix in per_pe], dtype=np.int64
        )
        meta = {
            "format": FORMAT_VERSION,
            "key": key,
            "fingerprint": fingerprint,
            "num_pes": int(num_pes),
            "shape": [int(layer.rows), int(layer.cols)],
            "max_run": int(per_pe[0].max_run) if per_pe else int(config.max_run),
            "index_bits": int(layer.codebook.index_bits),
            "config": config.to_dict(),
            "metadata": dict(layer.metadata),
        }

        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=f".{key}.", suffix=".tmp", delete=False
        )
        try:
            with handle:
                # Uncompressed: the streams are already downcast to compact
                # dtypes, and a warm hit must stay a fast mmap-friendly read
                # (zlib would cost seconds on a paper-scale layer).
                np.savez(
                    handle,
                    meta=np.frombuffer(
                        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
                    ),
                    centroids=layer.codebook.centroids,
                    values=values,
                    runs=runs,
                    col_ptrs=col_ptrs,
                    entries_per_pe=entries_per_pe,
                )
            os.replace(handle.name, path)
        except BaseException:
            Path(handle.name).unlink(missing_ok=True)
            raise
        self._stats["stores"] += 1
        self._bump_lifetime(stored_entries=1)
        return path

    def load_layer(
        self,
        fingerprint: str,
        num_pes: int,
        config: CompressionConfig,
        name: str = "layer",
        activation_name: str = "relu",
    ) -> CompressedLayer | None:
        """Load a layer by content address, or ``None`` on miss/corruption.

        The payload is rebuilt through the validating
        :class:`~repro.compression.csc.CSCMatrix` /
        :class:`~repro.compression.csc.InterleavedCSC` /
        :class:`CompressedLayer` constructors, so any logically inconsistent
        entry (as well as any unreadable archive) is treated as corrupt:
        counted under ``errors``, deleted, and reported as a miss.
        """
        key = self.layer_key(fingerprint, num_pes, config)
        path = self._layer_path(key)
        if not path.exists():
            self._stats["misses"] += 1
            return None
        try:
            layer = self._read_layer(path, key, name, activation_name)
        except Exception:
            self._stats["errors"] += 1
            self._stats["misses"] += 1
            self._bump_lifetime(corrupt_entries=1)
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # read-only filesystem: leave the corrupt entry in place
            return None
        self._stats["hits"] += 1
        return layer

    def _read_layer(
        self, path: Path, key: str, name: str, activation_name: str
    ) -> CompressedLayer:
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            if meta.get("format") != FORMAT_VERSION or meta.get("key") != key:
                raise ValueError(f"store entry {path.name} has a stale or foreign key")
            centroids = np.asarray(archive["centroids"], dtype=np.float64)
            values = np.asarray(archive["values"], dtype=np.float64)
            runs = np.asarray(archive["runs"], dtype=np.int64)
            col_ptrs = np.asarray(archive["col_ptrs"], dtype=np.int64)
            entries_per_pe = np.asarray(archive["entries_per_pe"], dtype=np.int64)
        num_pes = int(meta["num_pes"])
        rows, cols = (int(side) for side in meta["shape"])
        max_run = int(meta["max_run"])
        if entries_per_pe.shape[0] != num_pes or col_ptrs.shape[0] != num_pes:
            raise ValueError(f"store entry {path.name} has inconsistent PE counts")
        if int(entries_per_pe.sum()) != values.shape[0]:
            raise ValueError(f"store entry {path.name} has truncated streams")
        boundaries = np.zeros(num_pes + 1, dtype=np.int64)
        np.cumsum(entries_per_pe, out=boundaries[1:])
        per_pe = [
            CSCMatrix(
                values=values[boundaries[pe]:boundaries[pe + 1]],
                runs=runs[boundaries[pe]:boundaries[pe + 1]],
                col_ptr=col_ptrs[pe],
                num_rows=_rows_owned_by(pe, rows, num_pes),
                num_cols=cols,
                max_run=max_run,
            )
            for pe in range(num_pes)
        ]
        storage = InterleavedCSC(
            per_pe=per_pe, num_rows=rows, num_cols=cols, num_pes=num_pes
        )
        codebook = WeightCodebook(
            centroids=centroids, index_bits=int(meta["index_bits"])
        )
        return CompressedLayer(
            name=name,
            shape=(rows, cols),
            codebook=codebook,
            storage=storage,
            num_pes=num_pes,
            activation_name=activation_name,
            metadata=dict(meta.get("metadata", {})),
        )

    # -- maintenance / introspection -------------------------------------------

    def entries(self) -> list[Path]:
        """Paths of every published store entry."""
        layers = self.root / "layers"
        if not layers.is_dir():
            return []
        return sorted(path for path in layers.glob("*.npz"))

    def size_bytes(self) -> int:
        """Total bytes held by published entries."""
        return sum(path.stat().st_size for path in self.entries())

    #: Temp files younger than this are presumed in-flight and left alone.
    STALE_TMP_SECONDS = 3600.0

    #: Lifetime counter names persisted in ``<root>/counters.json``.
    LIFETIME_COUNTERS = ("stored_entries", "corrupt_entries", "swept_tmp_files")

    def sweep_stale_tmp(self, max_age_s: float | None = None) -> int:
        """Delete abandoned ``.tmp`` files; returns how many were removed.

        Temp files are only swept when they are clearly abandoned (older
        than ``max_age_s``, default :data:`STALE_TMP_SECONDS`): a fresh
        ``.tmp`` may belong to a writer mid-publish in another process, and
        deleting it would make that writer's atomic rename fail.  Runs
        opportunistically on each handle's first :meth:`store_layer` and on
        demand via ``repro cache sweep``.
        """
        max_age = self.STALE_TMP_SECONDS if max_age_s is None else float(max_age_s)
        removed = 0
        layers = self.root / "layers"
        if layers.is_dir():
            now = time.time()
            for path in layers.iterdir():
                if path.suffix != ".tmp":
                    continue
                try:
                    abandoned = now - path.stat().st_mtime > max_age
                except OSError:
                    continue
                if abandoned:
                    try:
                        path.unlink(missing_ok=True)
                    except OSError:
                        continue
                    removed += 1
        if removed:
            self._bump_lifetime(swept_tmp_files=removed)
        return removed

    def clear(self) -> int:
        """Delete every entry (and stale temp files); returns entries removed."""
        removed = 0
        layers = self.root / "layers"
        if layers.is_dir():
            for path in layers.iterdir():
                if path.suffix == ".npz":
                    path.unlink(missing_ok=True)
                    removed += 1
        self.sweep_stale_tmp()
        return removed

    def stats(self) -> dict[str, int]:
        """Hit/miss/store/error counters for this process's store handle."""
        return dict(self._stats)

    def _bump_lifetime(self, **deltas: int) -> None:
        """Best-effort read-modify-write of the persistent counters.

        The counters are diagnostics, not bookkeeping the cache depends on:
        a concurrent bump may be lost and an unwritable root is ignored, but
        the file itself is always published atomically so it never reads as
        half-written JSON.
        """
        path = self.root / "counters.json"
        counters = self.lifetime_counters()
        for name, delta in deltas.items():
            counters[name] = counters.get(name, 0) + int(delta)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                dir=self.root, prefix=".counters.", suffix=".json",
                delete=False, mode="w",
            )
            with handle:
                json.dump(counters, handle, sort_keys=True)
            os.replace(handle.name, path)
        except OSError:
            pass

    def lifetime_counters(self) -> dict[str, int]:
        """Machine-lifetime counters persisted across processes.

        ``stored_entries`` counts every publish (first compressions and
        post-corruption recompressions alike), ``corrupt_entries`` every
        entry rejected and deleted on load, ``swept_tmp_files`` every
        orphaned temp file collected.
        """
        counters = dict.fromkeys(self.LIFETIME_COUNTERS, 0)
        try:
            data = json.loads((self.root / "counters.json").read_text())
        except (OSError, ValueError):
            return counters
        if isinstance(data, dict):
            for name, value in data.items():
                if isinstance(value, int):
                    counters[name] = value
        return counters

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly summary (CLI ``cache info``)."""
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "size_bytes": sum(path.stat().st_size for path in entries),
            "format": FORMAT_VERSION,
            **self.stats(),
            "lifetime": self.lifetime_counters(),
        }
