"""The async EIE inference server: warm session, dynamic batching, drain.

The EIE paper's deployment story is latency-sensitive batch-1 inference:
each user request is one activation vector.  One vector at a time leaves
the vectorized ``(batch, n_in)`` engine path (and the node pipeline) idle,
so :class:`Server` coalesces concurrent single-vector requests per model —
up to ``max_batch`` of them, waiting at most ``max_wait_us`` for stragglers
— and dispatches the stacked matrix through the same
``Session.run_model``/:class:`~repro.serve.pipeline.ModelPipeline` path the
offline experiments use.  Because model propagation reduces row by row
(see :func:`repro.engine.session._propagate_rows`), the response a request
receives is bit-identical to what an offline batch-1 ``run_model`` call on
the same vector would produce, no matter which requests it was batched
with.

Flow control is explicit: each model has a bounded request queue; when it
is full, :meth:`submit` raises
:class:`~repro.errors.ServerOverloadedError` carrying a ``retry_after_s``
estimate derived from the queue depth and the smoothed per-request service
time, instead of letting latency grow without bound.  :meth:`close` drains:
queued requests are still served, new ones are rejected with
:class:`~repro.errors.ServerClosedError`.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.compression.pipeline import CompressionConfig
from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.hardware.area import chip_power_w
from repro.serve.pipeline import ModelPipeline

__all__ = ["BatchPolicy", "ServeResponse", "Server"]


@dataclass(frozen=True)
class BatchPolicy:
    """Dynamic-batching knobs, per model.

    Attributes:
        max_batch: largest coalesced batch one dispatch may carry.
        max_wait_us: how long a non-full batch waits for stragglers after
            its first request arrives (0 disables waiting: every dispatch
            carries whatever is already queued).
        queue_depth: bound on requests queued per model; arrivals beyond it
            are rejected with :class:`ServerOverloadedError`.
    """

    max_batch: int = 16
    max_wait_us: float = 1000.0
    queue_depth: int = 256

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ConfigurationError(
                f"max_wait_us must be >= 0, got {self.max_wait_us}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )


@dataclass(frozen=True)
class ServeResponse:
    """One request's answer.

    Attributes:
        model: model that served the request.
        output: the network output vector for this request's input.
        batch_size: how many requests shared the dispatch (observability:
            did batching actually happen?).
        total_cycles: this item's simulated cycles summed over nodes
            (``None`` on engines without timing).
        latency_s: this item's simulated network latency in seconds.
        energy_j: this item's simulated energy in joules.
        queue_wait_s: wall-clock time the request spent queued before its
            batch dispatched.
        service_s: wall-clock time the dispatch took (shared by the batch).
    """

    model: str
    output: np.ndarray
    batch_size: int
    total_cycles: int | None
    latency_s: float | None
    energy_j: float | None
    queue_wait_s: float
    service_s: float


class _PendingRequest:
    __slots__ = ("vector", "future", "enqueued_at", "deadline_at")

    def __init__(
        self,
        vector: np.ndarray,
        future: asyncio.Future,
        deadline_s: float | None = None,
    ) -> None:
        self.vector = vector
        self.future = future
        self.enqueued_at = time.perf_counter()
        # Deadlines cross the wire *relative* (seconds from receipt), so two
        # processes never need synchronized clocks; anchor to the local
        # monotonic clock on arrival.
        self.deadline_at = (
            None if deadline_s is None else self.enqueued_at + deadline_s
        )


_SHUTDOWN = object()


class _ModelState:
    """Everything the server holds per served model."""

    def __init__(
        self,
        ir: Any,
        compressed: Any,
        policy: BatchPolicy,
        spec: dict[str, Any] | None = None,
    ) -> None:
        self.ir = ir
        self.compressed = compressed
        self.policy = policy
        self.spec = spec
        self.queue: asyncio.Queue = asyncio.Queue()
        self.pipeline: ModelPipeline | None = None
        self.batcher: asyncio.Task | None = None
        # EMA of per-request service seconds, seeding retry-after estimates.
        self.ema_item_s = 0.0
        self.stats = {
            "received": 0,
            "served": 0,
            "rejected": 0,
            "expired": 0,
            "errors": 0,
            "batches": 0,
            "max_batch": 0,
            "queue_peak": 0,
        }


class Server:
    """A long-lived in-process EIE inference service.

    Args:
        models: what to serve — registry names, :class:`ModelSpec` instances
            or prebuilt :class:`ModelIR` graphs.  Every model is compressed
            at :meth:`start`, before the first request.
        engine: engine registry name requests run on (default ``"cycle"``).
        config: accelerator configuration (PE count, FIFO depth, clock).
        compression: Deep Compression parameters for startup compression.
        policy: dynamic-batching policy applied to every model.
        store: optional :class:`~repro.store.artifacts.ArtifactStore` so a
            restart re-loads compressed layers instead of recompressing.
        pipeline: when true (default), whole-model dispatches flow through a
            per-model :class:`ModelPipeline`, overlapping node N of batch k
            with node N+1 of batch k−1; when false they run as plain
            ``Session.run_model`` calls in a worker thread.  Both paths are
            bit-identical.

    Use as an async context manager, or call :meth:`start`/:meth:`close`::

        async with Server(["neuraltalk_lstm"], config=EIEConfig(num_pes=16)) as srv:
            response = await srv.submit("neuraltalk_lstm", vector)
    """

    def __init__(
        self,
        models: list[Any],
        engine: str = "cycle",
        config: EIEConfig | None = None,
        compression: CompressionConfig | None = None,
        policy: BatchPolicy | None = None,
        store: Any | None = None,
        pipeline: bool = True,
        chaos: bool = False,
    ) -> None:
        if not models:
            raise ConfigurationError("a server needs at least one model to serve")
        self._model_inputs = list(models)
        self.engine_name = engine
        self.config = config or EIEConfig()
        self.compression = compression or CompressionConfig()
        self.policy = policy or BatchPolicy()
        self.session = Session(
            compression=self.compression, config=self.config, store=store
        )
        self.use_pipeline = pipeline
        self._models: dict[str, _ModelState] = {}
        self._started = False
        self._closing = False
        self._closed = False
        self._started_at: float | None = None
        # Chaos hooks (latency injection) are off unless explicitly enabled:
        # a production daemon must not let a client slow it down.
        self.chaos_enabled = bool(chaos)
        self._chaos_latency_s = 0.0
        self._chaos_until = 0.0
        # run_model/pipeline dispatches run here so the event loop stays free.
        self._executor = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="repro-serve-dispatch"
        )

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> "Server":
        """Build + compress every model (off the event loop), start batchers."""
        if self._started:
            raise ServeError("server is already started")
        self._started = True
        self._started_at = time.monotonic()
        loop = asyncio.get_running_loop()
        built = await asyncio.gather(
            *(
                loop.run_in_executor(self._executor, self._build_ir, entry)
                for entry in self._model_inputs
            )
        )
        for ir, spec in built:
            if ir.name in self._models:
                raise ConfigurationError(f"duplicate served model {ir.name!r}")
            compressed = await loop.run_in_executor(
                self._executor, self.session.compress_model, ir, self.config.num_pes
            )
            state = _ModelState(ir, compressed, self.policy, spec=spec)
            if self.use_pipeline:
                state.pipeline = ModelPipeline(
                    compressed, engine=self.engine_name, config=self.config
                )
            state.batcher = asyncio.create_task(
                self._batcher_loop(state), name=f"repro-serve-batcher-{ir.name}"
            )
            self._models[ir.name] = state
        return self

    def _build_ir(self, entry: Any) -> tuple[Any, dict[str, Any] | None]:
        """Resolve one ``models`` entry to ``(ModelIR, rebuild spec | None)``.

        The spec (when the entry came through the registry) is exposed via
        :meth:`describe` so a remote benchmark client can rebuild the exact
        same network offline and verify responses bit for bit.
        """
        from repro.models.ir import ModelIR
        from repro.models.registry import ModelRegistry
        from repro.models.spec import ModelSpec

        if isinstance(entry, ModelIR):
            return entry, None
        if isinstance(entry, str):
            entry = ModelSpec(model=entry)
        return ModelRegistry.build(entry), entry.to_dict()

    async def close(self, drain: bool = True) -> dict[str, Any]:
        """Stop the server; returns the final :meth:`stats` snapshot.

        With ``drain=True`` (the default, and what SIGTERM does) every
        already-accepted request is still served before the batchers stop;
        only *new* submissions are rejected.  With ``drain=False`` queued
        requests fail with :class:`ServerClosedError`.
        """
        if self._closed:
            return self.stats()
        self._closing = True
        for state in self._models.values():
            if not drain:
                # Fail queued requests instead of serving them.
                while True:
                    try:
                        pending = state.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if pending is not _SHUTDOWN and not pending.future.done():
                        pending.future.set_exception(
                            ServerClosedError("server closed before the request ran")
                        )
            state.queue.put_nowait(_SHUTDOWN)
        batchers = [
            state.batcher for state in self._models.values() if state.batcher
        ]
        if batchers:
            await asyncio.gather(*batchers)
        loop = asyncio.get_running_loop()
        for state in self._models.values():
            if state.pipeline is not None:
                await loop.run_in_executor(self._executor, state.pipeline.close)
        self._executor.shutdown(wait=True)
        self._closed = True
        return self.stats()

    async def __aenter__(self) -> "Server":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- request path ------------------------------------------------------------

    async def submit(
        self, model: str, vector: np.ndarray, deadline_s: float | None = None
    ) -> ServeResponse:
        """Serve one input vector; resolves when its batch has run.

        ``deadline_s`` is the request's relative deadline: if it expires
        while the request is still queued, the request fails with
        :class:`DeadlineExceededError` *without being computed* — doomed
        work is shed before it wastes a dispatch slot.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ServeError(f"deadline_s must be positive or None, got {deadline_s}")
        if self._closing or self._closed:
            raise ServerClosedError("server is shutting down")
        if not self._started:
            raise ServeError("server is not started (use `async with Server(...)`)")
        state = self._models.get(model)
        if state is None:
            raise ServeError(
                f"model {model!r} is not served "
                f"(serving: {', '.join(sorted(self._models))})"
            )
        row = np.ascontiguousarray(np.asarray(vector, dtype=np.float64))
        if row.ndim != 1 or row.shape[0] != state.ir.input_size:
            raise ServeError(
                f"request for {model!r} must be one vector of length "
                f"{state.ir.input_size}, got shape {row.shape}"
            )
        if state.queue.qsize() >= state.policy.queue_depth:
            state.stats["rejected"] += 1
            retry_after = max(state.queue.qsize() * state.ema_item_s, 1e-3)
            raise ServerOverloadedError(
                f"model {model!r} queue is full "
                f"({state.queue.qsize()}/{state.policy.queue_depth})",
                retry_after_s=retry_after,
            )
        state.stats["received"] += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        state.queue.put_nowait(_PendingRequest(row, future, deadline_s=deadline_s))
        state.stats["queue_peak"] = max(state.stats["queue_peak"], state.queue.qsize())
        return await future

    async def _batcher_loop(self, state: _ModelState) -> None:
        """Coalesce queued requests into batches and dispatch them."""
        wait_s = state.policy.max_wait_us * 1e-6
        while True:
            first = await state.queue.get()
            if first is _SHUTDOWN:
                return
            batch = [first]
            deadline = time.perf_counter() + wait_s
            shutdown = False
            while len(batch) < state.policy.max_batch:
                try:
                    item = state.queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(state.queue.get(), remaining)
                    except asyncio.TimeoutError:
                        break
                if item is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(item)
            await self._dispatch(state, batch)
            if shutdown:
                # Serve whatever is still queued (drain), then stop.
                tail: list[_PendingRequest] = []
                while True:
                    try:
                        item = state.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if item is not _SHUTDOWN:
                        tail.append(item)
                for start in range(0, len(tail), state.policy.max_batch):
                    await self._dispatch(
                        state, tail[start : start + state.policy.max_batch]
                    )
                return

    def _shed_expired(
        self, state: _ModelState, batch: list[_PendingRequest]
    ) -> list[_PendingRequest]:
        """Fail queued requests whose deadline passed; return the live rest."""
        now = time.perf_counter()
        live: list[_PendingRequest] = []
        for pending in batch:
            if pending.deadline_at is not None and now >= pending.deadline_at:
                state.stats["expired"] += 1
                if not pending.future.done():
                    pending.future.set_exception(
                        DeadlineExceededError(
                            f"request for {state.ir.name!r} expired after "
                            f"{now - pending.enqueued_at:.3f}s in queue",
                            deadline_s=pending.deadline_at - pending.enqueued_at,
                        )
                    )
            else:
                live.append(pending)
        return live

    async def _dispatch(self, state: _ModelState, batch: list[_PendingRequest]) -> None:
        """Run one coalesced batch and resolve its futures."""
        if self.chaos_enabled and self._chaos_latency_s > 0:
            if time.monotonic() < self._chaos_until:
                # Injected stall: the whole dispatch slot sleeps, so queues
                # build up exactly as they would behind a slow worker.
                await asyncio.sleep(self._chaos_latency_s)
            else:
                self._chaos_latency_s = 0.0
        batch = self._shed_expired(state, batch)
        if not batch:
            return
        loop = asyncio.get_running_loop()
        matrix = np.stack([pending.vector for pending in batch])
        started = time.perf_counter()
        try:
            if state.pipeline is not None:
                run = await asyncio.wrap_future(
                    state.pipeline.submit(matrix, batched=True)
                )
            else:
                run = await loop.run_in_executor(
                    self._executor,
                    self.session.run_model,
                    self.engine_name,
                    state.compressed,
                    matrix,
                    self.config,
                )
        except BaseException as exc:
            state.stats["errors"] += len(batch)
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(
                        ServeError(f"dispatch failed for {state.ir.name!r}: {exc}")
                    )
            return
        service_s = time.perf_counter() - started
        ema_item = service_s / len(batch)
        state.ema_item_s = (
            ema_item
            if state.ema_item_s == 0.0
            else 0.8 * state.ema_item_s + 0.2 * ema_item
        )
        state.stats["served"] += len(batch)
        state.stats["batches"] += 1
        state.stats["max_batch"] = max(state.stats["max_batch"], len(batch))

        if run.has_timing:
            per_item_latency = run.per_item_latency_s
            power_w = chip_power_w(self.config.num_pes)
            per_item_cycles = np.zeros(len(batch), dtype=np.int64)
            for record in run.nodes:
                per_item_cycles += np.asarray(
                    [stats.total_cycles for stats in record.result.cycles],
                    dtype=np.int64,
                )
        done_at = time.perf_counter()
        for index, pending in enumerate(batch):
            if pending.future.done():
                continue
            if run.has_timing:
                cycles = int(per_item_cycles[index])
                latency = float(per_item_latency[index])
                energy = latency * power_w
            else:
                cycles = latency = energy = None
            pending.future.set_result(
                ServeResponse(
                    model=state.ir.name,
                    output=run.outputs[index],
                    batch_size=len(batch),
                    total_cycles=cycles,
                    latency_s=latency,
                    energy_j=energy,
                    queue_wait_s=started - pending.enqueued_at,
                    service_s=done_at - started,
                )
            )

    # -- introspection -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """A cheap liveness/readiness snapshot (the ``health`` wire verb).

        Small on purpose: the fleet supervisor polls this every heartbeat
        interval, so it must not touch model state or the dispatch path.
        """
        served = rejected = queued = 0
        for state in self._models.values():
            served += state.stats["served"]
            rejected += state.stats["rejected"]
            queued += state.queue.qsize()
        return {
            "ok": self._started and not self._closing and not self._closed,
            "pid": os.getpid(),
            "models": sorted(self._models),
            "engine": self.engine_name,
            "queue_depth": queued,
            "served": served,
            "rejected": rejected,
            "uptime_s": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "draining": self._closing and not self._closed,
            "chaos": self.chaos_enabled,
        }

    def inject_chaos(self, latency_s: float, duration_s: float) -> dict[str, Any]:
        """Stall every dispatch by ``latency_s`` for the next ``duration_s``.

        Only honoured when the server was built with ``chaos=True`` (the
        daemon's ``--chaos`` flag); the chaos harness uses this to make a
        worker *slow* rather than dead, which is the harder failure for a
        failover client to get right.
        """
        if not self.chaos_enabled:
            raise ServeError("chaos injection is disabled (start with chaos=True)")
        if latency_s < 0 or duration_s < 0:
            raise ServeError("chaos latency_s and duration_s must be >= 0")
        self._chaos_latency_s = float(latency_s)
        self._chaos_until = time.monotonic() + float(duration_s)
        return {"latency_s": self._chaos_latency_s, "duration_s": float(duration_s)}

    @property
    def models(self) -> list[str]:
        """Names of the served models (available after :meth:`start`)."""
        return sorted(self._models)

    def describe(self, model: str) -> dict[str, Any]:
        """A JSON-friendly description of one served model (protocol payload)."""
        state = self._models.get(model)
        if state is None:
            raise ServeError(f"model {model!r} is not served")
        return {
            "model": model,
            "input_size": state.ir.input_size,
            "output_size": state.ir.output_size,
            "num_nodes": state.ir.num_nodes,
            "engine": self.engine_name,
            "num_pes": self.config.num_pes,
            "fifo_depth": self.config.fifo_depth,
            "pipeline": state.pipeline is not None,
            "spec": state.spec,
            "compression": self.compression.to_dict(),
            "policy": {
                "max_batch": state.policy.max_batch,
                "max_wait_us": state.policy.max_wait_us,
                "queue_depth": state.policy.queue_depth,
            },
        }

    def stats(self) -> dict[str, Any]:
        """Per-model served/rejected/batch counters plus cache info."""
        return {
            "engine": self.engine_name,
            "num_pes": self.config.num_pes,
            "closing": self._closing,
            "models": {
                name: {
                    **state.stats,
                    "queued": state.queue.qsize(),
                    "ema_item_s": state.ema_item_s,
                    "mean_batch": (
                        state.stats["served"] / state.stats["batches"]
                        if state.stats["batches"]
                        else 0.0
                    ),
                }
                for name, state in self._models.items()
            },
        }
