"""repro.serve: the async EIE inference service.

The fourth seam of the library (after :mod:`repro.engine`,
:mod:`repro.experiments` and :mod:`repro.models`): a long-lived server that
turns concurrent single-vector requests — the EIE paper's latency-sensitive
batch-1 datacenter workload — into the batched ``(batch, n_in)`` path the
cycle engine vectorizes, without changing a single answer bit.

* :class:`Server` / :class:`BatchPolicy` / :class:`ServeResponse` — warm
  :class:`~repro.engine.session.Session`, models pre-compressed at startup,
  per-model dynamic batching with admission control and graceful drain
  (:mod:`repro.serve.server`);
* :class:`ModelPipeline` — node-pipelined whole-model execution across
  per-stage engine sessions (:mod:`repro.serve.pipeline`);
* :func:`run_open_loop` / :func:`run_closed_loop` / :class:`LoadReport`
  — Poisson open-loop and fixed-concurrency closed-loop load
  generation with p50/p99/throughput reporting
  (:mod:`repro.serve.loadgen`);
* :func:`start_daemon` / :class:`AsyncServeClient` — the JSON-lines TCP
  daemon and its client (:mod:`repro.serve.protocol`);
* :class:`FleetSupervisor` / :class:`FleetClient` /
  :class:`CircuitBreaker` / :class:`RestartBackoff` — process-level fault
  tolerance: N supervised daemon workers with heartbeat health checks and
  backoff restarts, plus the failover client with per-worker circuit
  breakers and deadline propagation (:mod:`repro.serve.fleet`);
* :class:`ChaosPlan` / :func:`run_chaos_acceptance` — seeded kill/stall/
  corruption plans proving the fleet's invariants under load
  (:mod:`repro.serve.chaos`).

Typical use::

    import asyncio
    from repro.core.config import EIEConfig
    from repro.serve import Server

    async def main():
        async with Server(["neuraltalk_lstm"], config=EIEConfig(num_pes=16)) as server:
            response = await server.submit("neuraltalk_lstm", vector)
            print(response.batch_size, response.latency_s)

    asyncio.run(main())

The offered-load sweep is a registered experiment (``serve_latency``), so
serving performance is tracked exactly like the paper figures.  See
``docs/ARCHITECTURE.md`` ("The serving layer").
"""

from repro.serve.chaos import ChaosEvent, ChaosPlan, run_chaos_acceptance
from repro.serve.fleet import (
    CircuitBreaker,
    FleetClient,
    FleetPolicy,
    FleetSupervisor,
    RestartBackoff,
)
from repro.serve.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.serve.pipeline import ModelPipeline
from repro.serve.protocol import AsyncServeClient, start_daemon
from repro.serve.server import BatchPolicy, Server, ServeResponse

__all__ = [
    "AsyncServeClient",
    "BatchPolicy",
    "ChaosEvent",
    "ChaosPlan",
    "CircuitBreaker",
    "FleetClient",
    "FleetPolicy",
    "FleetSupervisor",
    "LoadReport",
    "ModelPipeline",
    "RestartBackoff",
    "ServeResponse",
    "Server",
    "run_chaos_acceptance",
    "run_closed_loop",
    "run_open_loop",
    "start_daemon",
]
