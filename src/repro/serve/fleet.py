"""Fault-tolerant multi-worker serving: supervisor, breakers, failover client.

One ``repro serve`` daemon is a single point of failure: a crash, hang or
slow dispatch takes the whole service down.  This module adds the
control-plane reliability around it, in three pieces that compose but are
testable alone:

* **Pure state machines** — :class:`CircuitBreaker` (closed → open on
  consecutive failures → half-open probe → closed) and
  :class:`RestartBackoff` (exponential restart delays with a crash-loop
  budget).  Both take an injectable ``clock`` so their transition tables
  are tested with a fake clock, no sleeps.
* **:class:`FleetSupervisor`** — spawns N ``repro serve`` daemon worker
  processes (each a full :class:`~repro.serve.server.Server` on its own
  port; a shared :class:`~repro.store.ArtifactStore` makes warm startups
  pure loads), watches each with ``health`` heartbeats over the JSON-lines
  protocol, SIGKILLs wedged workers, and restarts crashed ones with
  exponential backoff until the crash-loop budget is exhausted (then the
  slot is marked failed with a typed :class:`~repro.errors.FleetError`).
* **:class:`FleetClient`** — the fleet-aware client mode: round-robin
  routing across workers, a per-worker circuit breaker, deadline
  propagation (``deadline_s`` in the request envelope, enforced
  server-side so doomed work is shed early) and transparent failover.  An
  accepted request either completes — bit-identical to offline
  ``run_model``, because every worker runs the same deterministic engine —
  or surfaces a typed retriable error.  Nothing is silently lost, and
  because inference is pure, a request re-sent after a worker crash is
  merely idempotent recomputation, never a double-applied effect.

The chaos harness (:mod:`repro.serve.chaos`) drives all three under
deliberate kills, stalls and store corruption, the same way the ECC layer
is verified by injected bit flips.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import sys
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    FleetError,
    ServeError,
    ServeTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
    WorkerCrashedError,
)
from repro.serve.protocol import AsyncServeClient
from repro.serve.server import ServeResponse

__all__ = [
    "CircuitBreaker",
    "FleetClient",
    "FleetPolicy",
    "FleetSupervisor",
    "RestartBackoff",
]

#: The daemon's readiness line; the supervisor parses the bound port from it.
_LISTENING = re.compile(r"listening on (\S+):(\d+)")


# -- pure state machines ----------------------------------------------------------


class CircuitBreaker:
    """Per-worker failure gate: closed → open → half-open → closed.

    Closed, consecutive failures are counted; at ``failure_threshold`` the
    breaker opens and :meth:`allow` refuses requests for ``reset_after_s``.
    After that it half-opens: up to ``half_open_probes`` in-flight probe
    requests are admitted — one success closes the breaker, one failure
    re-opens it for another full ``reset_after_s``.

    ``clock`` is any ``() -> float`` monotonic-seconds callable; tests pass
    a fake so every transition is exercised without sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s <= 0:
            raise ConfigurationError(
                f"reset_after_s must be positive, got {reset_after_s}"
            )
        if half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open if the reset elapsed."""
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = self.HALF_OPEN
            self._probes_in_flight = 0
        return self._state

    @property
    def retry_after_s(self) -> float:
        """Seconds until the breaker will admit a request again (0 if now)."""
        if self.state != self.OPEN:
            return 0.0
        return max(0.0, self.reset_after_s - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """Whether a request may be routed through this breaker right now.

        In half-open state each ``allow() == True`` admits one probe; call
        :meth:`record_success` or :meth:`record_failure` for every admitted
        request so the probe slot is accounted for.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and self._probes_in_flight < self.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def record_success(self) -> None:
        """A routed request completed: close the breaker, forget failures."""
        self._state = self.CLOSED
        self._failures = 0
        self._probes_in_flight = 0

    def record_failure(self) -> None:
        """A routed request failed: count it; trip or re-open the breaker."""
        if self.state == self.HALF_OPEN:
            # The probe failed: straight back to open for a full reset.
            self._trip()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probes_in_flight = 0


class RestartBackoff:
    """Restart scheduling for one supervised worker slot.

    Each crash doubles the restart delay (``initial_s`` up to ``max_s``).
    A worker that stays up at least ``stable_after_s`` resets the schedule;
    one that keeps dying — more than ``budget`` crashes without ever
    reaching stability — is a crash loop, and :meth:`record_crash` raises
    :class:`FleetError` instead of scheduling another doomed restart.
    """

    def __init__(
        self,
        initial_s: float = 0.1,
        max_s: float = 5.0,
        stable_after_s: float = 10.0,
        budget: int = 5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if initial_s <= 0 or max_s < initial_s:
            raise ConfigurationError(
                f"need 0 < initial_s <= max_s, got {initial_s}/{max_s}"
            )
        if stable_after_s < 0:
            raise ConfigurationError(
                f"stable_after_s must be >= 0, got {stable_after_s}"
            )
        if budget < 1:
            raise ConfigurationError(f"crash-loop budget must be >= 1, got {budget}")
        self.initial_s = float(initial_s)
        self.max_s = float(max_s)
        self.stable_after_s = float(stable_after_s)
        self.budget = int(budget)
        self._clock = clock
        self._started_at: float | None = None
        self._streak = 0
        self.restarts = 0

    @property
    def streak(self) -> int:
        """Consecutive crashes without an intervening stable run."""
        return self._streak

    @property
    def exhausted(self) -> bool:
        """Whether the crash-loop budget has been spent."""
        return self._streak >= self.budget

    def note_started(self) -> None:
        """The worker (re)started now; stability is measured from here."""
        self._started_at = self._clock()

    def record_crash(self) -> float:
        """Account one crash; return the delay before the next restart.

        Raises:
            FleetError: the slot crashed more than ``budget`` times in a row
                without ever staying up ``stable_after_s`` — restarting
                again would just burn CPU on a doomed worker.
        """
        now = self._clock()
        if (
            self._started_at is not None
            and now - self._started_at >= self.stable_after_s
        ):
            self._streak = 0  # it ran stably before dying: fresh schedule
        if self.exhausted:
            raise FleetError(
                f"crash-loop budget exhausted: {self._streak} consecutive "
                f"crashes without {self.stable_after_s}s of stable uptime"
            )
        delay = min(self.initial_s * (2.0 ** self._streak), self.max_s)
        self._streak += 1
        self.restarts += 1
        return delay


# -- the supervisor ---------------------------------------------------------------


@dataclass(frozen=True)
class FleetPolicy:
    """Supervision knobs shared by every worker slot.

    Attributes:
        heartbeat_s: interval between ``health`` probes per worker.
        heartbeat_timeout_s: per-probe deadline; a probe that misses it
            counts as a missed heartbeat.
        max_missed_heartbeats: consecutive misses before a live process is
            declared wedged and SIGKILLed (then restarted like a crash).
        start_timeout_s: how long a spawned worker may take to print its
            readiness line (startup compresses models, so allow for it).
        drain_timeout_s: how long :meth:`FleetSupervisor.close` waits for a
            SIGTERMed worker to drain before SIGKILLing it.
        restart_initial_s / restart_max_s / stable_after_s /
        crash_loop_budget: the :class:`RestartBackoff` schedule per slot.
    """

    heartbeat_s: float = 0.5
    heartbeat_timeout_s: float = 2.0
    max_missed_heartbeats: int = 3
    start_timeout_s: float = 120.0
    drain_timeout_s: float = 15.0
    restart_initial_s: float = 0.1
    restart_max_s: float = 2.0
    stable_after_s: float = 10.0
    crash_loop_budget: int = 5

    def __post_init__(self) -> None:
        if self.heartbeat_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ConfigurationError("heartbeat intervals must be positive")
        if self.max_missed_heartbeats < 1:
            raise ConfigurationError("max_missed_heartbeats must be >= 1")
        if self.start_timeout_s <= 0 or self.drain_timeout_s <= 0:
            raise ConfigurationError("start/drain timeouts must be positive")


class _WorkerSlot:
    """One supervised worker: process handle + monitor bookkeeping."""

    def __init__(self, index: int, port: int, backoff: RestartBackoff) -> None:
        self.index = index
        self.requested_port = port  # 0 = fresh ephemeral port per spawn
        self.backoff = backoff
        self.proc: asyncio.subprocess.Process | None = None
        self.waiter: asyncio.Task | None = None
        self.drainer: asyncio.Task | None = None
        self.monitor: asyncio.Task | None = None
        self.client: AsyncServeClient | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.generation = 0
        self.state = "starting"  # starting|healthy|suspect|restarting|failed
        self.missed = 0
        self.last_health: dict[str, Any] | None = None
        self.error: str | None = None
        self.log: deque[str] = deque(maxlen=50)

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None


class FleetSupervisor:
    """Spawn, watch and restart N ``repro serve`` daemon workers.

    Args:
        worker_args: CLI arguments after ``serve`` that define each worker
            (models, engine, scale, batching policy...).  Every worker gets
            the same arguments, so any worker can answer any request.
        workers: how many daemon processes to run.
        host: listen address workers bind.
        base_port: first worker port; worker *i* gets ``base_port + i``.
            ``0`` gives every spawn a fresh ephemeral port (parsed from the
            daemon's readiness line) — the default, and what in-process
            clients using :meth:`endpoints` as a callable should use.
        policy: heartbeat / restart / drain knobs.
        env: extra environment variables for the workers (e.g. a shared
            ``REPRO_STORE_DIR`` so restarts re-load compressed models
            instead of recompressing them).

    Use as an async context manager::

        async with FleetSupervisor(["--models", "neuraltalk_lstm"], workers=3) as fleet:
            client = await FleetClient.connect(fleet.endpoints)
    """

    def __init__(
        self,
        worker_args: Sequence[str],
        workers: int = 3,
        host: str = "127.0.0.1",
        base_port: int = 0,
        policy: FleetPolicy | None = None,
        env: dict[str, str] | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"a fleet needs >= 1 worker, got {workers}")
        if base_port < 0:
            raise ConfigurationError(f"base_port must be >= 0, got {base_port}")
        self.worker_args = list(worker_args)
        self.host = host
        self.policy = policy or FleetPolicy()
        self.env = dict(env) if env else None
        self._slots = [
            _WorkerSlot(
                index,
                0 if base_port == 0 else base_port + index,
                RestartBackoff(
                    initial_s=self.policy.restart_initial_s,
                    max_s=self.policy.restart_max_s,
                    stable_after_s=self.policy.stable_after_s,
                    budget=self.policy.crash_loop_budget,
                ),
            )
            for index in range(workers)
        ]
        self._closing = False
        self._started = False
        self.counters = {
            "spawns": 0,
            "restarts": 0,
            "wedged_kills": 0,
            "crash_loops": 0,
        }
        self.restart_log: list[dict[str, Any]] = []

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> "FleetSupervisor":
        """Spawn every worker, wait until all are listening, start monitors."""
        if self._started:
            raise FleetError("fleet is already started")
        self._started = True
        try:
            await asyncio.gather(*(self._spawn(slot) for slot in self._slots))
        except BaseException:
            await self.close()
            raise
        for slot in self._slots:
            slot.monitor = asyncio.create_task(
                self._monitor(slot), name=f"repro-fleet-monitor-{slot.index}"
            )
        return self

    async def close(self) -> dict[str, Any]:
        """Stop monitoring, drain workers (SIGTERM, then SIGKILL stragglers)."""
        self._closing = True
        for slot in self._slots:
            if slot.monitor is not None:
                slot.monitor.cancel()
        await asyncio.gather(
            *(slot.monitor for slot in self._slots if slot.monitor),
            return_exceptions=True,
        )
        for slot in self._slots:
            await self._close_client(slot)
        for slot in self._slots:
            if slot.proc is not None and slot.proc.returncode is None:
                try:
                    slot.proc.send_signal(signal.SIGTERM)
                except ProcessLookupError:
                    pass
        for slot in self._slots:
            if slot.proc is None:
                continue
            try:
                await asyncio.wait_for(
                    slot.proc.wait(), timeout=self.policy.drain_timeout_s
                )
            except asyncio.TimeoutError:
                try:
                    slot.proc.kill()
                except ProcessLookupError:
                    pass
                await slot.proc.wait()
            if slot.drainer is not None:
                # The pipe is closed once the process is gone, so the
                # drainer finishes on its own; just collect it.
                await asyncio.gather(slot.drainer, return_exceptions=True)
        return self.stats()

    async def __aenter__(self) -> "FleetSupervisor":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- spawning ----------------------------------------------------------------

    def _command(self, slot: _WorkerSlot) -> list[str]:
        return [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            *self.worker_args,
            "--host",
            self.host,
            "--port",
            str(slot.requested_port),
        ]

    async def _spawn(self, slot: _WorkerSlot) -> None:
        """Start one worker process and wait for its readiness line."""
        environment = os.environ.copy()
        if self.env:
            environment.update(self.env)
        environment.setdefault("PYTHONUNBUFFERED", "1")
        slot.proc = await asyncio.create_subprocess_exec(
            *self._command(slot),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=environment,
        )
        self.counters["spawns"] += 1
        slot.generation += 1
        slot.state = "starting"
        slot.missed = 0
        assert slot.proc.stdout is not None
        try:
            await asyncio.wait_for(
                self._await_ready(slot), timeout=self.policy.start_timeout_s
            )
        except asyncio.TimeoutError:
            try:
                slot.proc.kill()
            except ProcessLookupError:
                pass
            await slot.proc.wait()
            raise FleetError(
                f"worker {slot.index} did not report readiness within "
                f"{self.policy.start_timeout_s}s "
                f"(last output: {list(slot.log)[-3:]})",
                worker_id=slot.index,
            ) from None
        slot.backoff.note_started()
        slot.waiter = asyncio.create_task(slot.proc.wait())
        slot.drainer = asyncio.create_task(self._drain_stdout(slot))
        slot.state = "healthy"

    async def _await_ready(self, slot: _WorkerSlot) -> None:
        assert slot.proc is not None and slot.proc.stdout is not None
        while True:
            line = await slot.proc.stdout.readline()
            if not line:
                raise FleetError(
                    f"worker {slot.index} exited during startup "
                    f"(output: {list(slot.log)[-5:]})",
                    worker_id=slot.index,
                )
            text = line.decode(errors="replace").rstrip()
            slot.log.append(text)
            match = _LISTENING.search(text)
            if match:
                slot.host = match.group(1)
                slot.port = int(match.group(2))
                return

    async def _drain_stdout(self, slot: _WorkerSlot) -> None:
        """Keep reading a running worker's output so its pipe never fills."""
        proc = slot.proc
        if proc is None or proc.stdout is None:
            return
        try:
            while True:
                line = await proc.stdout.readline()
                if not line:
                    return
                slot.log.append(line.decode(errors="replace").rstrip())
        except (asyncio.CancelledError, ConnectionResetError):
            pass

    # -- monitoring --------------------------------------------------------------

    async def _monitor(self, slot: _WorkerSlot) -> None:
        """Heartbeat one slot; restart it when it crashes or wedges."""
        try:
            while not self._closing:
                assert slot.waiter is not None
                done, _ = await asyncio.wait(
                    {slot.waiter}, timeout=self.policy.heartbeat_s
                )
                if done:
                    await self._handle_death(
                        slot, f"exited with code {slot.proc.returncode}"
                    )
                    continue
                if await self._heartbeat(slot):
                    slot.missed = 0
                    slot.state = "healthy"
                    continue
                slot.missed += 1
                slot.state = "suspect"
                if slot.missed >= self.policy.max_missed_heartbeats:
                    # A live process that stopped answering is wedged: a
                    # graceful signal may never be seen, so SIGKILL it.
                    self.counters["wedged_kills"] += 1
                    try:
                        slot.proc.kill()
                    except ProcessLookupError:
                        pass
                    await slot.waiter
                    await self._handle_death(
                        slot, f"wedged ({slot.missed} missed heartbeats)"
                    )
        except asyncio.CancelledError:
            pass

    async def _heartbeat(self, slot: _WorkerSlot) -> bool:
        """One ``health`` probe; True when the worker answered in time."""
        try:
            if slot.client is None:
                assert slot.host is not None and slot.port is not None
                slot.client = await asyncio.wait_for(
                    AsyncServeClient.connect(slot.host, slot.port),
                    timeout=self.policy.heartbeat_timeout_s,
                )
            slot.last_health = await slot.client.health(
                timeout_s=self.policy.heartbeat_timeout_s
            )
            return bool(slot.last_health.get("ok"))
        except asyncio.CancelledError:
            raise
        except Exception:
            await self._close_client(slot)
            return False

    async def _close_client(self, slot: _WorkerSlot) -> None:
        if slot.client is not None:
            client, slot.client = slot.client, None
            try:
                await client.close()
            except Exception:
                pass

    async def _handle_death(self, slot: _WorkerSlot, reason: str) -> None:
        """Back off and respawn a dead worker, or fail the slot for good."""
        await self._close_client(slot)
        if slot.drainer is not None:
            await asyncio.gather(slot.drainer, return_exceptions=True)
        if self._closing:
            return
        try:
            delay = slot.backoff.record_crash()
        except FleetError as exc:
            self.counters["crash_loops"] += 1
            slot.state = "failed"
            slot.error = str(exc)
            self.restart_log.append(
                {"worker": slot.index, "reason": reason, "gave_up": True}
            )
            raise asyncio.CancelledError from None
        slot.state = "restarting"
        self.counters["restarts"] += 1
        self.restart_log.append(
            {"worker": slot.index, "reason": reason, "delay_s": delay}
        )
        await asyncio.sleep(delay)
        try:
            await self._spawn(slot)
        except FleetError as exc:
            # Spawn itself failed (e.g. killed again during startup): treat
            # it as another crash on the next loop iteration by synthesizing
            # a finished waiter.
            slot.error = str(exc)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            future.set_result(None)
            slot.waiter = future

    # -- control & introspection -------------------------------------------------

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int | None:
        """Send ``sig`` (default SIGKILL) to one worker; returns its pid.

        This is the chaos harness's crash injector; the monitor notices the
        death and restarts the worker through the normal backoff path.
        """
        slot = self._slots[index]
        if slot.proc is None or slot.proc.returncode is not None:
            return None
        pid = slot.proc.pid
        try:
            slot.proc.send_signal(sig)
        except ProcessLookupError:
            return None
        return pid

    def endpoints(self) -> list[tuple[str, int] | None]:
        """Current ``(host, port)`` per worker slot (``None`` = failed slot).

        Pass this *method* (not its result) to :class:`FleetClient`: after
        a restart onto a fresh ephemeral port the client re-resolves the
        slot's endpoint instead of hammering the dead one.
        """
        return [
            None
            if slot.state == "failed" or slot.port is None
            else (slot.host or self.host, slot.port)
            for slot in self._slots
        ]

    @property
    def workers(self) -> int:
        return len(self._slots)

    def worker_log(self, index: int) -> list[str]:
        """Recent output lines of one worker (diagnostics)."""
        return list(self._slots[index].log)

    async def wait_healthy(self, timeout_s: float = 30.0) -> None:
        """Block until every non-failed worker answers a health probe.

        Raises:
            FleetError: some worker never became healthy within the budget
                (or every slot failed its crash-loop budget).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            pending = [
                slot
                for slot in self._slots
                if slot.state != "failed" and slot.state != "healthy"
            ]
            alive = [slot for slot in self._slots if slot.state != "failed"]
            if not alive:
                raise FleetError("every worker slot exhausted its crash-loop budget")
            if not pending:
                return
            if time.monotonic() >= deadline:
                raise FleetError(
                    f"workers {[slot.index for slot in pending]} not healthy "
                    f"within {timeout_s}s "
                    f"(states: {[slot.state for slot in pending]})"
                )
            await asyncio.sleep(min(0.05, self.policy.heartbeat_s))

    def stats(self) -> dict[str, Any]:
        """Fleet counters plus a per-worker status table."""
        return {
            **self.counters,
            "workers": [
                {
                    "worker": slot.index,
                    "state": slot.state,
                    "pid": slot.pid,
                    "host": slot.host,
                    "port": slot.port,
                    "generation": slot.generation,
                    "restarts": slot.backoff.restarts,
                    "missed_heartbeats": slot.missed,
                    "error": slot.error,
                    "queue_depth": (slot.last_health or {}).get("queue_depth"),
                    "served": (slot.last_health or {}).get("served"),
                }
                for slot in self._slots
            ],
        }


# -- the failover client ----------------------------------------------------------

#: Transport-level failures that mean "this worker is gone", not "bad request".
_TRANSPORT_ERRORS = (
    ConnectionError,
    OSError,
    asyncio.TimeoutError,
    ServeTimeoutError,
    ServerClosedError,
)


class FleetClient:
    """Route requests across fleet workers with breakers and failover.

    Args:
        endpoints: a list of ``(host, port)`` per worker — or a callable
            returning one (e.g. ``FleetSupervisor.endpoints``), re-resolved
            before every connection attempt so restarted workers on fresh
            ports are picked up transparently.  ``None`` entries are
            permanently failed slots and are skipped.
        timeout_s: per-request wall-clock budget across *all* failover
            attempts.  Also propagated as the request's ``deadline_s`` so
            the server sheds the work if it cannot answer in time.
        max_attempts: distinct worker attempts per request (default: twice
            the worker count).
        failure_threshold / reset_after_s / half_open_probes: the per-worker
            :class:`CircuitBreaker` parameters.
        connect_timeout_s: TCP connect budget per attempt.
        route_window: consecutive requests routed to the same worker before
            round-robin advances (default 1).  Set it to the servers'
            ``max_batch`` when driving closed-loop load so each worker's
            batcher sees full batches instead of a thin slice of every
            wave.

    Failure semantics: a request either returns a :class:`ServeResponse`
    (bit-identical to the offline path) or raises one of the typed
    retriable errors — :class:`ServerOverloadedError`,
    :class:`DeadlineExceededError`, :class:`CircuitOpenError`,
    :class:`WorkerCrashedError`, :class:`ServeTimeoutError`.  Non-retriable
    :class:`ServeError` (unknown model, bad shape) is raised immediately
    without failover — every worker serves the same models, so a second
    opinion cannot help.
    """

    def __init__(
        self,
        endpoints: Sequence[tuple[str, int] | None]
        | Callable[[], Sequence[tuple[str, int] | None]],
        *,
        timeout_s: float | None = 30.0,
        max_attempts: int | None = None,
        failure_threshold: int = 3,
        reset_after_s: float = 1.0,
        half_open_probes: int = 1,
        connect_timeout_s: float = 5.0,
        route_window: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive or None, got {timeout_s}"
            )
        if route_window < 1:
            raise ConfigurationError(
                f"route_window must be >= 1, got {route_window}"
            )
        self._resolve = endpoints if callable(endpoints) else (lambda: endpoints)
        initial = list(self._resolve())
        if not initial:
            raise ConfigurationError("a fleet client needs at least one endpoint")
        self.timeout_s = timeout_s
        self.max_attempts = (
            int(max_attempts) if max_attempts is not None else 2 * len(initial)
        )
        self.connect_timeout_s = float(connect_timeout_s)
        self._clock = clock
        self._breakers = [
            CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_after_s=reset_after_s,
                half_open_probes=half_open_probes,
                clock=clock,
            )
            for _ in initial
        ]
        self._clients: list[AsyncServeClient | None] = [None] * len(initial)
        self._connected_to: list[tuple[str, int] | None] = [None] * len(initial)
        # Serializes connect/drop per worker: concurrent failovers onto the
        # same slot must not each open a connection and orphan all but one.
        self._conn_locks = [asyncio.Lock() for _ in initial]
        self._rr = 0
        # Route `route_window` consecutive requests to the same worker
        # before advancing: window > 1 keeps a closed-loop burst on one
        # worker long enough for its batcher to coalesce a full batch
        # (pure round-robin spreads every wave thin across the fleet).
        self._route_window = int(route_window)
        self._rr_used = 0
        self.counters = {
            "requests": 0,
            "completed": 0,
            "failovers": 0,
            "breaker_rejections": 0,
        }

    @classmethod
    async def connect(
        cls,
        endpoints: Sequence[tuple[str, int] | None]
        | Callable[[], Sequence[tuple[str, int] | None]],
        **kwargs: Any,
    ) -> "FleetClient":
        """Build a client and verify at least one worker is reachable."""
        client = cls(endpoints, **kwargs)
        await client.models()  # raises (typed) if the whole fleet is down
        return client

    # -- connections -------------------------------------------------------------

    def _endpoint(self, index: int) -> tuple[str, int] | None:
        endpoints = list(self._resolve())
        if index >= len(endpoints):
            return None
        return endpoints[index]

    async def _client_for(self, index: int) -> AsyncServeClient:
        """A live connection to worker ``index``, reconnecting on demand."""
        async with self._conn_locks[index]:
            endpoint = self._endpoint(index)
            if endpoint is None:
                raise WorkerCrashedError(
                    f"worker {index} has no endpoint (slot failed)", worker_id=index
                )
            cached = self._clients[index]
            if cached is not None and self._connected_to[index] == endpoint:
                return cached
            await self._drop_client_locked(index)
            host, port = endpoint
            try:
                client = await asyncio.wait_for(
                    AsyncServeClient.connect(host, port),
                    timeout=self.connect_timeout_s,
                )
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                raise WorkerCrashedError(
                    f"worker {index} unreachable at {host}:{port}: {exc}",
                    worker_id=index,
                ) from exc
            self._clients[index] = client
            self._connected_to[index] = endpoint
            return client

    async def _drop_client(
        self, index: int, only: AsyncServeClient | None = None
    ) -> None:
        """Close and forget worker ``index``'s connection.

        With ``only`` set, drop only if that exact client is still the
        cached one — a concurrent failover may already have reconnected,
        and its fresh connection must survive.
        """
        async with self._conn_locks[index]:
            if only is not None and self._clients[index] is not only:
                return
            await self._drop_client_locked(index)

    async def _drop_client_locked(self, index: int) -> None:
        client, self._clients[index] = self._clients[index], None
        self._connected_to[index] = None
        if client is not None:
            try:
                await client.close()
            except Exception:
                pass

    # -- routing -----------------------------------------------------------------

    def _pick_worker(self, tried: set[int]) -> int | None:
        """Next eligible worker: round robin over closed/half-open breakers,
        staying on the current worker for ``route_window`` requests."""
        count = len(self._breakers)
        for offset in range(count):
            index = (self._rr + offset) % count
            if index in tried or self._endpoint(index) is None:
                continue
            if self._breakers[index].allow():
                if offset > 0:
                    # Forced off the preferred worker (failover, open
                    # breaker, dead slot): restart the window on this one.
                    self._rr = index
                    self._rr_used = 0
                self._rr_used += 1
                if self._rr_used >= self._route_window:
                    self._rr = (index + 1) % count
                    self._rr_used = 0
                return index
        return None

    def _all_open_error(self) -> CircuitOpenError:
        waits = [
            breaker.retry_after_s
            for index, breaker in enumerate(self._breakers)
            if self._endpoint(index) is not None
        ]
        if not waits:
            return CircuitOpenError("every fleet worker slot has failed")
        return CircuitOpenError(
            f"all {len(waits)} worker circuit breakers are open",
            retry_after_s=min(waits),
        )

    async def infer(
        self,
        model: str,
        vector: np.ndarray,
        *,
        timeout_s: float | None = None,
    ) -> ServeResponse:
        """One inference request with transparent failover.

        Routes to the next worker whose breaker admits the request, carries
        the remaining time budget as the wire ``deadline_s``, and on worker
        failure (transport error, timeout, crash mid-request) marks the
        breaker and retries the *unchanged* request on another worker.
        """
        self.counters["requests"] += 1
        budget = self.timeout_s if timeout_s is None else timeout_s
        deadline = None if budget is None else self._clock() + budget
        tried: set[int] = set()
        last_error: Exception | None = None
        for attempt in range(self.max_attempts):
            if len(tried) >= len(self._breakers):
                tried.clear()  # every worker seen once: allow another round
            index = self._pick_worker(tried)
            if index is None:
                self.counters["breaker_rejections"] += 1
                raise last_error if last_error is not None else self._all_open_error()
            tried.add(index)
            breaker = self._breakers[index]
            remaining = None if deadline is None else deadline - self._clock()
            if remaining is not None and remaining <= 0:
                breaker.record_success()  # the worker did nothing wrong
                raise ServeTimeoutError(
                    f"fleet request budget of {budget}s exhausted after "
                    f"{attempt} attempt(s)",
                    timeout_s=budget or 0.0,
                )
            client = None
            try:
                client = await self._client_for(index)
                response = await client.infer(
                    model,
                    vector,
                    timeout_s=remaining,
                    retries=0,
                    deadline_s=remaining,
                )
            except _TRANSPORT_ERRORS as exc:
                breaker.record_failure()
                if client is not None:
                    await self._drop_client(index, only=client)
                self.counters["failovers"] += 1
                last_error = WorkerCrashedError(
                    f"worker {index} failed mid-request: {exc}",
                    worker_id=index,
                    retry_after_s=self._breakers[index].retry_after_s,
                )
                continue
            except WorkerCrashedError as exc:
                breaker.record_failure()
                self.counters["failovers"] += 1
                last_error = exc
                continue
            except (ServerOverloadedError, DeadlineExceededError) as exc:
                # Backpressure / shedding: the worker is healthy, it just
                # cannot take this request — try a sibling without
                # penalizing the breaker.
                breaker.record_success()
                self.counters["failovers"] += 1
                last_error = exc
                continue
            except ServeError:
                # Bad request (unknown model, wrong shape): every worker
                # would answer the same — surface it, close the breaker's
                # probe slot.
                breaker.record_success()
                raise
            breaker.record_success()
            self.counters["completed"] += 1
            return response
        assert last_error is not None
        raise last_error

    # -- fleet-wide queries ------------------------------------------------------

    async def _any_worker(self, op: Callable[[AsyncServeClient], Any]) -> Any:
        """Run a query on the first reachable worker."""
        last_error: Exception | None = None
        for index in range(len(self._breakers)):
            if self._endpoint(index) is None:
                continue
            client = None
            try:
                client = await self._client_for(index)
                return await op(client)
            except _TRANSPORT_ERRORS + (WorkerCrashedError,) as exc:
                if client is not None:
                    await self._drop_client(index, only=client)
                last_error = exc
        raise WorkerCrashedError(
            f"no fleet worker reachable: {last_error}"
        ) from last_error

    async def models(self) -> dict[str, Any]:
        """Model descriptions from any reachable worker (they all match)."""
        return await self._any_worker(lambda client: client.models())

    async def health(self) -> list[dict[str, Any] | None]:
        """Health snapshot per worker (``None`` for unreachable slots)."""
        snapshots: list[dict[str, Any] | None] = []
        for index in range(len(self._breakers)):
            client = None
            try:
                client = await self._client_for(index)
                snapshots.append(await client.health(timeout_s=self.connect_timeout_s))
            except Exception:
                if client is not None:
                    await self._drop_client(index, only=client)
                snapshots.append(None)
        return snapshots

    def stats(self) -> dict[str, Any]:
        """Client counters plus each worker's breaker state."""
        return {
            **self.counters,
            "breakers": [breaker.state for breaker in self._breakers],
        }

    async def close(self) -> None:
        for index in range(len(self._clients)):
            await self._drop_client(index)

    async def __aenter__(self) -> "FleetClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()
