"""Open- and closed-loop load generation against a serving endpoint.

Closed-loop clients (send, wait, send) hide queueing: the arrival rate
drops whenever the server slows down, so tail latency looks flat no matter
how overloaded the system is.  Serving systems are instead measured
**open loop**: requests arrive on a Poisson process at a fixed offered
rate whether or not earlier ones finished, and the report shows what the
rate did to p50/p99 latency, throughput and the rejection ratio.

The closed loop still answers a real question — *capacity*: with N users
who each keep exactly one request in flight, what throughput and per-request
latency does the service sustain?  :func:`run_closed_loop` measures that
directly (N workers, next request issued the moment the previous one
completes), which is the number capacity planning wants next to the
open-loop latency-versus-rate curve.

Both generators drive any async ``submit(vector) -> ServeResponse``
callable — the in-process :class:`~repro.serve.server.Server`, or a
:class:`~repro.serve.protocol.AsyncServeClient` talking to a daemon over
TCP — and return a :class:`LoadReport`.  Open-loop arrivals are
deterministic per seed (exponential gaps from the shared RNG helpers) and
closed-loop request order is fixed (row *i* is request *i*), so a sweep
point is reproducible and verifiable bit for bit against the offline path.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

import numpy as np

from repro.errors import (
    RETRIABLE_SERVE_ERRORS,
    ConfigurationError,
    ServerOverloadedError,
)
from repro.utils.rng import derive_seed, make_rng

__all__ = ["LoadReport", "run_closed_loop", "run_open_loop"]


@dataclass
class LoadReport:
    """What one offered-load point did to the service.

    Wall-clock latency percentiles are measured from each request's
    *scheduled arrival* to its completion, so queueing delay (the thing
    offered load actually moves) is included.  ``sim_latency_us`` /
    ``sim_cycles`` aggregate the simulated per-item EIE latencies carried
    in the responses (``None`` on engines without timing).
    """

    offered_rps: float
    requests: int
    completed: int
    rejected: int
    errors: int
    duration_s: float
    latencies_ms: np.ndarray
    batch_sizes: np.ndarray
    sim_latency_us: float | None
    sim_cycles: float | None
    outputs: list[np.ndarray] | None = None
    responses: list[Any] = field(default_factory=list, repr=False)
    #: ``"open"`` (Poisson arrivals) or ``"closed"`` (fixed concurrency).
    mode: str = "open"
    #: Worker count of a closed-loop run (``None`` for open loop).
    concurrency: int | None = None
    #: Requests that failed with a *typed retriable* error other than
    #: overload (timeout, deadline shed, open breaker, crashed worker).
    #: Distinct from ``errors``, which counts unexpected failures — under a
    #: chaos run the invariant is ``errors == 0``.
    retriable: int = 0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall-clock run time."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def _percentile(self, q: float) -> float:
        if self.latencies_ms.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies_ms, q))

    @property
    def p50_ms(self) -> float:
        return self._percentile(50.0)

    @property
    def p99_ms(self) -> float:
        return self._percentile(99.0)

    @property
    def mean_ms(self) -> float:
        return float(self.latencies_ms.mean()) if self.latencies_ms.size else float("nan")

    @property
    def max_ms(self) -> float:
        return float(self.latencies_ms.max()) if self.latencies_ms.size else float("nan")

    @property
    def mean_batch(self) -> float:
        """Average coalesced batch size over completed requests."""
        return float(self.batch_sizes.mean()) if self.batch_sizes.size else 0.0

    def record(self) -> dict[str, Any]:
        """A flat JSON-friendly record (one experiment grid point)."""
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "offered_rps": self.offered_rps,
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "retriable": self.retriable,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "mean_batch": self.mean_batch,
            "sim_latency_us": self.sim_latency_us,
            "sim_cycles": self.sim_cycles,
        }


async def run_open_loop(
    submit: Callable[[np.ndarray], Awaitable[Any]],
    inputs: np.ndarray,
    rate_rps: float,
    seed: int = 0,
    capture_outputs: bool = False,
) -> LoadReport:
    """Fire ``inputs`` at ``submit`` with Poisson arrivals at ``rate_rps``.

    Each row of ``inputs`` is one request; row *i* is request *i* on every
    run with the same seed, so two sweeps (or a served run and an offline
    re-run) see identical vectors in identical order.  Requests are
    scheduled open loop — request *i* launches at its arrival time even if
    earlier requests are still in flight.  :class:`ServerOverloadedError`
    counts as a rejection (that is admission control working, not a bug);
    any other exception counts as an error.

    With ``capture_outputs=True`` the report keeps each completed request's
    output vector (indexed like ``inputs``) for bit-for-bit verification
    against the offline path.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.ndim != 2 or inputs.shape[0] == 0:
        raise ConfigurationError(
            f"load generator needs a non-empty (requests, n_in) matrix, "
            f"got shape {inputs.shape}"
        )
    if rate_rps <= 0:
        raise ConfigurationError(f"offered rate must be > 0 rps, got {rate_rps}")
    count = inputs.shape[0]
    rng = make_rng(derive_seed(seed, "serve-loadgen", count))
    gaps = rng.exponential(scale=1.0 / rate_rps, size=count)
    gaps[0] = 0.0  # the first request arrives immediately
    arrivals = np.cumsum(gaps)

    latencies: list[float] = [float("nan")] * count
    batch_sizes: list[int] = []
    sim_latency: list[float] = []
    sim_cycles: list[int] = []
    outputs: list[np.ndarray | None] = [None] * count
    responses: list[Any] = []
    counters = {"completed": 0, "rejected": 0, "retriable": 0, "errors": 0}

    start = time.perf_counter()

    async def one_request(index: int) -> None:
        delay = arrivals[index] - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        scheduled = start + arrivals[index]
        try:
            response = await submit(inputs[index])
        except ServerOverloadedError:
            counters["rejected"] += 1
            return
        except RETRIABLE_SERVE_ERRORS:
            counters["retriable"] += 1
            return
        except Exception:
            counters["errors"] += 1
            return
        latencies[index] = (time.perf_counter() - scheduled) * 1e3
        counters["completed"] += 1
        batch_sizes.append(int(response.batch_size))
        if response.latency_s is not None:
            sim_latency.append(float(response.latency_s))
            sim_cycles.append(int(response.total_cycles))
        if capture_outputs:
            outputs[index] = np.asarray(response.output)
        responses.append(response)

    await asyncio.gather(*(one_request(index) for index in range(count)))
    duration = time.perf_counter() - start

    measured = np.asarray([value for value in latencies if value == value])
    return LoadReport(
        offered_rps=float(rate_rps),
        requests=count,
        completed=counters["completed"],
        rejected=counters["rejected"],
        errors=counters["errors"],
        duration_s=duration,
        latencies_ms=measured,
        batch_sizes=np.asarray(batch_sizes, dtype=np.int64),
        sim_latency_us=float(np.mean(sim_latency)) * 1e6 if sim_latency else None,
        sim_cycles=float(np.mean(sim_cycles)) if sim_cycles else None,
        outputs=[value for value in outputs] if capture_outputs else None,
        responses=responses,
        mode="open",
        retriable=counters["retriable"],
    )


async def run_closed_loop(
    submit: Callable[[np.ndarray], Awaitable[Any]],
    inputs: np.ndarray,
    concurrency: int,
    capture_outputs: bool = False,
) -> LoadReport:
    """Drive ``inputs`` through ``submit`` with ``concurrency`` closed loops.

    ``concurrency`` workers each keep exactly one request in flight: a
    worker pulls the next unclaimed row of ``inputs``, awaits its response,
    and immediately issues the next — the classic N-user capacity probe.
    Request *identity* is deterministic (row *i* is request *i*, every row
    submitted exactly once), so with ``capture_outputs=True`` each output is
    bit-comparable to the offline path exactly like the open-loop report;
    which *worker* carries which row depends on completion order and is
    deliberately not part of the contract.

    Latency is measured from the moment a worker issues the request — a
    closed loop never queues behind its own arrivals, so unlike the open
    loop there is no scheduled-arrival backlog to include.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.ndim != 2 or inputs.shape[0] == 0:
        raise ConfigurationError(
            f"load generator needs a non-empty (requests, n_in) matrix, "
            f"got shape {inputs.shape}"
        )
    if concurrency < 1:
        raise ConfigurationError(
            f"closed-loop concurrency must be >= 1, got {concurrency}"
        )
    count = inputs.shape[0]
    concurrency = min(int(concurrency), count)

    latencies: list[float] = [float("nan")] * count
    batch_sizes: list[int] = []
    sim_latency: list[float] = []
    sim_cycles: list[int] = []
    outputs: list[np.ndarray | None] = [None] * count
    responses: list[Any] = []
    counters = {"completed": 0, "rejected": 0, "retriable": 0, "errors": 0}
    next_index = iter(range(count))

    start = time.perf_counter()

    async def worker() -> None:
        for index in next_index:  # the shared iterator hands out each row once
            issued = time.perf_counter()
            try:
                response = await submit(inputs[index])
            except ServerOverloadedError:
                counters["rejected"] += 1
                continue
            except RETRIABLE_SERVE_ERRORS:
                counters["retriable"] += 1
                continue
            except Exception:
                counters["errors"] += 1
                continue
            latencies[index] = (time.perf_counter() - issued) * 1e3
            counters["completed"] += 1
            batch_sizes.append(int(response.batch_size))
            if response.latency_s is not None:
                sim_latency.append(float(response.latency_s))
                sim_cycles.append(int(response.total_cycles))
            if capture_outputs:
                outputs[index] = np.asarray(response.output)
            responses.append(response)

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    duration = time.perf_counter() - start

    measured = np.asarray([value for value in latencies if value == value])
    return LoadReport(
        offered_rps=0.0,  # no offered rate in a closed loop; see throughput_rps
        requests=count,
        completed=counters["completed"],
        rejected=counters["rejected"],
        errors=counters["errors"],
        duration_s=duration,
        latencies_ms=measured,
        batch_sizes=np.asarray(batch_sizes, dtype=np.int64),
        sim_latency_us=float(np.mean(sim_latency)) * 1e6 if sim_latency else None,
        sim_cycles=float(np.mean(sim_cycles)) if sim_cycles else None,
        outputs=[value for value in outputs] if capture_outputs else None,
        responses=responses,
        mode="closed",
        concurrency=concurrency,
        retriable=counters["retriable"],
    )
