"""Newline-delimited-JSON wire protocol for the serving daemon.

One JSON object per line, both directions.  Requests carry a client-chosen
``id`` echoed back in the response, so a connection can keep many inference
requests in flight at once — which is exactly what gives the server's
dynamic batcher something to coalesce.

Operations::

    {"id": 7, "op": "infer", "model": "neuraltalk_lstm", "input": [...],
     "deadline_s": 2.5}
    {"id": 8, "op": "models"}
    {"id": 9, "op": "stats"}
    {"id": 10, "op": "health"}
    {"id": 11, "op": "chaos", "latency_s": 0.05, "duration_s": 1.0}
    {"id": 0, "op": "ping"}

``deadline_s`` is a *relative* deadline (seconds from receipt, so no clock
sync between hosts is needed); a request still queued when it expires is
shed with a ``deadline_exceeded`` error instead of being computed.
``health`` is the supervisor's heartbeat verb; ``chaos`` is honoured only
by daemons started with ``--chaos``.

Successful ``infer`` responses mirror :class:`~repro.serve.server
.ServeResponse`; failures are ``{"ok": false, "error": <kind>, ...}`` with
kind ``"overloaded"`` (plus ``retry_after_s``), ``"deadline_exceeded"``,
``"circuit_open"``, ``"worker_crashed"``, ``"closed"`` or
``"bad_request"``, which :class:`AsyncServeClient` maps back onto the
typed :mod:`repro.errors` exceptions.  Floats cross the wire as JSON
numbers, which Python serializes via ``repr`` (shortest round-trip form),
so output vectors and simulated latencies survive the protocol **bit for
bit** — the CI drain test depends on this.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

import numpy as np

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ServeError,
    ServeTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
    WorkerCrashedError,
)
from repro.serve.server import Server, ServeResponse

__all__ = ["start_daemon", "AsyncServeClient"]

#: Generous per-line bound: a paper-scale fc layer output is ~4k floats.
_LINE_LIMIT = 2**24


def _error_payload(request_id: Any, exc: BaseException) -> dict[str, Any]:
    if isinstance(exc, ServerOverloadedError):
        return {
            "id": request_id,
            "ok": False,
            "error": "overloaded",
            "message": str(exc),
            "retry_after_s": exc.retry_after_s,
        }
    if isinstance(exc, DeadlineExceededError):
        return {
            "id": request_id,
            "ok": False,
            "error": "deadline_exceeded",
            "message": str(exc),
            "deadline_s": exc.deadline_s,
        }
    if isinstance(exc, CircuitOpenError):
        return {
            "id": request_id,
            "ok": False,
            "error": "circuit_open",
            "message": str(exc),
            "worker_id": exc.worker_id,
            "retry_after_s": exc.retry_after_s,
        }
    if isinstance(exc, WorkerCrashedError):
        return {
            "id": request_id,
            "ok": False,
            "error": "worker_crashed",
            "message": str(exc),
            "worker_id": exc.worker_id,
            "restarts": exc.restarts,
            "retry_after_s": exc.retry_after_s,
        }
    if isinstance(exc, ServerClosedError):
        return {"id": request_id, "ok": False, "error": "closed", "message": str(exc)}
    return {"id": request_id, "ok": False, "error": "bad_request", "message": str(exc)}


def _error_from_payload(payload: dict[str, Any]) -> ReproError:
    """The inverse of :func:`_error_payload`: wire kind → typed exception."""
    kind = payload.get("error")
    text = payload.get("message", "server error")
    if kind == "overloaded":
        return ServerOverloadedError(
            text, retry_after_s=float(payload.get("retry_after_s", 0.0))
        )
    if kind == "deadline_exceeded":
        return DeadlineExceededError(
            text, deadline_s=float(payload.get("deadline_s", 0.0))
        )
    if kind == "circuit_open":
        return CircuitOpenError(
            text,
            worker_id=payload.get("worker_id"),
            retry_after_s=float(payload.get("retry_after_s", 0.0)),
        )
    if kind == "worker_crashed":
        return WorkerCrashedError(
            text,
            worker_id=payload.get("worker_id"),
            restarts=int(payload.get("restarts", 0)),
            retry_after_s=float(payload.get("retry_after_s", 0.0)),
        )
    if kind == "closed":
        return ServerClosedError(text)
    return ServeError(text)


async def _handle_message(server: Server, message: dict[str, Any]) -> dict[str, Any]:
    request_id = message.get("id")
    op = message.get("op")
    try:
        if op == "infer":
            model = message.get("model")
            vector = message.get("input")
            if not isinstance(model, str) or vector is None:
                raise ServeError("infer needs a 'model' name and an 'input' vector")
            deadline_s = message.get("deadline_s")
            if deadline_s is not None and (
                not isinstance(deadline_s, (int, float)) or deadline_s <= 0
            ):
                raise ServeError(
                    f"'deadline_s' must be a positive number, got {deadline_s!r}"
                )
            response = await server.submit(
                model,
                np.asarray(vector, dtype=np.float64),
                deadline_s=None if deadline_s is None else float(deadline_s),
            )
            return {
                "id": request_id,
                "ok": True,
                "model": response.model,
                "outputs": response.output.tolist(),
                "batch_size": response.batch_size,
                "total_cycles": response.total_cycles,
                "latency_s": response.latency_s,
                "energy_j": response.energy_j,
                "queue_wait_s": response.queue_wait_s,
                "service_s": response.service_s,
            }
        if op == "models":
            return {
                "id": request_id,
                "ok": True,
                "models": {name: server.describe(name) for name in server.models},
            }
        if op == "stats":
            return {"id": request_id, "ok": True, "stats": server.stats()}
        if op == "health":
            return {"id": request_id, "ok": True, "health": server.health()}
        if op == "chaos":
            injected = server.inject_chaos(
                float(message.get("latency_s", 0.0)),
                float(message.get("duration_s", 0.0)),
            )
            return {"id": request_id, "ok": True, "chaos": injected}
        if op == "ping":
            return {"id": request_id, "ok": True, "pong": True}
        raise ServeError(f"unknown operation {op!r}")
    except BaseException as exc:
        return _error_payload(request_id, exc)


async def _handle_connection(
    server: Server, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()

    async def process(message: dict[str, Any]) -> None:
        payload = await _handle_message(server, message)
        async with write_lock:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()

    async def reject(reason: str) -> None:
        # A malformed line is that *line's* problem, never the connection's:
        # answer it with a typed error and keep reading.
        async with write_lock:
            writer.write(
                json.dumps(_error_payload(None, ServeError(reason))).encode() + b"\n"
            )
            await writer.drain()

    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionResetError, asyncio.LimitOverrunError):
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
            except json.JSONDecodeError as exc:
                await reject(f"bad JSON: {exc}")
                continue
            if not isinstance(message, dict):
                await reject(
                    f"message must be a JSON object, got {type(message).__name__}"
                )
                continue
            request_id = message.get("id")
            if request_id is not None and not isinstance(request_id, (str, int, float)):
                await reject("'id' must be a JSON string, number or null")
                continue
            # Each message runs concurrently: many in-flight infers from one
            # connection are what the dynamic batcher coalesces.
            task = asyncio.create_task(process(message))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_daemon(
    server: Server, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose a started :class:`Server` over TCP; returns the listener.

    ``port=0`` binds an ephemeral port; read it back from
    ``listener.sockets[0].getsockname()``.  Close the listener first, then
    ``await server.close()`` to drain — queued requests are still answered
    on their open connections.
    """

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        await _handle_connection(server, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port, limit=_LINE_LIMIT)


class AsyncServeClient:
    """Async client for the daemon: many concurrent ``infer`` calls, one socket.

    Each call gets a fresh ``id``; a background reader task resolves the
    matching future when the response line arrives, so ``asyncio.gather``
    over many :meth:`infer` coroutines produces exactly the concurrent
    open-loop traffic the load generator needs.

    Args:
        timeout_s: per-request deadline; ``None`` waits forever.  A request
            that misses it raises :class:`~repro.errors.ServeTimeoutError`
            (its late response, if any, is discarded).
        retries: how many times :meth:`infer` retries after an
            ``overloaded`` rejection or a timeout (other errors never
            retry).  ``0`` keeps the old fail-fast behaviour.
        backoff_s: initial retry delay; doubles per attempt.  An
            ``overloaded`` rejection's ``retry_after_s`` hint is honoured
            when it exceeds the current backoff.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.05,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ServeError(f"timeout_s must be positive or None, got {timeout_s}")
        if retries < 0:
            raise ServeError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ServeError(f"backoff_s must be >= 0, got {backoff_s}")
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self.timeout_s = timeout_s
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.05,
    ) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(host, port, limit=_LINE_LIMIT)
        return cls(
            reader, writer, timeout_s=timeout_s, retries=retries, backoff_s=backoff_s
        )

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(payload, dict):
                    continue
                try:
                    future = self._pending.pop(payload.get("id"), None)
                except TypeError:
                    # Unhashable id (a hostile or buggy server): not ours.
                    continue
                if future is not None and not future.done():
                    future.set_result(payload)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServerClosedError("connection closed before the response")
                    )
            self._pending.clear()

    async def _call(
        self, message: dict[str, Any], timeout_s: float | None = None
    ) -> dict[str, Any]:
        if self._reader_task.done():
            raise ServerClosedError("client connection is closed")
        self._next_id += 1
        request_id = self._next_id
        message = {"id": request_id, **message}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            self._writer.write(json.dumps(message).encode() + b"\n")
            await self._writer.drain()
        timeout = self.timeout_s if timeout_s is None else timeout_s
        try:
            payload = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise ServeTimeoutError(
                f"no response to request {request_id} within {timeout}s",
                timeout_s=timeout,
            ) from None
        if payload.get("ok"):
            return payload
        raise _error_from_payload(payload)

    async def infer(
        self,
        model: str,
        vector: np.ndarray,
        *,
        timeout_s: float | None = None,
        retries: int | None = None,
        deadline_s: float | None = None,
    ) -> ServeResponse:
        """One inference request; returns a :class:`ServeResponse`.

        ``timeout_s`` / ``retries`` override the client-wide defaults for
        this call.  Retries apply only to ``overloaded`` rejections (waiting
        at least the server's ``retry_after_s`` hint), to server-side
        ``deadline_exceeded`` shedding, and to timeouts, with exponential
        backoff; ``closed`` and ``bad_request`` fail immediately.

        ``deadline_s`` is propagated in the request envelope so the server
        can shed the request if it cannot possibly be answered in time; it
        defaults to the effective ``timeout_s``, which makes the server-side
        deadline match what this client will actually wait.
        """
        vector = np.asarray(vector, dtype=np.float64)
        message: dict[str, Any] = {
            "op": "infer",
            "model": model,
            "input": vector.tolist(),
        }
        effective_deadline = (
            deadline_s
            if deadline_s is not None
            else (self.timeout_s if timeout_s is None else timeout_s)
        )
        if effective_deadline is not None:
            message["deadline_s"] = float(effective_deadline)
        attempts = (self.retries if retries is None else int(retries)) + 1
        delay = self.backoff_s
        payload: dict[str, Any] | None = None
        for attempt in range(attempts):
            try:
                payload = await self._call(message, timeout_s=timeout_s)
                break
            except ServerOverloadedError as exc:
                if attempt == attempts - 1:
                    raise
                await asyncio.sleep(max(exc.retry_after_s, delay))
                delay *= 2
            except (ServeTimeoutError, DeadlineExceededError):
                if attempt == attempts - 1:
                    raise
                await asyncio.sleep(delay)
                delay *= 2
        assert payload is not None
        return ServeResponse(
            model=payload["model"],
            output=np.asarray(payload["outputs"], dtype=np.float64),
            batch_size=int(payload["batch_size"]),
            total_cycles=payload["total_cycles"],
            latency_s=payload["latency_s"],
            energy_j=payload["energy_j"],
            queue_wait_s=float(payload["queue_wait_s"]),
            service_s=float(payload["service_s"]),
        )

    async def models(self) -> dict[str, Any]:
        """Descriptions of every served model (enough to rebuild offline)."""
        return (await self._call({"op": "models"}))["models"]

    async def stats(self) -> dict[str, Any]:
        """The server's live counter snapshot."""
        return (await self._call({"op": "stats"}))["stats"]

    async def health(self, timeout_s: float | None = None) -> dict[str, Any]:
        """The server's liveness snapshot (models, queue depth, uptime)."""
        return (await self._call({"op": "health"}, timeout_s=timeout_s))["health"]

    async def chaos(self, latency_s: float, duration_s: float) -> dict[str, Any]:
        """Ask a ``--chaos`` daemon to stall its dispatches (test harness)."""
        return (
            await self._call(
                {"op": "chaos", "latency_s": latency_s, "duration_s": duration_s}
            )
        )["chaos"]

    async def ping(self) -> bool:
        """Liveness probe."""
        return bool((await self._call({"op": "ping"})).get("pong"))

    async def close(self) -> None:
        """Close the socket and stop the reader task."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()
