"""Node-pipelined whole-model execution for the serving layer.

``Session.run_model`` executes a model's nodes sequentially: node 0 of a
batch must finish before node 1 starts, and the engine sits idle between
batches.  Under a request stream that serialization is wasted capacity —
while batch *k* runs node N, nothing stops node N+1 from running batch
*k−1*, exactly like instruction pipelining.

:class:`ModelPipeline` builds that overlap out of the pieces the engine
seam already provides: one worker thread per model node, each with its
**own** :class:`~repro.engine.session.Session` (engines may keep per-run
state, and per-stage sessions also give each stage a private prepared-layer
cache with no cross-stage lock traffic).  A job enters at node 0 and flows
stage to stage through single-consumer queues; with S stages and a full
pipeline, S batches are in flight at once.

Every stage dispatches through ``Session.run_node`` — the same call
``run_model`` makes — so a pipelined result is bit-identical to the
sequential path: same engine runs, same row-wise propagation, same
:class:`ModelRunResult`.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.errors import ServeError

__all__ = ["ModelPipeline"]

_STOP = object()


@dataclass
class _Job:
    """One batch travelling down the pipeline."""

    matrix: np.ndarray
    batched: bool
    future: Future
    node_outputs: dict[str, np.ndarray] = field(default_factory=dict)
    records: list[Any] = field(default_factory=list)
    error: BaseException | None = None


class ModelPipeline:
    """Overlap node N of batch k with node N+1 of batch k−1.

    Args:
        compressed: a :class:`~repro.models.compressed.CompressedModel`
            (compress once, up front — stages never compress).
        engine: engine registry name every stage runs on.
        config: accelerator configuration shared by all stages; its
            ``num_pes`` must match the compressed model's.

    ``submit`` is thread-safe and returns a ``concurrent.futures.Future``
    resolving to the same :class:`ModelRunResult` a ``Session.run_model``
    call with the same inputs would return.  Jobs complete in submission
    order (single-consumer stage queues preserve FIFO).  ``close`` drains
    in-flight jobs and joins the stage threads.
    """

    def __init__(
        self,
        compressed: Any,
        engine: str = "cycle",
        config: EIEConfig | None = None,
    ) -> None:
        config = config or EIEConfig()
        if compressed.num_pes != config.num_pes:
            raise ServeError(
                f"model is compressed for {compressed.num_pes} PEs but the "
                f"pipeline configuration has {config.num_pes}"
            )
        self.compressed = compressed
        self.engine_name = engine
        self.config = config
        self._nodes = list(compressed.model)
        self._queues: list[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in self._nodes
        ]
        self._sessions = [Session(config=config) for _ in self._nodes]
        self._closed = False
        self._close_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._stage_loop,
                args=(index,),
                name=f"repro-serve-{compressed.model.name}-node{index}",
                daemon=True,
            )
            for index in range(len(self._nodes))
        ]
        for thread in self._threads:
            thread.start()

    @property
    def num_stages(self) -> int:
        return len(self._nodes)

    def submit(self, activations: np.ndarray, batched: bool = True) -> Future:
        """Enqueue one ``(batch, input_size)`` matrix; returns a Future."""
        if self._closed:
            raise ServeError("pipeline is closed")
        matrix = np.ascontiguousarray(np.asarray(activations, dtype=np.float64))
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ServeError(
                f"pipeline input must be a non-empty (batch, n_in) matrix, "
                f"got shape {matrix.shape}"
            )
        future: Future = Future()
        self._queues[0].put(_Job(matrix=matrix, batched=batched, future=future))
        return future

    def _stage_loop(self, index: int) -> None:
        node = self._nodes[index]
        layer = self.compressed.layers[node.name]
        session = self._sessions[index]
        ir = self.compressed.model
        last = index == len(self._nodes) - 1
        while True:
            job = self._queues[index].get()
            if job is _STOP:
                if not last:
                    self._queues[index + 1].put(_STOP)
                return
            if job.error is None:
                try:
                    inputs = ir.node_input(node, job.matrix, job.node_outputs)
                    record, outputs = session.run_node(
                        self.engine_name, node, layer, inputs, self.config
                    )
                    job.node_outputs[node.name] = outputs
                    job.records.append(record)
                except BaseException as exc:  # propagate to the caller's future
                    job.error = exc
            if last:
                self._finish(job)
            else:
                self._queues[index + 1].put(job)

    def _finish(self, job: _Job) -> None:
        if job.error is not None:
            job.future.set_exception(job.error)
            return
        from repro.models.compressed import ModelRunResult

        ir = self.compressed.model
        job.future.set_result(
            ModelRunResult(
                model_name=ir.name,
                engine=self.engine_name,
                num_pes=self.config.num_pes,
                batch_size=job.matrix.shape[0],
                batched=job.batched,
                nodes=tuple(job.records),
                node_outputs=job.node_outputs,
                outputs=job.node_outputs[ir.nodes[-1].name],
            )
        )

    def close(self) -> None:
        """Drain in-flight jobs, then stop and join every stage thread."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._queues[0].put(_STOP)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "ModelPipeline":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
