"""Chaos harness: seeded fault plans against a running serve fleet.

PR 8 proved the *data plane* with injected SRAM bit flips; this module does
the same for the *control plane*.  A :class:`ChaosPlan` is a deterministic
(seeded) schedule of faults — SIGKILL a worker mid-load, stall a worker's
dispatch loop, corrupt an artifact-store file — executed by
:func:`execute_plan` against a live :class:`~repro.serve.fleet
.FleetSupervisor` while the closed-loop load generator drives a
:class:`~repro.serve.fleet.FleetClient` through it.

:func:`run_chaos_acceptance` is the whole experiment in one call, and its
invariants are the point:

* **zero wrong bits** — every completed response is captured and (by the
  caller) bit-compared against offline ``Session.run_model``;
* **no silent losses** — every non-completed request surfaced as a typed
  retriable error (``completed + rejected + retriable == requests`` and
  ``errors == 0``);
* **bounded recovery** — every killed worker is back and healthy within
  the restart-backoff budget, and no slot burned its crash-loop budget.

Store corruption is deliberately *harmless by construction*: the store
CRC-validates on load and recomputes, so a corrupted artifact may cost a
restarted worker time, never bits.  The harness exists to keep that true.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigurationError, FleetError
from repro.serve.fleet import FleetClient, FleetPolicy, FleetSupervisor
from repro.serve.loadgen import LoadReport, run_closed_loop
from repro.serve.protocol import AsyncServeClient
from repro.utils.rng import derive_seed, make_rng

__all__ = [
    "ChaosEvent",
    "ChaosPlan",
    "ChaosOutcome",
    "execute_plan",
    "run_chaos_acceptance",
]


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault.

    Attributes:
        at_s: when to fire, seconds after the plan starts.
        kind: ``"kill"`` (SIGKILL the worker process), ``"stall"`` (inject
            per-dispatch latency via the ``chaos`` wire verb) or
            ``"corrupt"`` (overwrite bytes inside one artifact-store file).
        worker: target worker index (ignored for ``corrupt``).
        latency_s / duration_s: stall shape (``stall`` only).
    """

    at_s: float
    kind: str
    worker: int = 0
    latency_s: float = 0.0
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "stall", "corrupt"):
            raise ConfigurationError(f"unknown chaos event kind {self.kind!r}")
        if self.at_s < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.at_s}")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, reproducible schedule of :class:`ChaosEvent`.

    Same seed + same shape parameters → the same plan, so a chaos run is a
    *regression test*, not a dice roll.
    """

    events: tuple[ChaosEvent, ...]
    seed: int = 0

    @classmethod
    def generate(
        cls,
        seed: int,
        workers: int,
        duration_s: float,
        kills: int = 2,
        stalls: int = 1,
        corruptions: int = 1,
    ) -> "ChaosPlan":
        """Draw a deterministic plan from the shared RNG helpers.

        Kills land between 10% and 70% of the window so the fleet has load
        in flight when they hit and time to recover before the run ends;
        stalls and corruptions anywhere in the first 80%.
        """
        if workers < 1:
            raise ConfigurationError(f"need >= 1 worker, got {workers}")
        if duration_s <= 0:
            raise ConfigurationError(f"duration_s must be positive, got {duration_s}")
        rng = make_rng(derive_seed(seed, "serve-chaos", workers, kills, stalls))
        events: list[ChaosEvent] = []
        for _ in range(kills):
            events.append(
                ChaosEvent(
                    at_s=float(rng.uniform(0.1, 0.7) * duration_s),
                    kind="kill",
                    worker=int(rng.integers(workers)),
                )
            )
        for _ in range(stalls):
            events.append(
                ChaosEvent(
                    at_s=float(rng.uniform(0.0, 0.8) * duration_s),
                    kind="stall",
                    worker=int(rng.integers(workers)),
                    latency_s=float(rng.uniform(0.02, 0.1)),
                    duration_s=float(rng.uniform(0.3, 1.0)),
                )
            )
        for _ in range(corruptions):
            events.append(
                ChaosEvent(
                    at_s=float(rng.uniform(0.0, 0.8) * duration_s),
                    kind="corrupt",
                )
            )
        return cls(events=tuple(sorted(events, key=lambda e: e.at_s)), seed=seed)

    @property
    def kills(self) -> int:
        return sum(1 for event in self.events if event.kind == "kill")

    def describe(self) -> list[dict[str, Any]]:
        return [
            {
                "at_s": round(event.at_s, 3),
                "kind": event.kind,
                "worker": event.worker,
                "latency_s": event.latency_s,
                "duration_s": event.duration_s,
            }
            for event in self.events
        ]


def _corrupt_store_file(store_root: Path, ordinal: int) -> str | None:
    """Overwrite bytes inside one store artifact; returns the path hit.

    The choice is deterministic per ``ordinal`` given a fixed file set; the
    store's CRC/zip validation must detect the damage on next load and
    recompute — the invariant this fault exists to test.
    """
    files = sorted(
        path
        for pattern in ("layers/*.npz", "prepared/*.npz", "models/*.json", "shards/*.json")
        for path in store_root.glob(pattern)
    )
    if not files:
        return None
    target = files[ordinal % len(files)]
    try:
        data = bytearray(target.read_bytes())
        if not data:
            return None
        # Stamp garbage mid-file: enough to break the CRC, cheap to apply.
        middle = len(data) // 2
        for offset in range(min(32, len(data) - middle)):
            data[middle + offset] ^= 0xA5
        target.write_bytes(bytes(data))
    except OSError:
        return None
    return str(target)


async def execute_plan(
    plan: ChaosPlan,
    supervisor: FleetSupervisor,
    store_root: str | Path | None = None,
) -> list[dict[str, Any]]:
    """Fire every event of ``plan`` at its scheduled time; returns a log.

    Stall events talk to the target worker over a one-shot protocol client
    (the workers must run with ``--chaos``); a stall aimed at a worker that
    is down is logged as skipped — the plan stays deterministic, the world
    does not.
    """
    log: list[dict[str, Any]] = []
    start = time.monotonic()
    for ordinal, event in enumerate(plan.events):
        delay = event.at_s - (time.monotonic() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        entry: dict[str, Any] = {"at_s": round(event.at_s, 3), "kind": event.kind}
        if event.kind == "kill":
            index = event.worker % supervisor.workers
            entry["worker"] = index
            entry["pid"] = supervisor.kill_worker(index)
        elif event.kind == "stall":
            index = event.worker % supervisor.workers
            entry["worker"] = index
            entry["latency_s"] = event.latency_s
            endpoint = supervisor.endpoints()[index]
            entry["applied"] = False
            if endpoint is not None:
                try:
                    client = await asyncio.wait_for(
                        AsyncServeClient.connect(*endpoint), timeout=2.0
                    )
                    try:
                        await client.chaos(event.latency_s, event.duration_s)
                        entry["applied"] = True
                    finally:
                        await client.close()
                except Exception as exc:
                    entry["error"] = str(exc)
        elif event.kind == "corrupt":
            if store_root is None:
                entry["applied"] = False
            else:
                entry["path"] = _corrupt_store_file(Path(store_root), ordinal)
                entry["applied"] = entry["path"] is not None
        log.append(entry)
    return log


@dataclass
class ChaosOutcome:
    """Everything one acceptance run produced.

    ``violations`` is empty iff every control-plane invariant held; the
    *data-plane* invariant (zero wrong bits) is checked by the caller
    against ``report.outputs`` because only the caller has the offline
    session to compare with.
    """

    report: LoadReport
    chaos_log: list[dict[str, Any]]
    fleet_stats: dict[str, Any]
    client_stats: dict[str, Any]
    violations: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return all(worker["state"] == "healthy" for worker in self.fleet_stats["workers"])


async def run_chaos_acceptance(
    worker_args: Sequence[str],
    inputs: np.ndarray,
    model: str,
    *,
    workers: int = 3,
    concurrency: int = 8,
    plan: ChaosPlan | None = None,
    policy: FleetPolicy | None = None,
    env: dict[str, str] | None = None,
    store_root: str | Path | None = None,
    client_timeout_s: float = 30.0,
    recovery_timeout_s: float = 30.0,
) -> ChaosOutcome:
    """Run the full chaos experiment: fleet + closed-loop load + fault plan.

    Boots a ``workers``-strong fleet from ``worker_args`` (which must
    include ``--chaos`` for stall events to land), drives every row of
    ``inputs`` through a :class:`FleetClient` under ``concurrency``
    closed-loop workers while ``plan`` executes, then waits for the fleet
    to recover and checks the control-plane invariants.  Outputs are
    captured so the caller can bit-verify them offline.
    """
    supervisor = FleetSupervisor(
        worker_args, workers=workers, policy=policy, env=env
    )
    async with supervisor:
        client = await FleetClient.connect(
            supervisor.endpoints, timeout_s=client_timeout_s
        )
        try:
            chaos_task = (
                asyncio.create_task(execute_plan(plan, supervisor, store_root))
                if plan is not None and plan.events
                else None
            )
            report = await run_closed_loop(
                lambda vector: client.infer(model, vector),
                inputs,
                concurrency=concurrency,
                capture_outputs=True,
            )
            chaos_log = await chaos_task if chaos_task is not None else []
            # Let every restart in flight finish before judging recovery.
            try:
                await supervisor.wait_healthy(timeout_s=recovery_timeout_s)
            except FleetError as exc:
                chaos_log.append({"kind": "recovery_timeout", "error": str(exc)})
            fleet_stats = supervisor.stats()
            client_stats = client.stats()
        finally:
            await client.close()

    violations: list[str] = []
    kills = plan.kills if plan is not None else 0
    accounted = report.completed + report.rejected + report.retriable + report.errors
    if accounted != report.requests:
        violations.append(
            f"request accounting leak: {accounted} accounted != "
            f"{report.requests} issued (a request vanished without a response "
            f"or a typed error)"
        )
    if report.errors:
        violations.append(
            f"{report.errors} request(s) failed with untyped/non-retriable "
            f"errors (every failure must be a typed retriable error)"
        )
    if report.completed == 0:
        violations.append("no request completed — the fleet never served load")
    restarts = fleet_stats["restarts"]
    if restarts < kills:
        violations.append(
            f"only {restarts} restart(s) recorded for {kills} kill(s) — "
            f"a crashed worker was not brought back"
        )
    if fleet_stats["crash_loops"]:
        violations.append(
            f"{fleet_stats['crash_loops']} worker slot(s) exhausted the "
            f"crash-loop budget"
        )
    unhealthy = [
        worker["worker"]
        for worker in fleet_stats["workers"]
        if worker["state"] != "healthy"
    ]
    if unhealthy:
        violations.append(
            f"workers {unhealthy} not healthy after the recovery window"
        )
    return ChaosOutcome(
        report=report,
        chaos_log=chaos_log,
        fleet_stats=fleet_stats,
        client_stats=client_stats,
        violations=violations,
    )
