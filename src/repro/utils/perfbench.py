"""Timing helpers for the tracked perf-regression harness.

``benchmarks/perf/bench_perf_hotpaths.py`` uses these to time the
compression / preparation / simulation hot paths, record the trajectory in
``BENCH_hotpaths.json`` at the repository root, and fail CI when a recorded
throughput regresses past a threshold against the committed baseline.

The helpers are deliberately tiny and dependency-free so they can also be
used ad hoc (e.g. from a REPL) when hunting a regression:

* :func:`time_call` — best-of-N wall-clock timing with warmup;
* :class:`BenchResult` — one named measurement with a throughput;
* :func:`merge_results` — read-modify-write of the benchmark JSON, keyed by
  ``<mode>/<name>`` so quick (CI) and paper-scale entries coexist;
* :func:`check_against_baseline` — the regression gate.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Mapping

__all__ = [
    "BenchResult",
    "time_call",
    "run_benchmark",
    "merge_results",
    "check_against_baseline",
]

#: On-disk schema version of BENCH_hotpaths.json.
SCHEMA_VERSION = 1


def time_call(
    fn: Callable[[], Any], repeats: int = 3, warmup: int = 1
) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``.

    ``warmup`` extra calls run first (cold caches, lazy imports and allocator
    growth would otherwise pollute the first sample).  Best-of is used rather
    than the mean because timing noise on shared machines is one-sided.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass(frozen=True)
class BenchResult:
    """One named measurement.

    Attributes:
        name: benchmark entry name (e.g. ``"csc_encode"``).
        seconds: best-of wall-clock seconds per call.
        repeats: how many timed calls produced ``seconds``.
        work_items: units of work one call processes (for throughput).
        unit: what a work item is (e.g. ``"dense elements"``).
        params: free-form problem description (sizes, density, PEs, ...).
        backend: compute tier the measurement ran on (``"numpy"`` or
            ``"native"``); the regression gate only compares entries whose
            backend matches, so a native-recorded baseline never gates a
            numpy run (or vice versa).
    """

    name: str
    seconds: float
    repeats: int
    work_items: float
    unit: str
    params: dict = field(default_factory=dict)
    backend: str = "numpy"

    @property
    def throughput(self) -> float:
        """Work items per second (0 if the timer somehow reported 0)."""
        return self.work_items / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form (throughput included for easy reading)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "repeats": self.repeats,
            "work_items": self.work_items,
            "unit": self.unit,
            "throughput": self.throughput,
            "params": dict(self.params),
            "backend": self.backend,
        }


def run_benchmark(
    name: str,
    fn: Callable[[], Any],
    work_items: float,
    unit: str,
    params: Mapping[str, Any] | None = None,
    repeats: int = 3,
    warmup: int = 1,
    backend: str = "numpy",
) -> BenchResult:
    """Time ``fn`` and package the measurement as a :class:`BenchResult`."""
    seconds = time_call(fn, repeats=repeats, warmup=warmup)
    return BenchResult(
        name=name,
        seconds=seconds,
        repeats=repeats,
        work_items=float(work_items),
        unit=unit,
        params=dict(params or {}),
        backend=backend,
    )


def _installed_numba_version() -> str | None:
    """Installed numba version from distribution metadata (no import cost)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("numba")
    except Exception:
        return None


def _load(path: Path) -> dict:
    if path.exists():
        with path.open() as handle:
            data = json.load(handle)
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{path} has schema {data.get('schema')!r}, expected {SCHEMA_VERSION}"
            )
        return data
    return {"schema": SCHEMA_VERSION, "entries": {}}


def merge_results(
    path: Path | str,
    results: list[BenchResult],
    mode: str,
) -> dict:
    """Merge ``results`` into the benchmark JSON at ``path`` under ``mode``.

    Entries are keyed ``<mode>/<name>`` so the paper-scale trajectory and the
    quick CI entries live side by side; only the freshly measured keys are
    replaced.  Returns the merged document (already written to disk).
    """
    path = Path(path)
    data = _load(path)
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    # Environment facets that change what a throughput number means: the
    # machine, its core count (prange kernels scale with it) and the numba
    # version (or None for a pure-numpy environment).
    machine = platform.machine() or "unknown"
    cpu_count = os.cpu_count() or 1
    numba_version = _installed_numba_version()
    for result in results:
        entry = result.to_dict()
        entry["recorded_at"] = stamp
        entry["machine"] = machine
        entry["cpu_count"] = cpu_count
        entry["numba_version"] = numba_version
        data["entries"][f"{mode}/{result.name}"] = entry
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def check_against_baseline(
    results: list[BenchResult],
    baseline_path: Path | str,
    mode: str,
    max_slowdown: float = 2.0,
) -> list[str]:
    """Compare fresh measurements with the committed baseline JSON.

    Returns a list of human-readable failure strings, one per entry whose
    throughput dropped by more than ``max_slowdown`` versus the baseline
    (empty list = no regression).  Entries absent from the baseline are
    skipped — they have no trajectory to regress against yet.  So are
    entries whose recorded ``backend`` differs from the fresh measurement's
    (pre-backend baselines count as ``"numpy"``): a native-tier baseline
    must never gate a numpy-tier run, or vice versa.
    """
    if max_slowdown <= 1.0:
        raise ValueError(f"max_slowdown must be > 1, got {max_slowdown}")
    baseline_path = Path(baseline_path)
    if not baseline_path.exists():
        return []
    baseline = _load(baseline_path)["entries"]
    failures: list[str] = []
    for result in results:
        recorded = baseline.get(f"{mode}/{result.name}")
        if not recorded:
            continue
        if recorded.get("backend", "numpy") != result.backend:
            continue
        old_throughput = float(recorded.get("throughput", 0.0))
        if old_throughput <= 0.0 or result.throughput <= 0.0:
            continue
        slowdown = old_throughput / result.throughput
        if slowdown > max_slowdown:
            failures.append(
                f"{mode}/{result.name}: throughput {result.throughput:.3e} "
                f"{result.unit}/s is {slowdown:.2f}x slower than the baseline "
                f"{old_throughput:.3e} (limit {max_slowdown:.2f}x)"
            )
    return failures
