"""Deterministic random-number helpers.

Every synthetic workload in the library is generated from a
:class:`numpy.random.Generator` seeded through these helpers, so that the
benchmark tables and figures are exactly reproducible from run to run.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may already be a generator (returned unchanged), an integer, or
    ``None`` for a default deterministic seed of 0.  The library never uses
    OS entropy so results are reproducible.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(int(seed))


def derive_seed(base: int, *names: object) -> int:
    """Derive a stable child seed from ``base`` and a sequence of labels.

    The derivation hashes the labels with SHA-256 so that, for example, each
    benchmark layer gets an independent but reproducible weight pattern:

    >>> derive_seed(42, "Alex-6", "weights") == derive_seed(42, "Alex-6", "weights")
    True
    >>> derive_seed(42, "Alex-6") != derive_seed(42, "Alex-7")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(base)).encode("utf-8"))
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")
