"""Lightweight argument validation helpers.

These helpers raise :class:`repro.errors.ConfigurationError` with a message
that names the offending parameter, which keeps the constructors of the
configuration dataclasses short and their error messages consistent.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_between",
    "require_in",
    "require_power_of_two",
    "require_vector",
    "require_matrix",
]


def require_positive(name: str, value: float) -> float:
    """Return ``value`` if it is strictly positive, else raise."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Return ``value`` if it is >= 0, else raise."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_between(name: str, value: float, low: float, high: float) -> float:
    """Return ``value`` if ``low <= value <= high``, else raise."""
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_in(name: str, value: object, allowed: Iterable[object]) -> object:
    """Return ``value`` if it is one of ``allowed``, else raise."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed}, got {value!r}")
    return value


def require_power_of_two(name: str, value: int) -> int:
    """Return ``value`` if it is a positive power of two, else raise."""
    value = int(value)
    if value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{name} must be a power of two, got {value!r}")
    return value


def require_vector(name: str, array: np.ndarray) -> np.ndarray:
    """Return ``array`` as a 1-D float array, raising on wrong dimensionality."""
    array = np.asarray(array)
    if array.ndim != 1:
        raise ConfigurationError(f"{name} must be a 1-D vector, got shape {array.shape}")
    return array


def require_matrix(name: str, array: np.ndarray) -> np.ndarray:
    """Return ``array`` as a 2-D array, raising on wrong dimensionality."""
    array = np.asarray(array)
    if array.ndim != 2:
        raise ConfigurationError(f"{name} must be a 2-D matrix, got shape {array.shape}")
    return array
