"""JSON-normalisation helpers shared by the spec layers.

Both :class:`~repro.experiments.spec.ExperimentSpec` and
:class:`~repro.models.spec.ModelSpec` store their mapping fields in a
canonical JSON-friendly form so that equality is representation-independent
(JSON round-trips lists; callers pass tuples and numpy scalars).  The
normaliser lives here — below both spec modules — so the two layers cannot
diverge.
"""

from __future__ import annotations

from typing import Any

__all__ = ["jsonable"]


def jsonable(value: Any) -> Any:
    """Recursively convert tuples and numpy scalars to JSON-friendly types."""
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):  # pragma: no cover - non-numpy .item()
            return value
    return value
