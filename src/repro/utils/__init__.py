"""Shared utilities: RNG helpers, argument validation, JSON normalisation."""

from repro.utils.rng import derive_seed, make_rng
from repro.utils.serialization import jsonable
from repro.utils.validation import (
    require_between,
    require_in,
    require_matrix,
    require_non_negative,
    require_positive,
    require_power_of_two,
    require_vector,
)

__all__ = [
    "derive_seed",
    "jsonable",
    "make_rng",
    "require_between",
    "require_in",
    "require_matrix",
    "require_non_negative",
    "require_positive",
    "require_power_of_two",
    "require_vector",
]
