"""Exception hierarchy for the EIE reproduction library.

All exceptions raised intentionally by :mod:`repro` derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a hardware or simulation configuration is invalid."""


class EncodingError(ReproError):
    """Raised when sparse-matrix encoding or decoding fails."""


class CompressionError(ReproError):
    """Raised when the Deep Compression pipeline is misused."""


class SimulationError(ReproError):
    """Raised when a simulator is driven with inconsistent inputs."""


class WorkloadError(ReproError):
    """Raised when a benchmark workload specification is invalid."""


class ShardError(ReproError):
    """Raised when the sharded execution layer is misused."""


class ShardCoordinateError(ShardError):
    """Raised for invalid shard coordinates.

    A shard is addressed by ``(shard_id, shard_count)``; the id must satisfy
    ``0 <= shard_id < shard_count`` and the count must be at least 1.

    Attributes:
        shard_id: the offending shard index (``None`` when only the count
            is invalid).
        shard_count: the offending shard count.
    """

    def __init__(
        self, message: str, shard_id: int | None = None, shard_count: int | None = None
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.shard_count = shard_count


class ShardMergeError(ShardError):
    """Raised when a shard set cannot be merged into one result.

    Attributes:
        missing: shard ids absent from (or corrupt in) the store.
        overlapping: shard ids whose point ranges collide or fail to tile
            the expanded grid.
    """

    def __init__(
        self,
        message: str,
        missing: tuple[int, ...] = (),
        overlapping: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.missing = tuple(missing)
        self.overlapping = tuple(overlapping)


class ServeError(ReproError):
    """Raised when the serving layer is misused or misconfigured."""


class ServerClosedError(ServeError):
    """Raised when a request reaches a server that is draining or closed."""


class ServeTimeoutError(ServeError):
    """Raised when a client request receives no response within its timeout.

    Attributes:
        timeout_s: the per-request deadline that expired, in seconds.
    """

    def __init__(self, message: str, timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.timeout_s = float(timeout_s)


class ServerOverloadedError(ServeError):
    """Raised when a request is rejected by admission control.

    Attributes:
        retry_after_s: suggested client back-off, estimated from the queue
            depth and the server's smoothed per-request service time.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class DeadlineExceededError(ServeError):
    """Raised when a request's deadline expired before it could be served.

    The server sheds doomed work early: a queued request whose propagated
    ``deadline_s`` passes before its batch dispatches is failed with this
    error instead of being computed.  The request was never run, so a retry
    (with a fresh deadline) is always safe.

    Attributes:
        deadline_s: the relative deadline that expired, in seconds.
    """

    def __init__(self, message: str, deadline_s: float = 0.0) -> None:
        super().__init__(message)
        self.deadline_s = float(deadline_s)


class FleetError(ReproError):
    """Raised when the multi-worker serve fleet is misused or gives up.

    Attributes:
        worker_id: index of the worker the failure concerns (``None`` for
            fleet-wide conditions).
    """

    def __init__(self, message: str, worker_id: int | None = None) -> None:
        super().__init__(message)
        self.worker_id = worker_id


class WorkerCrashedError(FleetError):
    """Raised when a fleet worker process died (or was unreachable).

    Attributes:
        worker_id: index of the crashed worker.
        restarts: how many times the supervisor has restarted it so far.
        retry_after_s: suggested back-off — roughly the worker's pending
            restart delay, so a retry lands after the replacement is up.
    """

    def __init__(
        self,
        message: str,
        worker_id: int | None = None,
        restarts: int = 0,
        retry_after_s: float = 0.0,
    ) -> None:
        super().__init__(message, worker_id=worker_id)
        self.restarts = int(restarts)
        self.retry_after_s = float(retry_after_s)


class CircuitOpenError(FleetError):
    """Raised when a request finds every eligible worker's breaker open.

    Attributes:
        worker_id: the single worker concerned, or ``None`` when the whole
            fleet was open.
        retry_after_s: seconds until the soonest breaker half-opens and
            will admit a probe request again.
    """

    def __init__(
        self,
        message: str,
        worker_id: int | None = None,
        retry_after_s: float = 0.0,
    ) -> None:
        super().__init__(message, worker_id=worker_id)
        self.retry_after_s = float(retry_after_s)


#: Errors a serve/fleet caller may safely retry: the request was rejected,
#: shed, or lost before completing, never half-applied (inference is pure,
#: so even a request recomputed after a worker crash is merely idempotent
#: work, not a correctness hazard).
RETRIABLE_SERVE_ERRORS = (
    ServerOverloadedError,
    ServeTimeoutError,
    ServerClosedError,
    DeadlineExceededError,
    WorkerCrashedError,
    CircuitOpenError,
)


def is_retriable(error: BaseException) -> bool:
    """Whether a serving-path failure is a typed, safely-retriable error."""
    return isinstance(error, RETRIABLE_SERVE_ERRORS)
