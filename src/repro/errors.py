"""Exception hierarchy for the EIE reproduction library.

All exceptions raised intentionally by :mod:`repro` derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a hardware or simulation configuration is invalid."""


class EncodingError(ReproError):
    """Raised when sparse-matrix encoding or decoding fails."""


class CompressionError(ReproError):
    """Raised when the Deep Compression pipeline is misused."""


class SimulationError(ReproError):
    """Raised when a simulator is driven with inconsistent inputs."""


class WorkloadError(ReproError):
    """Raised when a benchmark workload specification is invalid."""
