"""Exception hierarchy for the EIE reproduction library.

All exceptions raised intentionally by :mod:`repro` derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a hardware or simulation configuration is invalid."""


class EncodingError(ReproError):
    """Raised when sparse-matrix encoding or decoding fails."""


class CompressionError(ReproError):
    """Raised when the Deep Compression pipeline is misused."""


class SimulationError(ReproError):
    """Raised when a simulator is driven with inconsistent inputs."""


class WorkloadError(ReproError):
    """Raised when a benchmark workload specification is invalid."""


class ShardError(ReproError):
    """Raised when the sharded execution layer is misused."""


class ShardCoordinateError(ShardError):
    """Raised for invalid shard coordinates.

    A shard is addressed by ``(shard_id, shard_count)``; the id must satisfy
    ``0 <= shard_id < shard_count`` and the count must be at least 1.

    Attributes:
        shard_id: the offending shard index (``None`` when only the count
            is invalid).
        shard_count: the offending shard count.
    """

    def __init__(
        self, message: str, shard_id: int | None = None, shard_count: int | None = None
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.shard_count = shard_count


class ShardMergeError(ShardError):
    """Raised when a shard set cannot be merged into one result.

    Attributes:
        missing: shard ids absent from (or corrupt in) the store.
        overlapping: shard ids whose point ranges collide or fail to tile
            the expanded grid.
    """

    def __init__(
        self,
        message: str,
        missing: tuple[int, ...] = (),
        overlapping: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.missing = tuple(missing)
        self.overlapping = tuple(overlapping)


class ServeError(ReproError):
    """Raised when the serving layer is misused or misconfigured."""


class ServerClosedError(ServeError):
    """Raised when a request reaches a server that is draining or closed."""


class ServeTimeoutError(ServeError):
    """Raised when a client request receives no response within its timeout.

    Attributes:
        timeout_s: the per-request deadline that expired, in seconds.
    """

    def __init__(self, message: str, timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.timeout_s = float(timeout_s)


class ServerOverloadedError(ServeError):
    """Raised when a request is rejected by admission control.

    Attributes:
        retry_after_s: suggested client back-off, estimated from the queue
            depth and the server's smoothed per-request service time.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
