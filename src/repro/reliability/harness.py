"""Graceful-degradation harness: faulted models through the golden path.

The harness never forks the execution machinery: a faulted
:class:`~repro.models.compressed.CompressedModel` is a *valid* compressed
model (the injector re-encodes the faulted image canonically), so it runs
through the completely unmodified
:meth:`~repro.engine.session.Session.run_model`, and divergence is scored
against the golden run of the unfaulted model on the same engine, inputs
and configuration.  Because propagation inside ``run_model`` reduces
bit-identically on every engine and executor, both runs — and therefore
every metric here — are byte-reproducible from ``(seed, ber, scheme)``
alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.reliability.faults import (
    FaultConfig,
    ModelFaultInjection,
    inject_model_faults,
)

__all__ = ["DegradationResult", "compare_model_runs", "run_degradation"]


def _difference_metrics(golden: np.ndarray, faulted: np.ndarray) -> dict[str, Any]:
    error = faulted - golden
    rmse = float(np.sqrt(np.mean(np.square(error))))
    reference = float(np.linalg.norm(golden))
    distance = float(np.linalg.norm(error))
    if reference > 0.0:
        relative = distance / reference
    else:
        relative = 0.0 if distance == 0.0 else float("inf")
    return {
        "rmse": rmse,
        "relative_error": relative,
        "bit_identical": bool(np.array_equal(golden, faulted)),
    }


def compare_model_runs(golden: Any, faulted: Any) -> dict[str, Any]:
    """Score a faulted :class:`ModelRunResult` against the golden run.

    Returns output-level divergence (RMSE, relative L2 error, top-1
    agreement over the batch, bit identity) plus the per-node error
    propagation profile — how far the corruption has spread by each layer.
    """
    per_node = []
    for name, golden_outputs in golden.node_outputs.items():
        metrics = _difference_metrics(golden_outputs, faulted.node_outputs[name])
        per_node.append({"node": name, **metrics})
    golden_top1 = np.argmax(np.atleast_2d(golden.outputs), axis=1)
    faulted_top1 = np.argmax(np.atleast_2d(faulted.outputs), axis=1)
    output_metrics = _difference_metrics(golden.outputs, faulted.outputs)
    return {
        "output_rmse": output_metrics["rmse"],
        "output_relative_error": output_metrics["relative_error"],
        "top1_agreement": float(np.mean(golden_top1 == faulted_top1)),
        "bit_identical": all(entry["bit_identical"] for entry in per_node),
        "per_node": per_node,
    }


@dataclass
class DegradationResult:
    """One complete fault-injection evaluation of a model.

    Attributes:
        fault: the injected fault configuration.
        injection: per-layer fault statistics (what the SRAM image saw).
        metrics: divergence of the faulted run from the golden run
            (:func:`compare_model_runs` output).
        golden: the unfaulted :class:`ModelRunResult`.
        faulted: the faulted :class:`ModelRunResult`.
    """

    fault: FaultConfig
    injection: ModelFaultInjection
    metrics: dict[str, Any]
    golden: Any
    faulted: Any


def run_degradation(
    session: Any,
    engine: str,
    model: Any,
    inputs: np.ndarray,
    fault: FaultConfig,
    config: Any = None,
    golden_run: Any = None,
) -> DegradationResult:
    """Run the golden and the faulted model and score the divergence.

    Args:
        session: the :class:`~repro.engine.session.Session` to run through.
        engine: engine registry name (``"functional"`` is the fast choice
            for accuracy studies; timing engines work identically).
        model: a :class:`~repro.models.ir.ModelIR` (compressed through the
            session) or an existing :class:`CompressedModel`.
        inputs: model input vector or ``(batch, input_size)`` matrix.
        fault: the fault configuration to inject.
        config: accelerator configuration (defaults to the session's).
        golden_run: an existing golden :class:`ModelRunResult` for these
            inputs, to share across a BER/scheme sweep.
    """
    from repro.models.compressed import CompressedModel

    config = config or session.default_config
    if isinstance(model, CompressedModel):
        compressed = model
    else:
        compressed = session.compress_model(model, config.num_pes)
    if golden_run is None:
        golden_run = session.run_model(engine, compressed, inputs, config)
    injection = inject_model_faults(compressed, fault)
    if injection.changed:
        faulted_run = session.run_model(engine, injection.model, inputs, config)
    else:
        # Every flip was corrected (or none was sampled): the faulted model
        # shares the golden layers object-for-object, so the golden run *is*
        # the faulted run — skip the redundant execution.
        faulted_run = golden_run
    metrics = compare_model_runs(golden_run, faulted_run)
    return DegradationResult(
        fault=fault,
        injection=injection,
        metrics=metrics,
        golden=golden_run,
        faulted=faulted_run,
    )
