"""SECDED(72,64) and parity ECC codecs over 64-bit SRAM words.

EIE keeps every compressed weight bit in on-chip SRAM, so the stored image
is exposed to soft errors for the whole lifetime of the deployment.  This
module models the three protection levels the reliability study sweeps:

* ``none`` — raw 64-bit words, every flip lands in the data;
* ``parity`` — one parity bit per 64-bit word: any odd number of flips is
  *detected* (the word can be reloaded from the off-chip golden copy), an
  even number of flips silently corrupts the data;
* ``secded`` — the classic Hamming(71,64) + overall-parity SECDED(72,64)
  code: one flip per word is *corrected* in place, two flips are *detected*
  (reload), three or more may alias into a miscorrection.

The SECDED codeword layout follows the textbook construction: positions
``1..71`` hold the Hamming code (check bits at the power-of-two positions
``1, 2, 4, 8, 16, 32, 64``, data bits everywhere else), and position ``0``
is the overall parity over the full word.  The syndrome of a received word
is the XOR of the positions of its set bits; a single flipped bit makes the
syndrome point exactly at itself.

Only faulted words are ever passed through the codec — a clean codeword
decodes to itself by construction — so the per-word Python-int arithmetic
here never touches a hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "ECC_SCHEMES",
    "ECC_DATA_BITS",
    "ECC_CHECK_BITS",
    "SECDED_DATA_POSITIONS",
    "SECDED_CHECK_POSITIONS",
    "SecdedResult",
    "secded_encode",
    "secded_decode",
    "ecc_check_bits",
]

#: Protection schemes the fault model and the Pareto experiment sweep.
ECC_SCHEMES = ("none", "parity", "secded")

#: Data payload of one protected SRAM word.
ECC_DATA_BITS = 64

#: Check bits stored per word for each scheme (secded: 7 Hamming + 1 parity).
ECC_CHECK_BITS = {"none": 0, "parity": 1, "secded": 8}

#: Codeword positions of the 64 data bits: 1..71 minus the powers of two.
SECDED_DATA_POSITIONS = tuple(
    position for position in range(1, 72) if position & (position - 1)
)

#: Codeword positions of the 8 check bits: overall parity at 0, Hamming
#: check bits at the power-of-two positions.
SECDED_CHECK_POSITIONS = (0, 1, 2, 4, 8, 16, 32, 64)


def ecc_check_bits(scheme: str) -> int:
    """Check bits per 64-bit word for ``scheme`` (validating lookup)."""
    try:
        return ECC_CHECK_BITS[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown ECC scheme {scheme!r}; expected one of {', '.join(ECC_SCHEMES)}"
        ) from None


@dataclass(frozen=True)
class SecdedResult:
    """Outcome of decoding one (possibly corrupted) SECDED codeword.

    Attributes:
        data: the decoded 64-bit data value (after any correction).
        status: ``"clean"`` (no error seen), ``"corrected"`` (single-bit
            error fixed, ``data`` is the original), or ``"detected"``
            (double-bit error flagged uncorrectable — ``data`` is the raw
            extraction and must not be trusted; callers reload the word).
    """

    data: int
    status: str


def _syndrome(codeword: int) -> int:
    """XOR of the positions of every set bit in positions ``1..71``."""
    syndrome = 0
    bits = codeword >> 1
    position = 1
    while bits:
        if bits & 1:
            syndrome ^= position
        bits >>= 1
        position += 1
    return syndrome


def _extract_data(codeword: int) -> int:
    """The 64 data bits of a codeword, in layout order."""
    data = 0
    for bit, position in enumerate(SECDED_DATA_POSITIONS):
        data |= ((codeword >> position) & 1) << bit
    return data


def secded_encode(data: int) -> int:
    """Encode a 64-bit ``data`` value into a 72-bit SECDED codeword.

    The returned codeword has syndrome 0 and even overall parity, so
    :func:`secded_decode` round-trips it with status ``"clean"``.
    """
    if not 0 <= data < 1 << ECC_DATA_BITS:
        raise ConfigurationError(f"data must be a 64-bit value, got {data!r}")
    codeword = 0
    for bit, position in enumerate(SECDED_DATA_POSITIONS):
        codeword |= ((data >> bit) & 1) << position
    # Hamming check bits: zero out the syndrome contribution of the data.
    syndrome = _syndrome(codeword)
    for k in range(7):
        if (syndrome >> k) & 1:
            codeword |= 1 << (1 << k)
    # Overall parity (position 0): make the total number of set bits even.
    if bin(codeword).count("1") & 1:
        codeword |= 1
    return codeword


def secded_decode(codeword: int) -> SecdedResult:
    """Decode a 72-bit codeword, correcting one flip and detecting two.

    The decision table is the standard SECDED one:

    * syndrome 0, parity even — clean;
    * syndrome 0, parity odd — the overall parity bit itself flipped
      (data intact, ``"corrected"``);
    * syndrome != 0, parity odd — single-bit error at the syndrome
      position; flipped back (``"corrected"``);
    * syndrome != 0, parity even — double-bit error
      (``"detected"``, uncorrectable).

    Three or more flips can alias into any of these rows — that is the
    silent-corruption window the fault model reports honestly.
    """
    if not 0 <= codeword < 1 << 72:
        raise ConfigurationError(f"codeword must be a 72-bit value, got {codeword!r}")
    syndrome = _syndrome(codeword)
    parity_odd = bool(bin(codeword).count("1") & 1)
    if syndrome == 0:
        status = "corrected" if parity_odd else "clean"
        return SecdedResult(data=_extract_data(codeword), status=status)
    if not parity_odd or syndrome > 71:
        # Even parity with a non-zero syndrome is the double-flip signature;
        # a syndrome pointing past position 71 names a bit that does not
        # exist (only reachable with 3+ flips).  Both are uncorrectable.
        return SecdedResult(data=_extract_data(codeword), status="detected")
    codeword ^= 1 << syndrome
    return SecdedResult(data=_extract_data(codeword), status="corrected")
