"""Seeded SRAM fault injection over the packed compressed-layer image.

The fault model flips bits in the *storage representation* of a
:class:`~repro.compression.pipeline.CompressedLayer` — the same three
regions the EIE PE SRAMs hold:

* ``spmat`` — the interleaved entry stream: per entry, ``index_bits`` bits
  of codebook index followed by ``index_bits`` bits of zero-run, PE by PE
  in storage order;
* ``ptr`` — the per-PE column pointer arrays at ``pointer_bits`` per entry;
* ``codebook`` — the shared-weight table at 16-bit fixed point per entry.
  Entry 0 is the decoder's hardwired zero (it never leaves the lookup
  logic), so only entries ``1..`` are SRAM-resident and faultable.

Each region is packed into 64-bit SRAM words protected by the configured
ECC scheme (:mod:`repro.reliability.ecc`); flips are sampled over the full
stored image *including check bits* at the configured bit-error rate, so
protected configurations expose more raw bits to upsets — exactly the
trade the Pareto experiment prices.  Detected-uncorrectable words are
modeled as reloaded from the off-chip golden copy (EIE's weights always
have a DRAM master copy); corrected words are restored in place; silent
corruptions pass through to the stored image.

A faulted image may violate the CSC invariants (runs past ``max_run``,
non-monotone pointers, columns overrunning the PE's row space).  The
injector interprets it the way the hardware would — field values are
masked to their bit width, pointers clamped and monotonicized, entries
that walk off the end of a column dropped — decodes the implied dense
index matrix, and re-encodes it canonically, so the faulted layer is a
*valid* :class:`CompressedLayer` that runs through the unmodified
``Session.run_model`` path.  When every sampled flip is corrected (or none
is sampled), the **original layer object** is returned, which makes the
BER-0 and the SECDED single-flip-per-word paths bit-identical to the
golden run by construction.

Everything is deterministic: the per-region RNG is derived from the fault
seed, the layer's name/shape and the region label via
:func:`~repro.utils.rng.derive_seed`, so a fixed ``(seed, ber, scheme)``
reproduces the same faults in any process, under any executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.compression.csc import InterleavedCSC
from repro.compression.pipeline import CompressedLayer
from repro.compression.quantization import WeightCodebook
from repro.errors import ConfigurationError
from repro.reliability.ecc import (
    ECC_DATA_BITS,
    ECC_SCHEMES,
    SECDED_CHECK_POSITIONS,
    SECDED_DATA_POSITIONS,
    ecc_check_bits,
    secded_decode,
    secded_encode,
)
from repro.utils.rng import derive_seed, make_rng

__all__ = [
    "FaultConfig",
    "LayerFaultInjection",
    "ModelFaultInjection",
    "REGIONS",
    "inject_layer_faults",
    "inject_model_faults",
]

#: The storage regions of one compressed layer, in injection order.
REGIONS = ("spmat", "ptr", "codebook")

#: Fixed-point width of one stored codebook entry (EIE's 16-bit weights).
CODEBOOK_ENTRY_BITS = 16

#: Full-scale magnitude of the signed fixed-point codebook encoding.
_CODEBOOK_FULL_SCALE = 32767


@dataclass(frozen=True)
class FaultConfig:
    """Parameters of one fault-injection run.

    Attributes:
        ber: bit-error rate — the probability that any one stored bit
            (data or check) is flipped.
        scheme: ECC protection (``"none"``, ``"parity"`` or ``"secded"``).
        seed: base seed; per-(layer, region) streams are derived from it.
        pointer_bits: stored width of one column-pointer entry.
    """

    ber: float
    scheme: str = "none"
    seed: int = 0
    pointer_bits: int = 16

    def __post_init__(self) -> None:
        if not 0.0 <= self.ber < 1.0:
            raise ConfigurationError(f"ber must be in [0, 1), got {self.ber}")
        if self.scheme not in ECC_SCHEMES:
            raise ConfigurationError(
                f"unknown ECC scheme {self.scheme!r}; "
                f"expected one of {', '.join(ECC_SCHEMES)}"
            )
        if self.pointer_bits < 1:
            raise ConfigurationError(
                f"pointer_bits must be >= 1, got {self.pointer_bits}"
            )


def _zero_counters() -> dict[str, int]:
    return {
        "stored_bits": 0,
        "flips": 0,
        "data_flips": 0,
        "faulted_words": 0,
        "multi_flip_words": 0,
        "corrected_words": 0,
        "detected_words": 0,
        "silent_words": 0,
    }


def _merge_counters(total: dict[str, int], part: dict[str, int]) -> None:
    for key, value in part.items():
        total[key] += value


@dataclass
class LayerFaultInjection:
    """One layer's injection outcome.

    Attributes:
        layer: the faulted layer (the *original object* when no flip
            survived correction — bit-identity for free).
        counters: aggregate fault statistics over all regions.
        regions: the same counters broken down per storage region.
        changed: whether any data bit of the stored image changed.
    """

    layer: CompressedLayer
    counters: dict[str, int]
    regions: dict[str, dict[str, int]]

    @property
    def changed(self) -> bool:
        return self.counters["data_flips"] > 0


@dataclass
class ModelFaultInjection:
    """A whole model's injection outcome (one entry per unique layer)."""

    model: Any
    counters: dict[str, int]
    layers: dict[str, LayerFaultInjection] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return self.counters["data_flips"] > 0


# -- bit packing ---------------------------------------------------------------


def _pack_fields(values: np.ndarray, width: int) -> np.ndarray:
    """Pack integer fields into a flat 0/1 bit array (little-endian fields)."""
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return np.zeros(0, dtype=np.uint8)
    shifts = np.arange(width, dtype=np.int64)
    return ((values[:, None] >> shifts) & 1).astype(np.uint8).reshape(-1)

def _unpack_fields(bits: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_fields`."""
    if bits.size == 0:
        return np.zeros(0, dtype=np.int64)
    weights = np.left_shift(np.int64(1), np.arange(width, dtype=np.int64))
    return bits.reshape(-1, width).astype(np.int64) @ weights


def _word_data(bits: np.ndarray, word: int) -> int:
    """The 64-bit data value of ``word`` (trailing filler reads as zero)."""
    start = word * ECC_DATA_BITS
    segment = bits[start : start + ECC_DATA_BITS]
    value = 0
    for offset in range(segment.shape[0]):
        value |= int(segment[offset]) << offset
    return value


# -- per-region fault application ----------------------------------------------


def _fault_region_bits(
    bits: np.ndarray, config: FaultConfig, rng: np.random.Generator
) -> tuple[np.ndarray, dict[str, int]]:
    """Sample and apply faults to one region's data-bit image.

    Returns ``(bits, counters)``; ``bits`` is the input array (unchanged
    object) when no data flip survives the ECC scheme.
    """
    counters = _zero_counters()
    data_bits = int(bits.shape[0])
    check_bits = ecc_check_bits(config.scheme)
    span = ECC_DATA_BITS + check_bits
    num_words = math.ceil(data_bits / ECC_DATA_BITS)
    stored_bits = num_words * span
    counters["stored_bits"] = stored_bits
    if stored_bits == 0 or config.ber == 0.0:
        return bits, counters
    flips = int(rng.binomial(stored_bits, config.ber))
    counters["flips"] = flips
    if flips == 0:
        return bits, counters
    positions = np.sort(rng.choice(stored_bits, size=flips, replace=False))
    words = positions // span
    offsets = positions % span

    applied: list[int] = []
    for word in np.unique(words):
        word_offsets = offsets[words == word].tolist()
        counters["faulted_words"] += 1
        if len(word_offsets) > 1:
            counters["multi_flip_words"] += 1
        data_offsets = _decide_word_fate(
            int(word), word_offsets, bits, config.scheme, counters
        )
        base = int(word) * ECC_DATA_BITS
        applied.extend(
            base + offset for offset in data_offsets if base + offset < data_bits
        )

    if not applied:
        return bits, counters
    counters["data_flips"] = len(applied)
    faulted = bits.copy()
    faulted[np.asarray(applied, dtype=np.int64)] ^= 1
    return faulted, counters


def _decide_word_fate(
    word: int,
    word_offsets: list[int],
    bits: np.ndarray,
    scheme: str,
    counters: dict[str, int],
) -> list[int]:
    """ECC outcome for one faulted word: the data-bit offsets to flip.

    An empty list means the word survives intact (corrected in place or
    reloaded from the golden copy after detection).
    """
    if scheme == "none":
        return word_offsets

    if scheme == "parity":
        if len(word_offsets) % 2 == 1:
            counters["detected_words"] += 1
            return []
        data_offsets = [off for off in word_offsets if off < ECC_DATA_BITS]
        if data_offsets:
            counters["silent_words"] += 1
        return data_offsets

    # secded: run the faulted codeword through the real decoder.
    golden = _word_data(bits, word)
    codeword = secded_encode(golden)
    for offset in word_offsets:
        if offset < ECC_DATA_BITS:
            codeword ^= 1 << SECDED_DATA_POSITIONS[offset]
        else:
            codeword ^= 1 << SECDED_CHECK_POSITIONS[offset - ECC_DATA_BITS]
    outcome = secded_decode(codeword)
    if outcome.status == "detected":
        counters["detected_words"] += 1
        return []
    difference = outcome.data ^ golden
    if difference == 0:
        counters["corrected_words"] += 1
        return []
    # 3+-flip alias: the decoder was fooled (possibly miscorrecting a
    # healthy bit) — honest silent corruption.
    counters["silent_words"] += 1
    return [offset for offset in range(ECC_DATA_BITS) if (difference >> offset) & 1]


# -- layer packing and reconstruction ------------------------------------------


def _spmat_fields(layer: CompressedLayer) -> np.ndarray:
    """The spmat entry stream as alternating (index, run) integer fields."""
    parts: list[np.ndarray] = []
    for matrix in layer.storage.per_pe:
        fields = np.empty(2 * matrix.num_entries, dtype=np.int64)
        fields[0::2] = matrix.values.astype(np.int64)
        fields[1::2] = matrix.runs
        parts.append(fields)
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(parts)


def _ptr_fields(layer: CompressedLayer) -> np.ndarray:
    """The pointer region as one flat field array (per-PE col_ptr concat)."""
    return np.concatenate([matrix.col_ptr for matrix in layer.storage.per_pe])


def _codebook_quantized(codebook: WeightCodebook) -> tuple[np.ndarray, float]:
    """16-bit two's-complement image of entries ``1..`` and its scale."""
    stored = codebook.centroids[1:]
    scale = float(np.max(np.abs(stored))) if stored.size else 0.0
    if scale == 0.0:
        scale = 1.0
    quantized = np.round(stored / scale * _CODEBOOK_FULL_SCALE).astype(np.int64)
    return quantized & 0xFFFF, scale


def _codebook_dequantize(field_value: int, scale: float) -> float:
    signed = field_value - 0x10000 if field_value >= 0x8000 else field_value
    return signed * scale / _CODEBOOK_FULL_SCALE


def _tolerant_dense_indices(
    values: np.ndarray,
    runs: np.ndarray,
    col_ptr: np.ndarray,
    num_rows: int,
    num_cols: int,
) -> np.ndarray:
    """Decode possibly-inconsistent streams into a dense index matrix.

    Mirrors :meth:`CSCMatrix.to_dense` but *drops* entries whose decoded
    position falls outside the PE's row space instead of raising — the
    hardware would simply stream past the end of the column.
    """
    dense = np.zeros((num_rows, num_cols), dtype=np.int64)
    if values.size == 0:
        return dense
    counts = np.diff(col_ptr)
    steps = runs + 1
    running = np.cumsum(steps)
    column_base = np.concatenate([[0], running])[col_ptr[:-1]]
    positions = running - 1 - np.repeat(column_base, counts)
    entry_columns = np.repeat(np.arange(num_cols, dtype=np.int64), counts)
    keep = positions < num_rows
    dense[positions[keep], entry_columns[keep]] = values[keep]
    return dense


def _rebuild_storage(
    layer: CompressedLayer,
    spmat_bits: np.ndarray,
    ptr_bits: np.ndarray,
    config: FaultConfig,
) -> InterleavedCSC:
    """Reinterpret the (faulted) spmat/ptr image as a canonical encoding."""
    storage = layer.storage
    index_bits = layer.codebook.index_bits
    max_run = storage.per_pe[0].max_run if storage.per_pe else 15
    max_index = layer.codebook.size - 1
    fields = _unpack_fields(spmat_bits, index_bits)
    pointers = _unpack_fields(ptr_bits, config.pointer_bits)

    dense_indices = np.zeros((storage.num_rows, storage.num_cols), dtype=np.int64)
    entry_cursor = 0
    ptr_cursor = 0
    for pe, matrix in enumerate(storage.per_pe):
        pe_fields = fields[2 * entry_cursor : 2 * (entry_cursor + matrix.num_entries)]
        entry_cursor += matrix.num_entries
        values = np.minimum(pe_fields[0::2], max_index)
        runs = np.minimum(pe_fields[1::2], max_run)
        col_ptr = pointers[ptr_cursor : ptr_cursor + storage.num_cols + 1].copy()
        ptr_cursor += storage.num_cols + 1
        # Hardware-style tolerance: clamp into range, force monotone, pin
        # the endpoints the controller derives from the entry count.
        np.clip(col_ptr, 0, matrix.num_entries, out=col_ptr)
        np.maximum.accumulate(col_ptr, out=col_ptr)
        col_ptr[0] = 0
        col_ptr[-1] = matrix.num_entries
        np.maximum.accumulate(col_ptr, out=col_ptr)
        local = _tolerant_dense_indices(
            values, runs, col_ptr, matrix.num_rows, storage.num_cols
        )
        dense_indices[pe :: storage.num_pes, :] = local
    return InterleavedCSC.from_dense(
        dense_indices.astype(np.float64), num_pes=storage.num_pes, max_run=max_run
    )


def inject_layer_faults(
    layer: CompressedLayer, config: FaultConfig
) -> LayerFaultInjection:
    """Inject SRAM faults into one layer's stored image.

    Deterministic in ``(config, layer name, layer shape)``.  Returns the
    original layer object when no data bit changes.
    """
    region_counters: dict[str, dict[str, int]] = {}
    totals = _zero_counters()

    limit = 1 << config.pointer_bits
    for matrix in layer.storage.per_pe:
        if matrix.num_entries >= limit:
            raise ConfigurationError(
                f"layer {layer.name!r} stores {matrix.num_entries} entries in "
                f"one PE, which does not fit {config.pointer_bits}-bit pointers"
            )

    spmat_bits = _pack_fields(_spmat_fields(layer), layer.codebook.index_bits)
    ptr_bits = _pack_fields(_ptr_fields(layer), config.pointer_bits)
    quantized, scale = _codebook_quantized(layer.codebook)
    codebook_bits = _pack_fields(quantized, CODEBOOK_ENTRY_BITS)

    faulted = {}
    for region, bits in (
        ("spmat", spmat_bits),
        ("ptr", ptr_bits),
        ("codebook", codebook_bits),
    ):
        rng = make_rng(
            derive_seed(config.seed, "sram-fault", layer.name, *layer.shape, region)
        )
        faulted[region], counters = _fault_region_bits(bits, config, rng)
        region_counters[region] = counters
        _merge_counters(totals, counters)

    if totals["data_flips"] == 0:
        return LayerFaultInjection(
            layer=layer, counters=totals, regions=region_counters
        )

    codebook = layer.codebook
    if region_counters["codebook"]["data_flips"]:
        new_quantized = _unpack_fields(faulted["codebook"], CODEBOOK_ENTRY_BITS)
        centroids = codebook.centroids.copy()
        for entry in np.flatnonzero(new_quantized != quantized):
            centroids[entry + 1] = _codebook_dequantize(int(new_quantized[entry]), scale)
        codebook = WeightCodebook(centroids=centroids, index_bits=codebook.index_bits)

    storage = layer.storage
    if (
        region_counters["spmat"]["data_flips"]
        or region_counters["ptr"]["data_flips"]
    ):
        storage = _rebuild_storage(layer, faulted["spmat"], faulted["ptr"], config)

    faulted_layer = CompressedLayer(
        name=layer.name,
        shape=layer.shape,
        codebook=codebook,
        storage=storage,
        num_pes=layer.num_pes,
        activation_name=layer.activation_name,
        metadata=dict(layer.metadata),
    )
    return LayerFaultInjection(
        layer=faulted_layer, counters=totals, regions=region_counters
    )


def inject_model_faults(compressed: Any, config: FaultConfig) -> ModelFaultInjection:
    """Inject faults into every unique layer of a compressed model.

    Nodes sharing one :class:`CompressedLayer` object keep sharing the
    faulted object (the SRAM image is stored once).  Returns a new
    :class:`~repro.models.compressed.CompressedModel` wired to the faulted
    layers; the original model is untouched.
    """
    from repro.models.compressed import CompressedModel

    if not isinstance(compressed, CompressedModel):
        raise ConfigurationError(
            f"inject_model_faults expects a CompressedModel, "
            f"got {type(compressed).__name__}"
        )
    totals = _zero_counters()
    per_layer: dict[str, LayerFaultInjection] = {}
    replacement: dict[int, CompressedLayer] = {}
    layers: dict[str, CompressedLayer] = {}
    for node in compressed.model:
        original = compressed.layers[node.name]
        if id(original) not in replacement:
            injection = inject_layer_faults(original, config)
            replacement[id(original)] = injection.layer
            per_layer[original.name] = injection
            _merge_counters(totals, injection.counters)
        layers[node.name] = replacement[id(original)]
    faulted_model = CompressedModel(
        model=compressed.model, num_pes=compressed.num_pes, layers=layers
    )
    return ModelFaultInjection(model=faulted_model, counters=totals, layers=per_layer)
