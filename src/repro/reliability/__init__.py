"""repro.reliability: SRAM fault injection, ECC and graceful degradation.

EIE's claim rests on weights living in on-chip SRAM; this subsystem
stresses that storage.  :mod:`~repro.reliability.ecc` models the protection
schemes (none / parity-detect / SECDED(72,64) correct-1-detect-2) over
64-bit SRAM words; :mod:`~repro.reliability.faults` flips bits in the
packed image of a :class:`~repro.compression.pipeline.CompressedLayer`
(spmat / pointer / codebook regions) at a configured bit-error rate,
deterministically from a seed, and reinterprets the faulted image as a
valid layer; :mod:`~repro.reliability.harness` runs faulted models through
the unmodified ``Session.run_model`` path and scores output divergence and
layer-wise error propagation against the golden run.  The
``reliability_pareto`` experiment (:mod:`repro.experiments`) sweeps
BER x ECC scheme x model and prices each scheme's storage and read-energy
overheads against the accuracy it buys.
"""

from repro.reliability.ecc import (
    ECC_CHECK_BITS,
    ECC_DATA_BITS,
    ECC_SCHEMES,
    SecdedResult,
    ecc_check_bits,
    secded_decode,
    secded_encode,
)
from repro.reliability.faults import (
    FaultConfig,
    LayerFaultInjection,
    ModelFaultInjection,
    inject_layer_faults,
    inject_model_faults,
)
from repro.reliability.harness import (
    DegradationResult,
    compare_model_runs,
    run_degradation,
)

__all__ = [
    "ECC_CHECK_BITS",
    "ECC_DATA_BITS",
    "ECC_SCHEMES",
    "SecdedResult",
    "ecc_check_bits",
    "secded_decode",
    "secded_encode",
    "FaultConfig",
    "LayerFaultInjection",
    "ModelFaultInjection",
    "inject_layer_faults",
    "inject_model_faults",
    "DegradationResult",
    "compare_model_runs",
    "run_degradation",
]
