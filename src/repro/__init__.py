"""repro: a reproduction of EIE, the Efficient Inference Engine (ISCA 2016).

The library implements, in pure Python + numpy:

* the Deep Compression pipeline (pruning, 4-bit weight sharing,
  relative-indexed interleaved CSC encoding, Huffman storage accounting);
* the EIE accelerator itself — functional (bit-exact) simulation, a
  cycle-level performance model, and an RTL-style two-phase micro-simulator;
* hardware cost models (Table I energies, the Table II PE area/power
  breakdown, an SRAM read-energy model, technology scaling);
* analytic baseline platforms (CPU, GPU, mobile GPU, DaDianNao, ...);
* the nine Table III benchmark workloads and the analysis code that
  regenerates every table and figure of the paper's evaluation;
* an async serving layer (``repro.serve``): dynamic batching, admission
  control, a TCP daemon + client and an open-loop load generator, with
  responses bit-identical to the offline ``Session.run_model`` path —
  scaled out by a supervised worker fleet (``repro.serve.fleet``) with
  heartbeat health checks, restart backoff, per-worker circuit breakers,
  deadline propagation and a seeded chaos-acceptance harness;
* a reliability layer (``repro.reliability``): seeded SRAM bit-flip
  injection into packed compressed storage, ECC protection (parity,
  SECDED(72,64)) with storage/read-energy costs, and a degradation
  harness behind the ``reliability_pareto`` experiment.

Quick start::

    import numpy as np
    from repro import EIEAccelerator, EIEConfig

    accelerator = EIEAccelerator(EIEConfig(num_pes=8))
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(256, 512)) * (rng.random((256, 512)) < 0.1)
    layer = accelerator.compress_and_load(weights, name="fc")
    result = accelerator.run(rng.random(512))[-1]
    estimate = accelerator.estimate_layer(layer, rng.random(512))
    print(result.output.shape, estimate.performance.time_us)
"""

from repro.compression import (
    CompressedLayer,
    CompressionConfig,
    CSCMatrix,
    DeepCompressor,
    HuffmanCode,
    InterleavedCSC,
    WeightCodebook,
    prune_to_density,
)
from repro.core import (
    CycleAccurateEIE,
    CycleStats,
    EIEAccelerator,
    EIEConfig,
    FunctionalEIE,
    FunctionalResult,
    LayerEstimate,
)
from repro.engine import (
    EngineRegistry,
    EngineResult,
    PreparedLayer,
    Session,
    SimulationEngine,
    register_engine,
)
from repro.experiments import (
    Experiment,
    ExperimentRegistry,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    register_experiment,
    run_experiment,
)
from repro.hardware import ENERGY_TABLE_45NM, EnergyModel, PEAreaModel
from repro.models import (
    CompressedModel,
    MatVecNode,
    ModelIR,
    ModelRegistry,
    ModelRunResult,
    ModelSpec,
    build_model,
    register_model,
)
from repro.nn import FeedForwardNetwork, FullyConnectedLayer, LSTMCell
from repro.reliability import (
    FaultConfig,
    inject_layer_faults,
    inject_model_faults,
    run_degradation,
)
from repro.serve import BatchPolicy, Server, ServeResponse, run_open_loop
from repro.store import ArtifactStore
from repro.workloads import ALL_BENCHMARKS, BENCHMARK_NAMES, LayerSpec, WorkloadBuilder

__version__ = "1.5.0"

__all__ = [
    "ALL_BENCHMARKS",
    "ArtifactStore",
    "BENCHMARK_NAMES",
    "BatchPolicy",
    "CSCMatrix",
    "CompressedLayer",
    "CompressedModel",
    "CompressionConfig",
    "CycleAccurateEIE",
    "CycleStats",
    "DeepCompressor",
    "EIEAccelerator",
    "EIEConfig",
    "ENERGY_TABLE_45NM",
    "EnergyModel",
    "EngineRegistry",
    "EngineResult",
    "Experiment",
    "ExperimentRegistry",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "FaultConfig",
    "FeedForwardNetwork",
    "FullyConnectedLayer",
    "FunctionalEIE",
    "FunctionalResult",
    "HuffmanCode",
    "InterleavedCSC",
    "LSTMCell",
    "LayerEstimate",
    "LayerSpec",
    "MatVecNode",
    "ModelIR",
    "ModelRegistry",
    "ModelRunResult",
    "ModelSpec",
    "PEAreaModel",
    "PreparedLayer",
    "ServeResponse",
    "Server",
    "Session",
    "SimulationEngine",
    "WeightCodebook",
    "WorkloadBuilder",
    "__version__",
    "build_model",
    "inject_layer_faults",
    "inject_model_faults",
    "prune_to_density",
    "register_engine",
    "register_experiment",
    "register_model",
    "run_degradation",
    "run_experiment",
    "run_open_loop",
]
