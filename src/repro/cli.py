"""Command-line interface: one spec-driven entry point for the whole evaluation.

Every table, figure and ablation of the paper is a registered experiment of
:mod:`repro.experiments`; the classic ``table``/``figure``/``ablation``
commands are thin aliases that build the corresponding spec, and the
``experiment`` command exposes the registry directly::

    python -m repro.cli table 1                        # Table I
    python -m repro.cli table 4 --pes 64               # Table IV on 64 PEs
    python -m repro.cli figure 8                       # Figure 8 FIFO-depth sweep
    python -m repro.cli figure 11 --benchmarks Alex-6 NT-We
    python -m repro.cli ablation partitioning --benchmarks Alex-7
    python -m repro.cli summary                        # headline configuration
    python -m repro.cli run --engine cycle --rows 256 --cols 512 --batch 8

    python -m repro.cli engine list                    # backends + kernel tier
    python -m repro.cli experiment list
    python -m repro.cli experiment describe fig8_fifo_depth
    python -m repro.cli experiment run fig8_fifo_depth --jobs 4
    python -m repro.cli experiment run --spec spec.json --results-dir results
    python -m repro.cli experiment run fig11_scalability \
        --set scale=64 --set "grid.num_pes=[1,8]" --set workloads=Alex-7

Figures 6-13 and Tables IV-V generate the full-size Table III workloads, so
the first invocation in a process takes tens of seconds; pass ``--scale N``
(or ``--set scale=N``) to run proportionally smaller layers, or use the
benchmark harness (``pytest benchmarks/ --benchmark-only``), which shares one
cache across all of them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.report import format_table
from repro.compression.pipeline import CompressionConfig
from repro.core.config import EIEConfig
from repro.engine import EngineRegistry, Session
from repro.errors import ReproError
from repro.experiments import ExperimentRegistry, ExperimentRunner, ExperimentSpec
from repro.experiments.runner import EXECUTORS
from repro.store import ArtifactStore, default_store_root, maybe_default_store, store_enabled
from repro.models import ModelIR, ModelRegistry, ModelSpec, synthetic_model_inputs
from repro.hardware.area import chip_area_mm2, chip_power_w
from repro.utils.rng import make_rng
from repro.workloads.benchmarks import BENCHMARK_NAMES

__all__ = ["main", "build_parser"]

#: Legacy command aliases onto the experiment registry.
TABLE_EXPERIMENTS = {
    1: "table1_energy",
    2: "table2_area_power",
    3: "table3_benchmarks",
    4: "table4_wallclock",
    5: "table5_platforms",
}
FIGURE_EXPERIMENTS = {
    6: "fig6_speedup",
    7: "fig7_energy_efficiency",
    8: "fig8_fifo_depth",
    9: "fig9_sram_width",
    10: "fig10_precision",
    11: "fig11_scalability",
    12: "fig12_padding_zeros",
    13: "fig13_load_balance",
}
ABLATION_EXPERIMENTS = {
    "index-width": "ablation_index_width",
    "codebook-bits": "ablation_codebook_bits",
    "partitioning": "ablation_partitioning",
}

def _subcommands(parser: argparse.ArgumentParser) -> tuple[str, ...]:
    """The parser's top-level command names (for the unknown-command hint)."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return tuple(action.choices)
    return ()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-eie`` command."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--pes", type=int, default=64, help="number of processing elements")
    common.add_argument("--fifo-depth", type=int, default=8, help="activation FIFO depth")
    common.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(BENCHMARK_NAMES),
        choices=list(BENCHMARK_NAMES),
        help="subset of Table III benchmarks to run",
    )
    common.add_argument(
        "--scale", type=float, default=None,
        help="down-scale the benchmark layers by this factor (fast smoke runs)",
    )
    parser = argparse.ArgumentParser(
        prog="repro-eie",
        description="Regenerate the tables, figures and ablations of the EIE paper.",
    )
    from repro import __version__, kernels

    # Backend availability from distribution metadata only — importing numba
    # here would add hundreds of milliseconds to every CLI invocation.
    numba_version = kernels.numba_version_installed()
    native_note = (
        f"native kernels: numba {numba_version}"
        if numba_version is not None
        else "native kernels: not installed"
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__} ({native_note})",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    engine_parser = subparsers.add_parser(
        "engine", help="inspect the registered simulation backends"
    )
    engine_sub = engine_parser.add_subparsers(dest="engine_command", required=True)
    engine_sub.add_parser(
        "list", help="list every registered engine and which compute tier it can use"
    )

    table_parser = subparsers.add_parser("table", parents=[common], help="regenerate Table I-V")
    table_parser.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))

    figure_parser = subparsers.add_parser("figure", parents=[common], help="regenerate Figure 6-13")
    figure_parser.add_argument("number", type=int, choices=tuple(range(6, 14)))

    ablation_parser = subparsers.add_parser(
        "ablation", parents=[common], help="run a design-choice ablation"
    )
    ablation_parser.add_argument(
        "which", choices=("index-width", "codebook-bits", "partitioning")
    )

    subparsers.add_parser(
        "summary", parents=[common], help="print the accelerator's headline characteristics"
    )

    run_parser = subparsers.add_parser(
        "run", parents=[common],
        help="compress a synthetic layer and run it through a simulation engine",
    )
    run_parser.add_argument(
        "--engine", choices=EngineRegistry.names(), default="functional",
        help="registered simulation backend to run",
    )
    run_parser.add_argument("--rows", type=int, default=64, help="layer output size")
    run_parser.add_argument("--cols", type=int, default=128, help="layer input size")
    run_parser.add_argument(
        "--density", type=float, default=0.10, help="weight density after pruning"
    )
    run_parser.add_argument(
        "--activation-density", type=float, default=0.35,
        help="density of the input activation vectors",
    )
    run_parser.add_argument("--batch", type=int, default=1, help="number of input vectors")
    run_parser.add_argument("--seed", type=int, default=0, help="RNG seed for the synthetic data")
    run_parser.add_argument(
        "--no-store", action="store_true",
        help="do not consult or populate the on-disk artifact store",
    )

    experiment_parser = subparsers.add_parser(
        "experiment", help="list, describe or run declarative experiments"
    )
    experiment_sub = experiment_parser.add_subparsers(dest="experiment_command", required=True)
    experiment_sub.add_parser("list", help="list every registered experiment")
    describe_parser = experiment_sub.add_parser(
        "describe", help="show one experiment's description and default spec"
    )
    describe_parser.add_argument("name", help="registered experiment name")
    exp_run_parser = experiment_sub.add_parser(
        "run", help="run one experiment from its name or a JSON spec file"
    )
    exp_run_parser.add_argument(
        "name", nargs="?", default=None, help="registered experiment name"
    )
    exp_run_parser.add_argument(
        "--spec", type=str, default=None, metavar="FILE",
        help="JSON spec file (see 'experiment describe' for the shape)",
    )
    exp_run_parser.add_argument(
        "--set", dest="overrides", action="append", default=[], metavar="KEY=VALUE",
        help="override one spec field (e.g. scale=64, config.num_pes=16, "
             "grid.fifo_depth=[1,8], workloads=Alex-6,NT-We)",
    )
    exp_run_parser.add_argument(
        "--jobs", type=int, default=1, help="run grid points on N workers"
    )
    exp_run_parser.add_argument(
        "--executor", choices=EXECUTORS, default="threads",
        help="worker backend for --jobs > 1: threads share one session, "
             "processes partition the grid across cores and share "
             "compression through the artifact store (results are "
             "bit-identical on every backend)",
    )
    exp_run_parser.add_argument(
        "--no-store", action="store_true",
        help="do not consult or populate the on-disk artifact store",
    )
    exp_run_parser.add_argument(
        "--results-dir", type=str, default=None, metavar="DIR",
        help="also write <experiment>.txt and <experiment>.json under DIR",
    )
    exp_run_parser.add_argument(
        "--shard-id", type=int, default=None, metavar="I",
        help="run only shard I of a --shard-count partition and publish its "
             "partial records to the artifact store (requires the store)",
    )
    exp_run_parser.add_argument(
        "--shard-count", type=int, default=None, metavar="N",
        help="partition the expanded grid into N contiguous shards "
             "(used with --shard-id; 'experiment merge' reassembles them)",
    )
    exp_merge_parser = experiment_sub.add_parser(
        "merge", help="merge a sharded run's partial records into the full result"
    )
    exp_merge_parser.add_argument(
        "name", nargs="?", default=None, help="registered experiment name"
    )
    exp_merge_parser.add_argument(
        "--spec", type=str, default=None, metavar="FILE",
        help="JSON spec file (must match the one the shards ran)",
    )
    exp_merge_parser.add_argument(
        "--set", dest="overrides", action="append", default=[], metavar="KEY=VALUE",
        help="override one spec field (must match the shard invocations)",
    )
    exp_merge_parser.add_argument(
        "--shard-count", type=int, required=True, metavar="N",
        help="the partition size the shards were run with",
    )
    exp_merge_parser.add_argument(
        "--no-recompute", action="store_true",
        help="fail (exit 2) on missing shards instead of recomputing them "
             "in this process",
    )
    exp_merge_parser.add_argument(
        "--results-dir", type=str, default=None, metavar="DIR",
        help="also write <experiment>.txt and <experiment>.json under DIR",
    )

    shard_parser = subparsers.add_parser(
        "shard", help="inspect a sharded sweep's partition and store status"
    )
    shard_sub = shard_parser.add_subparsers(dest="shard_command", required=True)
    shard_common = argparse.ArgumentParser(add_help=False)
    shard_common.add_argument(
        "name", nargs="?", default=None, help="registered experiment name"
    )
    shard_common.add_argument(
        "--spec", type=str, default=None, metavar="FILE",
        help="JSON spec file (see 'experiment describe' for the shape)",
    )
    shard_common.add_argument(
        "--set", dest="overrides", action="append", default=[], metavar="KEY=VALUE",
        help="override one spec field (must match the shard invocations)",
    )
    shard_common.add_argument(
        "--shard-count", type=int, required=True, metavar="N",
        help="partition size to plan against",
    )
    shard_sub.add_parser(
        "plan", parents=[shard_common],
        help="show the deterministic partition: each shard's point range and key",
    )
    shard_sub.add_parser(
        "status", parents=[shard_common],
        help="show which shards of the partition exist in the artifact store",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk compression artifact store"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_common = argparse.ArgumentParser(add_help=False)
    cache_common.add_argument(
        "--dir", type=str, default=None, metavar="DIR",
        help="store directory (default: $REPRO_STORE_DIR or the user cache)",
    )
    cache_sub.add_parser(
        "info", parents=[cache_common],
        help="show the store location, entry count, size and process stats",
    )
    cache_sub.add_parser(
        "clear", parents=[cache_common], help="delete every store entry"
    )
    cache_sweep_parser = cache_sub.add_parser(
        "sweep", parents=[cache_common],
        help="delete abandoned .tmp files left by crashed writers",
    )
    cache_sweep_parser.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="sweep temp files older than this (default: 3600)",
    )

    model_parser = subparsers.add_parser(
        "model", help="list, describe, compress or run whole-network models"
    )
    model_sub = model_parser.add_subparsers(dest="model_command", required=True)
    model_sub.add_parser("list", help="list every registered model")
    model_describe_parser = model_sub.add_parser(
        "describe", help="show one model's description, default spec and lowered nodes"
    )
    model_describe_parser.add_argument("name", help="registered model name")

    model_common = argparse.ArgumentParser(add_help=False)
    model_common.add_argument(
        "name", nargs="?", default=None, help="registered model name"
    )
    model_common.add_argument(
        "--npz", type=str, default=None, metavar="FILE",
        help="import the model from a .npz state dict instead of the registry",
    )
    model_common.add_argument(
        "--scale", type=float, default=None,
        help="down-scale the network dimensions by this factor (1 = paper size)",
    )
    model_common.add_argument("--seed", type=int, default=None, help="builder RNG seed")
    model_common.add_argument(
        "--param", dest="model_params", action="append", default=[], metavar="KEY=VALUE",
        help="builder parameter override (e.g. mode=stacked for the LSTM)",
    )
    model_common.add_argument(
        "--pes", type=int, default=64, help="number of processing elements"
    )
    model_common.add_argument(
        "--density", type=float, default=None,
        help="prune every node to this weight density before compression "
             "(default: keep each matrix's existing sparsity)",
    )
    model_common.add_argument(
        "--no-store", action="store_true",
        help="do not consult or populate the on-disk artifact store",
    )

    model_sub.add_parser(
        "compress", parents=[model_common],
        help="run Deep Compression on every node and report the storage totals",
    )
    model_run_parser = model_sub.add_parser(
        "run", parents=[model_common],
        help="run a whole model through a simulation engine with measured "
             "inter-layer activation sparsity",
    )
    model_run_parser.add_argument(
        "--engine", choices=EngineRegistry.names(), default="cycle",
        help="registered simulation backend to run every node on",
    )
    model_run_parser.add_argument(
        "--fifo-depth", type=int, default=8, help="activation FIFO depth"
    )
    model_run_parser.add_argument(
        "--batch", type=int, default=1, help="number of input vectors"
    )
    model_run_parser.add_argument(
        "--input-seed", type=int, default=1, help="RNG seed for the synthetic inputs"
    )
    model_run_parser.add_argument(
        "--input-density", type=float, default=None,
        help="density of the synthetic input vectors "
             "(default: the model's expected Act%%)",
    )

    serve_common = argparse.ArgumentParser(add_help=False)
    serve_common.add_argument(
        "--models", nargs="+", default=["neuraltalk_lstm"], metavar="NAME",
        help="registered models to serve",
    )
    serve_common.add_argument(
        "--engine", choices=EngineRegistry.names(), default="cycle",
        help="registered simulation backend requests run on",
    )
    serve_common.add_argument(
        "--scale", type=float, default=None,
        help="down-scale the served networks by this factor (1 = paper size)",
    )
    serve_common.add_argument("--seed", type=int, default=None, help="model builder RNG seed")
    serve_common.add_argument(
        "--pes", type=int, default=16, help="number of processing elements"
    )
    serve_common.add_argument(
        "--fifo-depth", type=int, default=8, help="activation FIFO depth"
    )
    serve_common.add_argument(
        "--density", type=float, default=None,
        help="prune every node to this weight density before compression",
    )
    serve_common.add_argument(
        "--max-batch", type=int, default=16,
        help="largest coalesced request batch per dispatch",
    )
    serve_common.add_argument(
        "--max-wait-us", type=float, default=1000.0,
        help="how long a non-full batch waits for stragglers (microseconds)",
    )
    serve_common.add_argument(
        "--queue-depth", type=int, default=256,
        help="per-model queue bound; arrivals beyond it are rejected",
    )
    serve_common.add_argument(
        "--no-pipeline", action="store_true",
        help="dispatch whole models sequentially instead of node-pipelined",
    )
    serve_common.add_argument(
        "--no-store", action="store_true",
        help="do not consult or populate the on-disk artifact store",
    )

    serve_parser = subparsers.add_parser(
        "serve", parents=[serve_common],
        help="run the async inference daemon (or `serve bench` to load-test one)",
    )
    serve_parser.add_argument(
        "--host", type=str, default="127.0.0.1", help="daemon listen address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="daemon listen port (0 = pick an ephemeral port and print it)",
    )
    serve_parser.add_argument(
        "--chaos", action="store_true",
        help="honour 'chaos' protocol requests (latency injection for the "
             "chaos harness; never enable on a real deployment)",
    )
    serve_sub = serve_parser.add_subparsers(dest="serve_command", required=False)
    serve_bench_parser = serve_sub.add_parser(
        "bench", parents=[serve_common],
        help="drive the open-loop load generator against a daemon or an "
             "in-process server",
    )
    serve_bench_parser.add_argument(
        "--connect", type=str, default=None, metavar="HOST:PORT",
        help="benchmark a running daemon instead of an in-process server",
    )
    serve_bench_parser.add_argument(
        "--model", type=str, default=None,
        help="which served model to drive (default: the only/first one)",
    )
    serve_bench_parser.add_argument(
        "--rate", nargs="+", type=float, default=[400.0], metavar="RPS",
        help="offered load sweep, requests/second (open-loop Poisson arrivals)",
    )
    serve_bench_parser.add_argument(
        "--requests", type=int, default=200, help="requests per offered-load point"
    )
    serve_bench_parser.add_argument(
        "--arrival-seed", type=int, default=0, help="RNG seed for the arrival process"
    )
    serve_bench_parser.add_argument(
        "--input-seed", type=int, default=1, help="RNG seed for the request vectors"
    )
    serve_bench_parser.add_argument(
        "--closed-loop", type=int, default=None, metavar="N",
        help="closed-loop mode: N workers each keep one request in flight "
             "(the capacity probe; --rate is ignored)",
    )
    serve_bench_parser.add_argument(
        "--verify", action="store_true",
        help="after the sweep, re-run every request through the offline "
             "Session.run_model path and require bit-identical outputs",
    )

    serve_status_parser = serve_sub.add_parser(
        "status", help="health-probe a running daemon (models, queue, uptime)"
    )
    serve_status_parser.add_argument(
        "--connect", type=str, required=True, metavar="HOST:PORT",
        help="daemon to probe",
    )

    serve_fleet_parser = serve_sub.add_parser(
        "fleet", parents=[serve_common],
        help="run a supervised multi-worker daemon fleet (heartbeats, "
             "backoff restarts, crash-loop budget)",
    )
    serve_fleet_parser.add_argument(
        "--workers", type=int, default=3, help="daemon worker processes"
    )
    serve_fleet_parser.add_argument(
        "--host", type=str, default="127.0.0.1", help="worker listen address"
    )
    serve_fleet_parser.add_argument(
        "--port", type=int, default=0,
        help="first worker port, worker i gets port+i "
             "(0 = fresh ephemeral ports)",
    )
    serve_fleet_parser.add_argument(
        "--chaos", action="store_true",
        help="start every worker with chaos hooks enabled (test fleets only)",
    )

    serve_chaos_parser = serve_sub.add_parser(
        "chaos", parents=[serve_common],
        help="chaos acceptance run: a worker fleet under closed-loop load "
             "with a seeded kill/stall/corruption plan and bit verification",
    )
    serve_chaos_parser.add_argument(
        "--workers", type=int, default=3, help="fleet worker processes"
    )
    serve_chaos_parser.add_argument(
        "--requests", type=int, default=300, help="closed-loop requests to issue"
    )
    serve_chaos_parser.add_argument(
        "--closed-loop", type=int, default=8, metavar="N",
        help="closed-loop concurrency (N in-flight requests)",
    )
    serve_chaos_parser.add_argument(
        "--input-seed", type=int, default=1, help="RNG seed for request vectors"
    )
    serve_chaos_parser.add_argument(
        "--chaos-seed", type=int, default=0, help="RNG seed for the fault plan"
    )
    serve_chaos_parser.add_argument(
        "--duration", type=float, default=6.0,
        help="fault-plan window in seconds (events are scheduled inside it)",
    )
    serve_chaos_parser.add_argument(
        "--kills", type=int, default=2, help="SIGKILL events in the plan"
    )
    serve_chaos_parser.add_argument(
        "--stalls", type=int, default=1, help="latency-injection events in the plan"
    )
    serve_chaos_parser.add_argument(
        "--corruptions", type=int, default=1,
        help="artifact-store corruption events in the plan",
    )
    serve_chaos_parser.add_argument(
        "--verify", action="store_true",
        help="bit-compare every completed response against the offline "
             "Session.run_model path",
    )
    serve_chaos_parser.add_argument(
        "--compare-single", action="store_true",
        help="also run the same load chaos-free against the fleet and "
             "against one worker, requiring fleet throughput >= "
             "--min-speedup x single",
    )
    serve_chaos_parser.add_argument(
        "--min-speedup", type=float, default=1.0,
        help="required fleet/single throughput ratio for --compare-single",
    )
    return parser


def _config(args: argparse.Namespace) -> dict[str, object]:
    return {"num_pes": args.pes, "fifo_depth": args.fifo_depth}


def _store_for(args: argparse.Namespace) -> "ArtifactStore | None":
    """The artifact store a CLI invocation should use (or ``None``).

    Disabled by the command's ``--no-store`` flag or the ``REPRO_STORE=0``
    environment gate; otherwise the machine-wide default store, so repeated
    CLI invocations share one Deep Compression pass per distinct layer.
    """
    if getattr(args, "no_store", False):
        return None
    return maybe_default_store()


def _runner(jobs: int = 1, executor: str = "threads", store: "ArtifactStore | None" = None) -> ExperimentRunner:
    return ExperimentRunner(jobs=jobs, executor=executor, store=store)


def _note_scale_ignored(args: argparse.Namespace, name: str) -> None:
    if args.scale is not None:
        print(
            f"repro-eie: note: --scale has no effect on {name} "
            "(its workload selection is fixed)",
            file=sys.stderr,
        )


def _run_table(args: argparse.Namespace) -> str:
    name = TABLE_EXPERIMENTS[args.number]
    kwargs: dict[str, object] = {}
    if args.number == 4:
        kwargs = {"workloads": args.benchmarks, "config": _config(args), "scale": args.scale}
    else:
        _note_scale_ignored(args, name)
    return _runner().run(name, **kwargs).to_table()


def _run_figure(args: argparse.Namespace) -> str:
    name = FIGURE_EXPERIMENTS[args.number]
    kwargs: dict[str, object] = {}
    if args.number != 10:
        kwargs = {"workloads": args.benchmarks, "config": _config(args), "scale": args.scale}
    else:
        _note_scale_ignored(args, name)
    return _runner().run(name, **kwargs).to_table()


def _run_ablation(args: argparse.Namespace) -> str:
    name = ABLATION_EXPERIMENTS[args.which]
    kwargs: dict[str, object] = {}
    if args.which != "codebook-bits":
        kwargs = {
            "workloads": (args.benchmarks[0],),
            "config": _config(args),
            "scale": args.scale,
        }
    else:
        _note_scale_ignored(args, name)
    return _runner().run(name, **kwargs).to_table()


def _parse_override(
    assignment: str, context: str = "experiment run: --set"
) -> tuple[str, object]:
    """Parse one ``--set``/``--param`` ``key=value`` assignment.

    Values are read as JSON where possible (numbers, lists, booleans,
    quoted strings); a bare comma-separated value becomes a list and
    anything else stays a string.  ``context`` names the command and flag in
    the error message.
    """
    key, separator, raw = assignment.partition("=")
    key = key.strip()
    if not separator or not key:
        raise SystemExit(f"{context} expects KEY=VALUE, got {assignment!r}")

    def parse_scalar(text: str) -> object:
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            return text

    raw = raw.strip()
    try:
        value: object = json.loads(raw)
    except json.JSONDecodeError:
        # Not JSON: a bare comma-separated value becomes a list, anything
        # else stays a string.  (A JSON-quoted string keeps its commas.)
        if "," in raw:
            value = [parse_scalar(part.strip()) for part in raw.split(",")]
        else:
            value = raw
    return key, value


def _experiment_spec_from_args(
    args: argparse.Namespace, command: str
) -> ExperimentSpec:
    """Resolve the merged spec an experiment subcommand names.

    Shared by ``experiment run``, ``experiment merge`` and ``shard
    plan/status`` — the sharded flow depends on every invocation resolving
    the identical spec from the identical arguments.
    """
    if args.spec is not None:
        spec = ExperimentSpec.from_json(Path(args.spec).read_text())
        if args.name is not None and args.name != spec.experiment:
            raise SystemExit(
                f"experiment {command}: name {args.name!r} does not match the "
                f"spec file's experiment {spec.experiment!r}"
            )
    elif args.name is not None:
        spec = ExperimentSpec(experiment=args.name)
    else:
        raise SystemExit(f"experiment {command}: give an experiment name or --spec FILE")
    experiment = ExperimentRegistry.get(spec.experiment)
    spec = experiment.spec.merged(spec)
    if args.overrides:
        spec = spec.with_overrides([_parse_override(entry) for entry in args.overrides])
    return spec


def _shard_store(context: str) -> "ArtifactStore":
    """The store a sharded subcommand requires (typed error when disabled)."""
    from repro.errors import ShardError

    store = maybe_default_store()
    if store is None:
        raise ShardError(
            f"{context} needs the artifact store to exchange partial results "
            f"(it is disabled; unset REPRO_STORE=0 or set REPRO_STORE_DIR)"
        )
    return store


def _run_experiment_shard(args: argparse.Namespace, spec: ExperimentSpec) -> str:
    """``experiment run --shard-id I --shard-count N``: run one partition."""
    from repro.errors import ShardCoordinateError
    from repro.shard import plan_shards, run_shard, validate_coords

    if args.shard_id is None or args.shard_count is None:
        raise ShardCoordinateError(
            "experiment run: --shard-id and --shard-count go together "
            "(give both or neither)"
        )
    validate_coords(args.shard_id, args.shard_count)
    store = _shard_store("experiment run --shard-id")
    runner = _runner(jobs=args.jobs, executor=args.executor, store=store)
    plan = plan_shards(spec, args.shard_count, runner=runner)
    summary = run_shard(plan, args.shard_id, store, runner=runner)
    origin = "store (already published)" if summary["cached"] else "this run"
    return (
        f"shard {summary['shard_id']}/{summary['shard_count']} of "
        f"{plan.experiment.name}: {summary['points']} of {len(plan.points)} "
        f"points from {origin}\nkey {summary['key']}\n"
        f"merge with: repro experiment merge {plan.experiment.name} "
        f"--shard-count {summary['shard_count']}"
    )


def _run_experiment_merge(args: argparse.Namespace) -> str:
    """``experiment merge``: reassemble shard artifacts into the full result."""
    from repro.shard import merge_shards, plan_shards

    spec = _experiment_spec_from_args(args, "merge")
    store = _shard_store("experiment merge")
    runner = _runner(store=store)
    plan = plan_shards(spec, args.shard_count, runner=runner)
    result = merge_shards(plan, store, runner=runner, recompute=not args.no_recompute)
    if args.results_dir:
        txt_path, json_path = result.write(args.results_dir)
        print(f"wrote {txt_path} and {json_path}", file=sys.stderr)
    stats = store.stats()["by_kind"]["shards"]
    print(
        f"{result.experiment}: merged {plan.shard_count} shards, "
        f"{result.metadata['points']} points "
        f"(store: {stats['hits']} shard hits, {stats['stores']} recomputed)",
        file=sys.stderr,
    )
    return result.to_table()


def _run_shard_command(args: argparse.Namespace) -> str:
    """``shard plan``/``shard status``: inspect a partition and its store state."""
    from repro.shard import plan_shards

    spec = _experiment_spec_from_args(args, args.shard_command)
    store = _shard_store(f"shard {args.shard_command}")
    plan = plan_shards(spec, args.shard_count, runner=_runner(store=store))
    rows = plan.describe(store)
    if args.shard_command == "plan":
        return (
            f"{plan.experiment.name}: {len(plan.points)} points over "
            f"{plan.shard_count} shards\n"
            + format_table(
                ["Shard", "Points", "Range", "Key", "In store"],
                [
                    [r["shard_id"], r["points"], f"[{r['start']}, {r['stop']})",
                     r["key"][:16], "yes" if r["present"] else "no"]
                    for r in rows
                ],
            )
        )
    present = sum(1 for r in rows if r["present"])
    missing = [r["shard_id"] for r in rows if not r["present"]]
    status = (
        f"{plan.experiment.name}: {present}/{plan.shard_count} shards in "
        f"{store.root}"
    )
    if missing:
        status += f"\nmissing shard ids: {', '.join(map(str, missing))}"
    else:
        status += "\nall shards present; 'experiment merge' will be pure loads"
    return status


def _run_experiment_command(args: argparse.Namespace) -> str:
    if args.experiment_command == "list":
        rows = [
            [name, ExperimentRegistry.get(name).description]
            for name in ExperimentRegistry.names()
        ]
        return format_table(["Experiment", "Description"], rows)
    if args.experiment_command == "describe":
        return json.dumps(ExperimentRegistry.describe(args.name), indent=2)
    if args.experiment_command == "merge":
        return _run_experiment_merge(args)

    spec = _experiment_spec_from_args(args, "run")
    if args.shard_id is not None or args.shard_count is not None:
        return _run_experiment_shard(args, spec)
    result = _runner(
        jobs=args.jobs, executor=args.executor, store=_store_for(args)
    ).run(spec)
    if args.results_dir:
        txt_path, json_path = result.write(args.results_dir)
        print(f"wrote {txt_path} and {json_path}", file=sys.stderr)
    print(
        f"{result.experiment}: {result.metadata['points']} points, "
        f"jobs={result.metadata['jobs']} ({result.metadata['executor']}), "
        f"{result.metadata['duration_s']:.2f}s",
        file=sys.stderr,
    )
    return result.to_table()


def _resolve_model(args: argparse.Namespace) -> ModelIR:
    """Build the model a ``model compress``/``model run`` invocation names.

    Either a registered model (with optional ``--scale``/``--seed``/
    ``--param`` overlays onto its default spec) or an imported ``.npz``
    state dict (``--npz``).
    """
    if args.npz is not None:
        if args.name is not None:
            raise SystemExit(
                "model: give a registered model name or --npz FILE, not both"
            )
        if args.scale is not None or args.seed is not None or args.model_params:
            raise SystemExit(
                "model: --scale/--seed/--param describe a registry build and "
                "have no effect on an imported --npz model"
            )
        return ModelIR.from_npz(args.npz)
    if args.name is None:
        raise SystemExit("model: give a registered model name or --npz FILE")
    params = dict(
        _parse_override(entry, context="model: --param") for entry in args.model_params
    )
    spec = ModelSpec(model=args.name, scale=args.scale, seed=args.seed, params=params)
    return ModelRegistry.build(spec)


def _model_session(args: argparse.Namespace, config: EIEConfig) -> Session:
    compression = CompressionConfig(target_density=args.density)
    return Session(compression, config=config, store=_store_for(args))


def _run_cache_command(args: argparse.Namespace) -> str:
    from repro.store.artifacts import _default_budget

    root = args.dir if args.dir else default_store_root()
    store = ArtifactStore(root, size_budget_bytes=_default_budget())
    if args.cache_command == "clear":
        removed = store.clear()
        return f"removed {removed} artifact store entr{'y' if removed == 1 else 'ies'} from {store.root}"
    if args.cache_command == "sweep":
        swept = store.sweep_stale_tmp(max_age_s=args.max_age)
        return f"swept {swept} stale temp file{'' if swept == 1 else 's'} from {store.root}"
    description = store.describe()
    lifetime = description["lifetime"]
    budget = description["size_budget_bytes"]
    rows = [
        ["Store root", description["root"]],
        ["Entries", description["entries"]],
        ["Size (KiB)", f"{description['size_bytes'] / 1024.0:.1f}"],
        ["Size budget (KiB)", "none" if budget is None else f"{budget / 1024.0:.1f}"],
        ["Payload format", description["format"]],
        ["Enabled (REPRO_STORE)", store_enabled()],
        ["Stored (lifetime)", lifetime["stored_entries"]],
        ["Corrupt (lifetime)", lifetime["corrupt_entries"]],
        ["Swept tmp (lifetime)", lifetime["swept_tmp_files"]],
        ["Evicted (lifetime)", lifetime["evicted_entries"]],
    ]
    kind_rows = [
        [kind, info["entries"], f"{info['size_bytes'] / 1024.0:.1f}",
         description["by_kind"][kind]["hits"], description["by_kind"][kind]["misses"],
         description["by_kind"][kind]["evictions"]]
        for kind, info in description["kinds"].items()
    ]
    return (
        "Compression artifact store:\n"
        + format_table(["Field", "Value"], rows)
        + "\n\nPer artifact kind (this process):\n"
        + format_table(
            ["Kind", "Entries", "KiB", "Hits", "Misses", "Evicted"], kind_rows
        )
    )


def _run_model_command(args: argparse.Namespace) -> str:
    import numpy as np

    if args.model_command == "list":
        rows = [
            [name, ModelRegistry.get(name).description]
            for name in ModelRegistry.names()
        ]
        return format_table(["Model", "Description"], rows)
    if args.model_command == "describe":
        return json.dumps(ModelRegistry.describe(args.name), indent=2)

    model = _resolve_model(args)
    if args.pes < 1:
        raise SystemExit("model: --pes must be >= 1")
    if args.density is not None and not 0.0 < args.density <= 1.0:
        raise SystemExit("model: --density must be in (0, 1]")

    if args.model_command == "compress":
        session = _model_session(args, EIEConfig(num_pes=args.pes))
        compressed = session.compress_model(model, num_pes=args.pes)
        report = compressed.storage_report()
        node_rows = [
            [entry["node"], "shared" if entry["shared"] else "",
             f"{entry['weight_density']:.1%}", entry["compression_ratio"],
             entry["huffman_compression_ratio"], f"{entry['padding_fraction']:.2%}"]
            for entry in report["per_node"]
        ]
        summary_rows = [
            ["Model", report["model"]],
            ["Nodes (unique layers)", f"{report['num_nodes']} ({report['num_unique_layers']})"],
            ["Parameters", model.num_parameters],
            ["Dense storage (KiB)", report["dense_bits"] / 8192.0],
            ["Compressed storage (KiB)", report["compressed_bits"] / 8192.0],
            ["Compression ratio", report["compression_ratio"]],
            ["With Huffman coding", report["huffman_compression_ratio"]],
            ["Weight density", f"{report['weight_density']:.1%}"],
        ]
        return (
            f"Deep Compression ({args.pes} PEs):\n"
            + format_table(["Field", "Value"], summary_rows)
            + "\n\n"
            + format_table(
                ["Node", "Dedup", "Weight%", "Ratio", "Huffman", "Padding"], node_rows
            )
        )

    # model run
    if args.batch < 1:
        raise SystemExit("model run: --batch must be >= 1")
    config = EIEConfig(num_pes=args.pes, fifo_depth=args.fifo_depth)
    session = _model_session(args, config)
    inputs = synthetic_model_inputs(
        model, batch=args.batch, seed=args.input_seed, density=args.input_density
    )
    run = session.run_model(args.engine, model, inputs, config)

    node_rows = []
    for node_run in run.nodes:
        row = [
            node_run.name,
            f"{node_run.layer.rows} x {node_run.layer.cols}",
            f"{node_run.layer.weight_density:.1%}",
            f"{node_run.input_density:.1%}",
        ]
        if node_run.result.cycles:
            row += [node_run.total_cycles, f"{node_run.latency_s * 1e6:.2f}"]
        else:
            broadcasts = sum(f.broadcasts for f in node_run.result.functional) or "-"
            row += [broadcasts, "-"]
        node_rows.append(row)
    header = f"Model run ({run.model_name} on {args.engine}, {args.pes} PEs, batch {run.batch_size}):\n"
    body = format_table(
        ["Node", "Shape", "Weight%", "Act%", "Cycles" if run.has_timing else "Broadcasts",
         "Latency (us)"],
        node_rows,
    )
    totals: list[list[object]] = [["Output size", run.outputs.shape[-1]]]
    if run.has_timing:
        totals += [
            ["Total cycles", run.total_cycles],
            ["Latency (us, batch total)", f"{run.latency_s * 1e6:.2f}"],
            ["Latency (us, per frame)", f"{run.latency_s / run.batch_size * 1e6:.2f}"],
            ["Energy (uJ, batch total)", f"{run.energy_j * 1e6:.3f}"],
        ]
    last = run.nodes[-1]
    if last.result.outputs is not None:
        bias = model.nodes[-1].bias
        if bias is None or not np.count_nonzero(bias):
            matches = bool(np.allclose(last.result.outputs, run.outputs))
            totals.append(["Matches decoded dense reference", matches])
    return header + body + "\n\n" + format_table(["Field", "Value"], totals)


def _run_engine(args: argparse.Namespace) -> str:
    """Compress one synthetic layer and run it through the selected engine.

    This is the CLI face of the :mod:`repro.engine` seam (and the CI smoke
    test): a Bernoulli-sparse layer is compressed once into the session
    cache, prepared once, and the whole activation batch is executed with a
    single ``run`` call.
    """
    import numpy as np

    if args.rows < 1 or args.cols < 1 or args.batch < 1:
        raise SystemExit("run: --rows, --cols and --batch must be >= 1")
    if not 0.0 < args.density <= 1.0:
        raise SystemExit("run: --density must be in (0, 1]")
    if not 0.0 < args.activation_density <= 1.0:
        raise SystemExit("run: --activation-density must be in (0, 1]")
    config = EIEConfig(num_pes=args.pes, fifo_depth=args.fifo_depth)
    rng = make_rng(args.seed)
    weights = rng.normal(0.0, 0.1, size=(args.rows, args.cols))
    session = Session(
        CompressionConfig(target_density=args.density),
        config=config,
        store=_store_for(args),
    )
    layer = session.compress(weights, num_pes=config.num_pes, name="cli-synthetic")
    activations = rng.uniform(0.1, 1.0, size=(args.batch, args.cols))
    activations[rng.random((args.batch, args.cols)) >= args.activation_density] = 0.0
    result = session.run(args.engine, layer, activations)

    rows: list[list[object]] = [
        ["Engine", args.engine],
        ["Layer", f"{layer.rows} x {layer.cols} ({layer.weight_density:.1%} dense)"],
        ["PEs / FIFO depth", f"{config.num_pes} / {config.fifo_depth}"],
        ["Batch", result.batch_size],
    ]
    if result.outputs is not None:
        reference = np.maximum(layer.dense_weights() @ activations.T, 0.0).T
        rows.append(["Output shape", "x".join(str(s) for s in result.outputs.shape)])
        rows.append(["Matches dense reference", bool(np.allclose(result.outputs, reference))])
    if result.functional:
        rows.append(["Broadcasts (mean)",
                     sum(f.broadcasts for f in result.functional) / len(result.functional)])
        rows.append(["Entries processed (total)",
                     sum(f.total_entries_processed for f in result.functional)])
    if result.cycles:
        total = sum(stats.total_cycles for stats in result.cycles)
        rows.append(["Cycles (total)", total])
        rows.append(["Latency (us, total)", f"{sum(s.time_s for s in result.cycles) * 1e6:.2f}"])
        rows.append(["Load balance (first item)",
                     f"{result.cycles[0].load_balance_efficiency:.1%}"])
    if "rtl" in result.extra:
        per_item = result.extra["rtl"]
        rows.append(["RTL cycles (max PE, first item)",
                     max(r.cycles for r in per_item[0])])
    return f"Engine run ({args.engine}):\n" + format_table(["Field", "Value"], rows)


def _run_engine_command(args: argparse.Namespace) -> str:
    """``engine list``: every registered backend and its compute tier.

    The numpy-tier engines are always runnable; for the native tier the
    status column distinguishes "active" (numba installed, self-test passed,
    not disabled) from the fallback reasons — this is the first place to
    look when a native run is unexpectedly slow.
    """
    from repro import kernels

    status = kernels.status()
    if status["active"]:
        native_status = f"active (numba {status['numba']})"
    elif status["numba"] is None:
        native_status = "fallback to numpy (numba not installed)"
    elif not status["available"]:
        native_status = f"fallback to numpy (numba {status['numba']} failed the kernel self-test)"
    else:
        native_status = f"fallback to numpy (disabled via {kernels.ENV_VAR}=0)"
    rows = []
    for name in EngineRegistry.names():
        engine_cls = EngineRegistry.get(name)
        tier = getattr(engine_cls, "backend", "numpy")
        rows.append([name, tier, native_status if tier == "native" else "always available"])
    footer_rows = [
        ["numba", status["numba"] or "not installed"],
        [f"{kernels.ENV_VAR} gate", "enabled" if status["enabled"] else "disabled (=0)"],
        ["JIT kernels", ", ".join(status["kernels"])],
    ]
    return (
        "Registered simulation engines:\n"
        + format_table(["Engine", "Tier", "Status"], rows)
        + "\n\nNative kernel tier:\n"
        + format_table(["Field", "Value"], footer_rows)
    )


def _build_serve_server(args: argparse.Namespace):
    """Construct (not start) a :class:`repro.serve.Server` from CLI flags."""
    from repro.serve import BatchPolicy, Server

    if args.pes < 1:
        raise SystemExit("serve: --pes must be >= 1")
    if args.density is not None and not 0.0 < args.density <= 1.0:
        raise SystemExit("serve: --density must be in (0, 1]")
    specs = [
        ModelSpec(model=name, scale=args.scale, seed=args.seed)
        for name in args.models
    ]
    return Server(
        specs,
        engine=args.engine,
        config=EIEConfig(num_pes=args.pes, fifo_depth=args.fifo_depth),
        compression=CompressionConfig(target_density=args.density),
        policy=BatchPolicy(
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            queue_depth=args.queue_depth,
        ),
        store=_store_for(args),
        pipeline=not args.no_pipeline,
        chaos=getattr(args, "chaos", False),
    )


def _run_serve_daemon(args: argparse.Namespace) -> str:
    """``serve``: the long-lived TCP daemon with graceful SIGTERM drain."""
    import asyncio
    import signal

    from repro.serve import start_daemon

    async def daemon() -> str:
        server = await _build_serve_server(args).start()
        listener = await start_daemon(server, host=args.host, port=args.port)
        host, port = listener.sockets[0].getsockname()[:2]
        print(
            f"repro-serve: listening on {host}:{port} "
            f"(models: {', '.join(server.models)}; engine {server.engine_name}, "
            f"{server.config.num_pes} PEs)",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        # Drain: stop accepting connections, serve everything already
        # queued, then report.  In-flight responses flush on their open
        # connections before the process exits.
        print("repro-serve: draining...", flush=True)
        listener.close()
        await listener.wait_closed()
        stats = await server.close(drain=True)
        await asyncio.sleep(0.1)  # let connection tasks flush final responses
        totals = {
            key: sum(model[key] for model in stats["models"].values())
            for key in ("received", "served", "rejected", "errors")
        }
        return (
            f"repro-serve: drained ({totals['served']} served, "
            f"{totals['rejected']} rejected, {totals['errors']} errors)"
        )

    return asyncio.run(daemon())


def _serve_bench_offline_verify(
    model: ModelIR,
    session: Session,
    engine: str,
    config: EIEConfig,
    inputs,
    reports,
) -> str:
    """Bit-compare every served output with the offline batch-1 path."""
    import numpy as np

    checked = mismatched = 0
    reference: dict[int, object] = {}
    for report in reports:
        if report.outputs is None:
            continue
        for index, served in enumerate(report.outputs):
            if served is None:
                continue  # rejected/errored request: nothing to compare
            if index not in reference:
                reference[index] = session.run_model(
                    engine, model, inputs[index], config
                ).outputs[0]
            checked += 1
            if not np.array_equal(served, reference[index]):
                mismatched += 1
    if checked == 0:
        raise SystemExit("serve bench: --verify had no completed requests to check")
    if mismatched:
        raise SystemExit(
            f"serve bench: VERIFY FAILED — {mismatched}/{checked} responses "
            "differ from the offline Session.run_model path"
        )
    return f"verify: {checked} responses bit-identical to the offline run_model path"


def _run_serve_bench(args: argparse.Namespace) -> str:
    """``serve bench``: load sweep against a daemon or in-process server.

    Open-loop rate sweep by default; ``--closed-loop N`` runs one
    fixed-concurrency capacity probe instead.
    """
    import asyncio

    from repro.serve import AsyncServeClient, run_closed_loop, run_open_loop

    if args.requests < 1:
        raise SystemExit("serve bench: --requests must be >= 1")
    if args.closed_loop is not None and args.closed_loop < 1:
        raise SystemExit("serve bench: --closed-loop must be >= 1")

    async def drive(submit, inputs) -> list:
        """One report per sweep point: rates open loop, or one closed loop."""
        if args.closed_loop is not None:
            return [
                await run_closed_loop(
                    submit,
                    inputs,
                    concurrency=args.closed_loop,
                    capture_outputs=args.verify,
                )
            ]
        return [
            await run_open_loop(
                submit,
                inputs,
                rate_rps=rate,
                seed=args.arrival_seed,
                capture_outputs=args.verify,
            )
            for rate in args.rate
        ]

    async def bench_remote() -> tuple[list, str | None]:
        host, _, port_text = args.connect.rpartition(":")
        if not host or not port_text.isdigit():
            raise SystemExit("serve bench: --connect expects HOST:PORT")
        client = await AsyncServeClient.connect(host, int(port_text))
        try:
            described = await client.models()
            name = args.model or sorted(described)[0]
            if name not in described:
                raise SystemExit(
                    f"serve bench: daemon does not serve {name!r} "
                    f"(serving: {', '.join(sorted(described))})"
                )
            description = described[name]
            if args.verify and description.get("spec") is None:
                raise SystemExit(
                    "serve bench: --verify needs a registry-built model "
                    "(the daemon served a raw IR with no rebuild spec)"
                )
            model = (
                ModelRegistry.build(ModelSpec.from_dict(description["spec"]))
                if description.get("spec") is not None
                else None
            )
            config = EIEConfig(
                num_pes=description["num_pes"], fifo_depth=description["fifo_depth"]
            )
            inputs = _serve_bench_inputs(args, model, description)
            reports = await drive(lambda vector: client.infer(name, vector), inputs)
            verdict = None
            if args.verify:
                session = Session(
                    CompressionConfig.from_dict(description["compression"]),
                    config=config,
                )
                verdict = _serve_bench_offline_verify(
                    model, session, description["engine"], config, inputs, reports
                )
            return reports, verdict
        finally:
            await client.close()

    async def bench_local() -> tuple[list, str | None]:
        server = _build_serve_server(args)
        async with server:
            name = args.model or server.models[0]
            if name not in server.models:
                raise SystemExit(
                    f"serve bench: server does not serve {name!r} "
                    f"(serving: {', '.join(server.models)})"
                )
            description = server.describe(name)
            model = ModelRegistry.build(ModelSpec.from_dict(description["spec"]))
            inputs = _serve_bench_inputs(args, model, description)
            reports = await drive(lambda vector: server.submit(name, vector), inputs)
        verdict = None
        if args.verify:
            config = EIEConfig(num_pes=args.pes, fifo_depth=args.fifo_depth)
            session = Session(
                CompressionConfig(target_density=args.density), config=config
            )
            verdict = _serve_bench_offline_verify(
                model, session, args.engine, config, inputs, reports
            )
        return reports, verdict

    reports, verdict = asyncio.run(
        bench_remote() if args.connect else bench_local()
    )
    records = [report.record() for report in reports]
    if args.closed_loop is not None:
        rows = [
            [r["concurrency"], r["completed"], r["rejected"], r["errors"],
             f"{r['throughput_rps']:.1f}", f"{r['p50_ms']:.3f}", f"{r['p99_ms']:.3f}",
             f"{r['mean_batch']:.2f}"]
            for r in records
        ]
        output = "Closed-loop serving benchmark:\n" + format_table(
            ["Workers", "Done", "Rej", "Err", "Throughput (rps)",
             "p50 (ms)", "p99 (ms)", "Mean batch"],
            rows,
        )
    else:
        rows = [
            [r["offered_rps"], r["completed"], r["rejected"], r["errors"],
             f"{r['throughput_rps']:.1f}", f"{r['p50_ms']:.3f}", f"{r['p99_ms']:.3f}",
             f"{r['mean_batch']:.2f}"]
            for r in records
        ]
        output = "Open-loop serving benchmark:\n" + format_table(
            ["Offered (rps)", "Done", "Rej", "Err", "Throughput (rps)",
             "p50 (ms)", "p99 (ms)", "Mean batch"],
            rows,
        )
    if verdict:
        output += f"\n\n{verdict}"
    return output


def _serve_bench_inputs(args: argparse.Namespace, model, description):
    """The deterministic request matrix for one bench run."""
    if model is not None:
        return synthetic_model_inputs(
            model, batch=args.requests, seed=args.input_seed
        )
    # No rebuild spec (raw IR daemon): dense uniform vectors still exercise
    # the service, they just cannot be verified offline.
    rng = make_rng(args.input_seed)
    return rng.uniform(0.1, 1.0, size=(args.requests, description["input_size"]))


def _parse_connect(text: str, what: str) -> tuple[str, int]:
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        raise SystemExit(f"{what}: --connect expects HOST:PORT")
    return host, int(port_text)


def _serve_worker_args(args: argparse.Namespace, chaos: bool = False) -> list[str]:
    """Rebuild the daemon argument vector one fleet worker should run with.

    The supervisor spawns ``python -m repro.cli serve <these args> --host
    H --port P``, so every ``serve_common`` flag the operator passed to
    ``serve fleet`` / ``serve chaos`` must round-trip through here.
    """
    worker = [
        "--models", *args.models,
        "--engine", args.engine,
        "--pes", str(args.pes),
        "--fifo-depth", str(args.fifo_depth),
        "--max-batch", str(args.max_batch),
        "--max-wait-us", str(args.max_wait_us),
        "--queue-depth", str(args.queue_depth),
    ]
    if args.scale is not None:
        worker += ["--scale", str(args.scale)]
    if args.seed is not None:
        worker += ["--seed", str(args.seed)]
    if args.density is not None:
        worker += ["--density", str(args.density)]
    if args.no_pipeline:
        worker.append("--no-pipeline")
    if args.no_store:
        worker.append("--no-store")
    if chaos or getattr(args, "chaos", False):
        worker.append("--chaos")
    return worker


def _run_serve_status(args: argparse.Namespace) -> str:
    """``serve status``: one-shot health probe of a running daemon."""
    import asyncio

    from repro.serve import AsyncServeClient

    host, port = _parse_connect(args.connect, "serve status")

    async def probe() -> dict:
        client = await AsyncServeClient.connect(host, port)
        try:
            return await client.health()
        finally:
            await client.close()

    health = asyncio.run(probe())
    rows = [
        ["Endpoint", f"{host}:{port}"],
        ["PID", str(health["pid"])],
        ["Engine", health["engine"]],
        ["Models", ", ".join(health["models"])],
        ["Queue depth", health["queue_depth"]],
        ["Served", health["served"]],
        ["Rejected", health["rejected"]],
        ["Uptime (s)", f"{health['uptime_s']:.1f}"],
        ["Draining", health["draining"]],
        ["Chaos hooks", health["chaos"]],
    ]
    return "repro-serve status:\n" + format_table(["Field", "Value"], rows)


def _run_serve_fleet(args: argparse.Namespace) -> str:
    """``serve fleet``: a supervised multi-worker daemon fleet."""
    import asyncio
    import signal

    from repro.serve import FleetSupervisor

    if args.workers < 1:
        raise SystemExit("serve fleet: --workers must be >= 1")

    async def fleet() -> str:
        supervisor = FleetSupervisor(
            _serve_worker_args(args),
            workers=args.workers,
            host=args.host,
            base_port=args.port,
        )
        await supervisor.start()
        for index, endpoint in enumerate(supervisor.endpoints()):
            host, port = endpoint
            print(f"repro-fleet: worker {index} listening on {host}:{port}", flush=True)
        print(
            f"repro-fleet: {args.workers} workers up "
            f"(models: {', '.join(args.models)}; engine {args.engine})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("repro-fleet: draining...", flush=True)
        stats = await supervisor.close()
        return (
            f"repro-fleet: drained ({stats['restarts']} restarts, "
            f"{stats['wedged_kills']} wedged kills, "
            f"{stats['crash_loops']} crash loops)"
        )

    return asyncio.run(fleet())


def _run_serve_chaos(args: argparse.Namespace) -> str:
    """``serve chaos``: the fleet chaos acceptance run.

    Boots a worker fleet, drives a closed-loop load through the failover
    client while the seeded fault plan kills/stalls/corrupts, then asserts
    the resilience invariants (and, with ``--verify``, zero wrong bits).
    Exits non-zero on any violation so CI can gate on it.
    """
    import asyncio

    from repro.serve import ChaosPlan, FleetPolicy
    from repro.serve.chaos import run_chaos_acceptance

    if args.workers < 1:
        raise SystemExit("serve chaos: --workers must be >= 1")
    if args.requests < 1:
        raise SystemExit("serve chaos: --requests must be >= 1")

    spec = ModelSpec(model=args.models[0], scale=args.scale, seed=args.seed)
    model = ModelRegistry.build(spec)
    inputs = synthetic_model_inputs(model, batch=args.requests, seed=args.input_seed)
    plan = ChaosPlan.generate(
        seed=args.chaos_seed,
        workers=args.workers,
        duration_s=args.duration,
        kills=args.kills,
        stalls=args.stalls,
        corruptions=args.corruptions,
    )
    store_root = None if args.no_store or not store_enabled() else default_store_root()
    # Snappy restarts: a chaos run wants recovery measured in hundreds of
    # milliseconds, not the production-friendly defaults.
    policy = FleetPolicy(
        heartbeat_s=0.3,
        restart_initial_s=0.2,
        restart_max_s=2.0,
        stable_after_s=5.0,
    )
    outcome = asyncio.run(
        run_chaos_acceptance(
            _serve_worker_args(args, chaos=True),
            inputs,
            args.models[0],
            workers=args.workers,
            concurrency=args.closed_loop,
            plan=plan,
            policy=policy,
            store_root=store_root,
        )
    )

    lines = ["Chaos plan:"]
    lines.append(format_table(
        ["t (s)", "Fault", "Worker", "Applied"],
        [
            [entry["at_s"], entry["kind"], entry.get("worker", "-"),
             entry.get("applied", True)]
            for entry in outcome.chaos_log
        ],
    ))
    record = outcome.report.record()
    lines.append("\nLoad under chaos:")
    lines.append(format_table(
        ["Requests", "Done", "Rej", "Retriable", "Err", "Throughput (rps)", "p99 (ms)"],
        [[record["requests"], record["completed"], record["rejected"],
          record["retriable"], record["errors"],
          f"{record['throughput_rps']:.1f}", f"{record['p99_ms']:.3f}"]],
    ))
    stats = outcome.fleet_stats
    lines.append(
        f"\nfleet: {stats['restarts']} restarts for {plan.kills} kills, "
        f"{stats['wedged_kills']} wedged kills, "
        f"{outcome.client_stats['failovers']} client failovers"
    )

    if args.verify:
        config = EIEConfig(num_pes=args.pes, fifo_depth=args.fifo_depth)
        session = Session(
            CompressionConfig(target_density=args.density), config=config
        )
        try:
            verdict = _serve_bench_offline_verify(
                model, session, args.engine, config, inputs, [outcome.report]
            )
        except SystemExit as exc:
            raise SystemExit(f"serve chaos: {exc}") from None
        lines.append(verdict + " (0 verification mismatches)")

    if args.compare_single:
        lines.append(_serve_chaos_compare_single(args, inputs))

    if outcome.violations:
        print("\n".join(lines), flush=True)
        raise SystemExit(
            "serve chaos: INVARIANT VIOLATIONS\n  - "
            + "\n  - ".join(outcome.violations)
        )
    lines.append("chaos: RECOVERED — all workers healthy, invariants held")
    return "\n".join(lines)


def _serve_chaos_compare_single(args: argparse.Namespace, inputs) -> str:
    """Fault-free throughput gate: an N-worker fleet must beat one worker."""
    import asyncio

    from repro.serve import FleetClient, FleetSupervisor, run_closed_loop

    # Both sides get the same total concurrency, sized so every worker in
    # the *fleet* run sees `--closed-loop` concurrent requests — otherwise
    # round-robin dilutes each worker's batches and the comparison measures
    # batching efficiency, not scale-out.
    concurrency = args.closed_loop * args.workers

    async def measure(workers: int) -> float:
        supervisor = FleetSupervisor(_serve_worker_args(args), workers=workers)
        async with supervisor:
            client = await FleetClient.connect(
                supervisor.endpoints, route_window=args.max_batch
            )
            try:
                report = await run_closed_loop(
                    lambda vector: client.infer(args.models[0], vector),
                    inputs,
                    concurrency=concurrency,
                )
            finally:
                await client.close()
        if report.completed != report.requests:
            raise SystemExit(
                f"serve chaos: fault-free comparison run lost requests "
                f"({report.completed}/{report.requests} completed)"
            )
        return report.throughput_rps

    fleet_rps = asyncio.run(measure(args.workers))
    single_rps = asyncio.run(measure(1))
    ratio = fleet_rps / single_rps if single_rps > 0 else float("inf")
    line = (
        f"throughput: fleet({args.workers}) {fleet_rps:.1f} rps vs "
        f"single {single_rps:.1f} rps ({ratio:.2f}x)"
    )
    if ratio < args.min_speedup:
        raise SystemExit(
            f"serve chaos: {line} — below the required {args.min_speedup:.2f}x"
        )
    return line


def _run_serve_command(args: argparse.Namespace) -> str:
    serve_command = getattr(args, "serve_command", None)
    if serve_command == "bench":
        return _run_serve_bench(args)
    if serve_command == "status":
        return _run_serve_status(args)
    if serve_command == "fleet":
        return _run_serve_fleet(args)
    if serve_command == "chaos":
        return _run_serve_chaos(args)
    return _run_serve_daemon(args)


def _run_summary(args: argparse.Namespace) -> str:
    config = EIEConfig(num_pes=args.pes, fifo_depth=args.fifo_depth)
    rows = [
        ["Processing elements", config.num_pes],
        ["Clock (MHz)", config.clock_mhz],
        ["FIFO depth", config.fifo_depth],
        ["Spmat SRAM width (bits)", config.spmat_sram_width_bits],
        ["Weights per PE (capacity)", config.weights_per_pe_capacity],
        ["Peak GOP/s (compressed)", config.peak_gops],
        ["Chip area (mm2)", chip_area_mm2(config.num_pes)],
        ["Chip power (W)", chip_power_w(config.num_pes)],
    ]
    return "EIE configuration summary:\n" + format_table(["Parameter", "Value"], rows)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli`` / the ``repro-eie`` script."""
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    commands = _subcommands(parser)
    if argv and not argv[0].startswith("-") and argv[0] not in commands:
        print(
            f"repro-eie: unknown command {argv[0]!r} "
            f"(expected one of: {', '.join(commands)})",
            file=sys.stderr,
        )
        return 2
    args = parser.parse_args(argv)
    try:
        if args.command == "table":
            output = _run_table(args)
        elif args.command == "figure":
            output = _run_figure(args)
        elif args.command == "ablation":
            output = _run_ablation(args)
        elif args.command == "run":
            output = _run_engine(args)
        elif args.command == "experiment":
            output = _run_experiment_command(args)
        elif args.command == "shard":
            output = _run_shard_command(args)
        elif args.command == "cache":
            output = _run_cache_command(args)
        elif args.command == "model":
            output = _run_model_command(args)
        elif args.command == "engine":
            output = _run_engine_command(args)
        elif args.command == "serve":
            output = _run_serve_command(args)
        else:
            output = _run_summary(args)
    except (ReproError, OSError) as error:
        print(f"repro-eie: {error}", file=sys.stderr)
        return 2
    try:
        print(output)
    except BrokenPipeError:
        # Downstream closed early (e.g. `| grep -q` / `| head`): the command
        # itself succeeded, and a traceback on stdout teardown helps nobody.
        # Point fd 1 at devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
