"""Command-line interface: regenerate any table or figure of the paper.

Usage (after installing the package)::

    python -m repro.cli table 1                        # Table I
    python -m repro.cli table 4 --pes 64               # Table IV on 64 PEs
    python -m repro.cli figure 8                       # Figure 8 FIFO-depth sweep
    python -m repro.cli figure 11 --benchmarks Alex-6 NT-We
    python -m repro.cli ablation partitioning --benchmarks Alex-7
    python -m repro.cli summary                        # headline configuration
    python -m repro.cli run --engine cycle --rows 256 --cols 512 --batch 8

Figures 6-13 and Tables IV-V generate the full-size Table III workloads, so
the first invocation in a process takes tens of seconds; the benchmark
harness (``pytest benchmarks/ --benchmark-only``) shares one cache across all
of them and is the faster way to regenerate everything at once.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from collections.abc import Sequence

from repro.analysis.ablation import (
    codebook_bits_ablation,
    index_width_ablation,
    partitioning_ablation,
)
from repro.analysis.design_space import fifo_depth_sweep, precision_study, sram_width_sweep
from repro.analysis.energy_efficiency import energy_efficiency_table
from repro.analysis.report import format_table, render_series
from repro.analysis.scalability import pe_sweep
from repro.analysis.speedup import speedup_table
from repro.analysis.tables import table1_rows, table2_rows, table3_rows, table4_rows, table5_rows
from repro.compression.pipeline import CompressionConfig
from repro.core.config import EIEConfig
from repro.engine import EngineRegistry, Session
from repro.hardware.area import chip_area_mm2, chip_power_w
from repro.utils.rng import make_rng
from repro.workloads.benchmarks import BENCHMARK_NAMES
from repro.workloads.generator import WorkloadBuilder

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-eie`` command."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--pes", type=int, default=64, help="number of processing elements")
    common.add_argument("--fifo-depth", type=int, default=8, help="activation FIFO depth")
    common.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(BENCHMARK_NAMES),
        choices=list(BENCHMARK_NAMES),
        help="subset of Table III benchmarks to run",
    )
    parser = argparse.ArgumentParser(
        prog="repro-eie",
        description="Regenerate the tables, figures and ablations of the EIE paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table_parser = subparsers.add_parser("table", parents=[common], help="regenerate Table I-V")
    table_parser.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))

    figure_parser = subparsers.add_parser("figure", parents=[common], help="regenerate Figure 6-13")
    figure_parser.add_argument("number", type=int, choices=tuple(range(6, 14)))

    ablation_parser = subparsers.add_parser(
        "ablation", parents=[common], help="run a design-choice ablation"
    )
    ablation_parser.add_argument(
        "which", choices=("index-width", "codebook-bits", "partitioning")
    )

    subparsers.add_parser(
        "summary", parents=[common], help="print the accelerator's headline characteristics"
    )

    run_parser = subparsers.add_parser(
        "run", parents=[common],
        help="compress a synthetic layer and run it through a simulation engine",
    )
    run_parser.add_argument(
        "--engine", choices=EngineRegistry.names(), default="functional",
        help="registered simulation backend to run",
    )
    run_parser.add_argument("--rows", type=int, default=64, help="layer output size")
    run_parser.add_argument("--cols", type=int, default=128, help="layer input size")
    run_parser.add_argument(
        "--density", type=float, default=0.10, help="weight density after pruning"
    )
    run_parser.add_argument(
        "--activation-density", type=float, default=0.35,
        help="density of the input activation vectors",
    )
    run_parser.add_argument("--batch", type=int, default=1, help="number of input vectors")
    run_parser.add_argument("--seed", type=int, default=0, help="RNG seed for the synthetic data")
    return parser


def _config(args: argparse.Namespace) -> EIEConfig:
    return EIEConfig(num_pes=args.pes, fifo_depth=args.fifo_depth)


def _run_table(args: argparse.Namespace, builder: WorkloadBuilder) -> str:
    number = args.number
    if number == 1:
        rows = table1_rows()
        return format_table(
            ["Operation", "Energy [pJ]", "Relative cost"],
            [[r["operation"], r["energy_pj"], r["relative_cost"]] for r in rows],
        )
    if number == 2:
        rows = table2_rows()
        return format_table(
            ["Name", "Group", "Power (mW)", "Power (%)", "Area (um2)", "Area (%)"],
            [[r["name"], r.get("group", ""), r["power_mw"], r["power_pct"], r["area_um2"],
              r["area_pct"]] for r in rows],
        )
    if number == 3:
        rows = table3_rows()
        return format_table(
            ["Layer", "Size", "Weight%", "Act%", "FLOP%"],
            [[r["layer"], r["size"], r["weight_density"], r["activation_density"],
              r["flop_fraction"]] for r in rows],
        )
    if number == 4:
        rows = table4_rows(args.benchmarks, builder=builder, eie_config=_config(args))
        headers = ["Platform", "Batch", "Kernel"] + list(args.benchmarks)
        return format_table(
            headers,
            [[r["platform"], r["batch"], r["kernel"]] + [r[b] for b in args.benchmarks]
             for r in rows],
        )
    rows = table5_rows(builder=builder)
    return format_table(
        ["Platform", "Area (mm2)", "Power (W)", "Throughput (fps)", "Energy eff. (frames/J)"],
        [[r["platform"], r["area_mm2"], r["power_w"], r["throughput_fps"],
          r["energy_efficiency_fpj"]] for r in rows],
    )


def _run_figure(args: argparse.Namespace, builder: WorkloadBuilder) -> str:
    number = args.number
    config = _config(args)
    if number == 6:
        table = speedup_table(args.benchmarks, builder=builder, eie_config=config)
        series = {cfg: {b: table[b][cfg] for b in table} for cfg in next(iter(table.values()))}
        return "Speedup over CPU dense (batch 1):\n" + render_series(series, "Benchmark")
    if number == 7:
        table = energy_efficiency_table(args.benchmarks, builder=builder, eie_config=config)
        series = {cfg: {b: table[b][cfg] for b in table} for cfg in next(iter(table.values()))}
        return "Energy efficiency over CPU dense (batch 1):\n" + render_series(series, "Benchmark")
    if number == 8:
        sweep = fifo_depth_sweep(benchmarks=args.benchmarks, num_pes=args.pes, builder=builder)
        return "Load-balance efficiency vs FIFO depth:\n" + render_series(sweep, "FIFO depth")
    if number == 9:
        points = sram_width_sweep(benchmarks=args.benchmarks, num_pes=args.pes, builder=builder)
        totals: dict[int, float] = defaultdict(float)
        for point in points:
            totals[point.width_bits] += point.total_energy_nj
        body = format_table(
            ["Layer", "Width", "# reads", "pJ/read", "Total nJ"],
            [[p.benchmark, p.width_bits, p.num_reads, p.energy_per_read_pj, p.total_energy_nj]
             for p in points],
        )
        body += "\n\n" + format_table(["Width", "Total energy (nJ)"], sorted(totals.items()))
        return "Spmat SRAM width sweep:\n" + body
    if number == 10:
        points = precision_study()
        return "Arithmetic precision study:\n" + format_table(
            ["Precision", "Accuracy", "Agreement", "Multiply energy (pJ)"],
            [[p.precision, p.accuracy, p.agreement_with_float, p.multiply_energy_pj]
             for p in points],
        )
    sweep = pe_sweep(benchmarks=args.benchmarks, fifo_depth=args.fifo_depth, builder=builder)
    if number == 11:
        series = {b: {p.num_pes: p.speedup_vs_1pe for p in pts} for b, pts in sweep.items()}
        return "Speedup vs number of PEs:\n" + render_series(series, "# PEs")
    if number == 12:
        series = {b: {p.num_pes: p.real_work_fraction for p in pts} for b, pts in sweep.items()}
        return "Real work / total work vs number of PEs:\n" + render_series(series, "# PEs")
    series = {b: {p.num_pes: p.load_balance_efficiency for p in pts} for b, pts in sweep.items()}
    return "Load balance vs number of PEs:\n" + render_series(series, "# PEs")


def _run_ablation(args: argparse.Namespace, builder: WorkloadBuilder) -> str:
    if args.which == "index-width":
        benchmark = args.benchmarks[0]
        points = index_width_ablation(benchmark, num_pes=args.pes, builder=builder)
        return f"Relative-index width ablation ({benchmark}):\n" + format_table(
            ["Index bits", "Padding zeros", "Padding fraction", "Bits per non-zero"],
            [[p.index_bits, p.padding_zeros, p.padding_fraction, p.bits_per_nonzero]
             for p in points],
        )
    if args.which == "codebook-bits":
        points = codebook_bits_ablation()
        return "Codebook size ablation:\n" + format_table(
            ["Weight bits", "Entries", "RMS error", "Relative RMS error"],
            [[p.weight_bits, p.codebook_entries, p.rms_error, p.relative_rms_error]
             for p in points],
        )
    benchmark = args.benchmarks[0]
    results = partitioning_ablation(benchmark, num_pes=args.pes, builder=builder,
                                    fifo_depth=args.fifo_depth)
    return f"Workload partitioning ablation ({benchmark}, {args.pes} PEs):\n" + format_table(
        ["Strategy", "Total cycles", "Compute", "Communication", "Load balance", "Idle PEs"],
        [[name, r.total_cycles, r.compute_cycles, r.communication_cycles,
          r.load_balance_efficiency, r.idle_pes] for name, r in results.items()],
    )


def _run_engine(args: argparse.Namespace) -> str:
    """Compress one synthetic layer and run it through the selected engine.

    This is the CLI face of the :mod:`repro.engine` seam (and the CI smoke
    test): a Bernoulli-sparse layer is compressed once into the session
    cache, prepared once, and the whole activation batch is executed with a
    single ``run`` call.
    """
    import numpy as np

    if args.rows < 1 or args.cols < 1 or args.batch < 1:
        raise SystemExit("run: --rows, --cols and --batch must be >= 1")
    if not 0.0 < args.density <= 1.0:
        raise SystemExit("run: --density must be in (0, 1]")
    if not 0.0 < args.activation_density <= 1.0:
        raise SystemExit("run: --activation-density must be in (0, 1]")
    config = _config(args)
    rng = make_rng(args.seed)
    weights = rng.normal(0.0, 0.1, size=(args.rows, args.cols))
    session = Session(CompressionConfig(target_density=args.density), config=config)
    layer = session.compress(weights, num_pes=config.num_pes, name="cli-synthetic")
    activations = rng.uniform(0.1, 1.0, size=(args.batch, args.cols))
    activations[rng.random((args.batch, args.cols)) >= args.activation_density] = 0.0
    result = session.run(args.engine, layer, activations)

    rows: list[list[object]] = [
        ["Engine", args.engine],
        ["Layer", f"{layer.rows} x {layer.cols} ({layer.weight_density:.1%} dense)"],
        ["PEs / FIFO depth", f"{config.num_pes} / {config.fifo_depth}"],
        ["Batch", result.batch_size],
    ]
    if result.outputs is not None:
        reference = np.maximum(layer.dense_weights() @ activations.T, 0.0).T
        rows.append(["Output shape", "x".join(str(s) for s in result.outputs.shape)])
        rows.append(["Matches dense reference", bool(np.allclose(result.outputs, reference))])
    if result.functional:
        rows.append(["Broadcasts (mean)",
                     sum(f.broadcasts for f in result.functional) / len(result.functional)])
        rows.append(["Entries processed (total)",
                     sum(f.total_entries_processed for f in result.functional)])
    if result.cycles:
        total = sum(stats.total_cycles for stats in result.cycles)
        rows.append(["Cycles (total)", total])
        rows.append(["Latency (us, total)", f"{sum(s.time_s for s in result.cycles) * 1e6:.2f}"])
        rows.append(["Load balance (first item)",
                     f"{result.cycles[0].load_balance_efficiency:.1%}"])
    if "rtl" in result.extra:
        per_item = result.extra["rtl"]
        rows.append(["RTL cycles (max PE, first item)",
                     max(r.cycles for r in per_item[0])])
    return f"Engine run ({args.engine}):\n" + format_table(["Field", "Value"], rows)


def _run_summary(args: argparse.Namespace) -> str:
    config = _config(args)
    rows = [
        ["Processing elements", config.num_pes],
        ["Clock (MHz)", config.clock_mhz],
        ["FIFO depth", config.fifo_depth],
        ["Spmat SRAM width (bits)", config.spmat_sram_width_bits],
        ["Weights per PE (capacity)", config.weights_per_pe_capacity],
        ["Peak GOP/s (compressed)", config.peak_gops],
        ["Chip area (mm2)", chip_area_mm2(config.num_pes)],
        ["Chip power (W)", chip_power_w(config.num_pes)],
    ]
    return "EIE configuration summary:\n" + format_table(["Parameter", "Value"], rows)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli`` / the ``repro-eie`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    builder = WorkloadBuilder()
    if args.command == "table":
        output = _run_table(args, builder)
    elif args.command == "figure":
        output = _run_figure(args, builder)
    elif args.command == "ablation":
        output = _run_ablation(args, builder)
    elif args.command == "run":
        output = _run_engine(args)
    else:
        output = _run_summary(args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
