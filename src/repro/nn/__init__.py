"""Neural-network substrate: layers, models, LSTM and reference kernels.

This package provides the minimal numpy-based deep-learning stack the paper's
workloads need: fully-connected layers with ReLU (the M x V building block EIE
accelerates), an LSTM cell decomposed into the eight matrix-vector products
the paper describes, fixed-point quantisation used for the arithmetic
precision study (Figure 10), and dense/sparse reference kernels that the EIE
simulators are validated against.
"""

from repro.nn.convolution import (
    ConvWorkload,
    conv1x1_as_matvec,
    conv2d_via_im2col,
    direct_conv2d,
    im2col,
    winograd_conv2d_3x3,
    winograd_multiplication_savings,
)
from repro.nn.fixed_point import FixedPointFormat, quantization_snr_db
from repro.nn.layers import FullyConnectedLayer, identity, relu, sigmoid, tanh
from repro.nn.lstm import LSTMCell, LSTMState
from repro.nn.model import FeedForwardNetwork
from repro.nn.reference import CSRMatrix, csr_matrix_vector, dense_matrix_vector, sparse_density

__all__ = [
    "CSRMatrix",
    "ConvWorkload",
    "FeedForwardNetwork",
    "FixedPointFormat",
    "FullyConnectedLayer",
    "LSTMCell",
    "LSTMState",
    "conv1x1_as_matvec",
    "conv2d_via_im2col",
    "csr_matrix_vector",
    "dense_matrix_vector",
    "direct_conv2d",
    "identity",
    "im2col",
    "quantization_snr_db",
    "relu",
    "sigmoid",
    "sparse_density",
    "tanh",
    "winograd_conv2d_3x3",
    "winograd_multiplication_savings",
]
