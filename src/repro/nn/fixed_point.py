"""Fixed-point number formats and quantisation.

EIE uses 16-bit fixed-point arithmetic internally: the 4-bit weight index is
expanded through the shared codebook to a 16-bit fixed-point value, and the
accumulators and activation register files are 16 bits wide.  The arithmetic
precision study (Figure 10) compares 32-bit float, 32-bit, 16-bit and 8-bit
fixed point; this module supplies the quantisation used for that study and
for the bit-exact mode of the functional simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FixedPointFormat", "quantization_snr_db", "FORMATS"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format Q(total-frac-1).(frac).

    Attributes:
        total_bits: total width in bits including the sign bit.
        fraction_bits: number of fractional bits.
    """

    total_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ConfigurationError(f"total_bits must be >= 2, got {self.total_bits}")
        if not 0 <= self.fraction_bits < self.total_bits:
            raise ConfigurationError(
                "fraction_bits must satisfy 0 <= fraction_bits < total_bits, "
                f"got {self.fraction_bits} for {self.total_bits} total bits"
            )

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** -self.fraction_bits

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.total_bits - 1)) * self.scale

    def to_fixed(self, values: np.ndarray | float) -> np.ndarray:
        """Quantise ``values`` to integer codes with saturation."""
        codes = np.round(np.asarray(values, dtype=np.float64) / self.scale)
        low = -(2 ** (self.total_bits - 1))
        high = 2 ** (self.total_bits - 1) - 1
        return np.clip(codes, low, high).astype(np.int64)

    def to_float(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer codes back to floating point."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Round-trip ``values`` through the format (quantise then dequantise)."""
        return self.to_float(self.to_fixed(values))

    def quantization_error(self, values: np.ndarray) -> np.ndarray:
        """Element-wise quantisation error ``quantize(x) - x``."""
        values = np.asarray(values, dtype=np.float64)
        return self.quantize(values) - values


#: Formats used in the Figure 10 precision study.  Fraction bits are chosen
#: so that typical FC-layer activations (roughly in [-8, 8)) do not saturate.
FORMATS: dict[str, FixedPointFormat | None] = {
    "float32": None,
    "int32": FixedPointFormat(total_bits=32, fraction_bits=16),
    "int16": FixedPointFormat(total_bits=16, fraction_bits=8),
    "int8": FixedPointFormat(total_bits=8, fraction_bits=4),
}


def quantization_snr_db(values: np.ndarray, fmt: FixedPointFormat | None) -> float:
    """Signal-to-quantisation-noise ratio in dB for ``values`` under ``fmt``.

    ``fmt=None`` means full floating point and returns ``inf``.  The SNR feeds
    the accuracy-degradation model used to reproduce Figure 10's right axis
    without the ImageNet dataset.
    """
    if fmt is None:
        return float("inf")
    values = np.asarray(values, dtype=np.float64)
    signal_power = float(np.mean(values**2))
    if signal_power == 0.0:
        return float("inf")
    error = fmt.quantization_error(values)
    noise_power = float(np.mean(error**2))
    if noise_power == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)
