"""LSTM cell decomposed into the paper's eight matrix-vector products.

Section II of the paper notes that each LSTM cell can be decomposed into
eight M x V operations: two (input projection and recurrent projection) for
each of the input gate, forget gate, output gate, and candidate cell update.
The NeuralTalk benchmarks (NT-We, NT-Wd, NT-LSTM) exercise exactly these
matrices.  This implementation exposes each of the eight products separately
so that the EIE simulators can be applied per-matrix, just as the paper's
benchmark table lists NT-LSTM as a single (stacked) 1201 x 2400 layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import sigmoid, tanh
from repro.utils.validation import require_matrix, require_vector

__all__ = ["LSTMState", "LSTMCell", "LSTM_GATE_NAMES"]

#: The four LSTM gates, each of which needs an input and a recurrent M x V.
LSTM_GATE_NAMES = ("input", "forget", "output", "cell")


@dataclass
class LSTMState:
    """Hidden and cell state of an LSTM at one time step."""

    hidden: np.ndarray
    cell: np.ndarray

    @classmethod
    def zeros(cls, hidden_size: int) -> "LSTMState":
        """Return an all-zero state of the given size."""
        return cls(hidden=np.zeros(hidden_size), cell=np.zeros(hidden_size))


class LSTMCell:
    """A standard LSTM cell with explicit per-gate weight matrices.

    Args:
        input_weights: dict mapping gate name to a ``(hidden, input)`` matrix
            (the ``W`` matrices applied to the new input ``x_t``).
        recurrent_weights: dict mapping gate name to a ``(hidden, hidden)``
            matrix (the ``U`` matrices applied to the previous hidden state).
        biases: optional dict mapping gate name to a ``(hidden,)`` bias.
    """

    def __init__(
        self,
        input_weights: dict[str, np.ndarray],
        recurrent_weights: dict[str, np.ndarray],
        biases: dict[str, np.ndarray] | None = None,
    ) -> None:
        missing = [g for g in LSTM_GATE_NAMES if g not in input_weights or g not in recurrent_weights]
        if missing:
            raise ConfigurationError(f"missing weights for gates: {missing}")
        self.input_weights = {
            gate: np.asarray(require_matrix(f"input_weights[{gate}]", input_weights[gate]), dtype=np.float64)
            for gate in LSTM_GATE_NAMES
        }
        self.recurrent_weights = {
            gate: np.asarray(
                require_matrix(f"recurrent_weights[{gate}]", recurrent_weights[gate]), dtype=np.float64
            )
            for gate in LSTM_GATE_NAMES
        }
        hidden_sizes = {w.shape[0] for w in self.input_weights.values()}
        hidden_sizes |= {w.shape[0] for w in self.recurrent_weights.values()}
        if len(hidden_sizes) != 1:
            raise ConfigurationError(f"inconsistent hidden sizes: {sorted(hidden_sizes)}")
        self.hidden_size = hidden_sizes.pop()
        input_sizes = {w.shape[1] for w in self.input_weights.values()}
        if len(input_sizes) != 1:
            raise ConfigurationError(f"inconsistent input sizes: {sorted(input_sizes)}")
        self.input_size = input_sizes.pop()
        for gate in LSTM_GATE_NAMES:
            if self.recurrent_weights[gate].shape[1] != self.hidden_size:
                raise ConfigurationError(
                    f"recurrent weight for gate {gate!r} must be square in the hidden size"
                )
        if biases is None:
            biases = {}
        self.biases = {
            gate: np.asarray(biases.get(gate, np.zeros(self.hidden_size)), dtype=np.float64)
            for gate in LSTM_GATE_NAMES
        }

    # -- structure queries ----------------------------------------------------

    @property
    def num_matrix_vector_products(self) -> int:
        """The paper's count of M x V operations per LSTM step (eight)."""
        return 2 * len(LSTM_GATE_NAMES)

    def matrices(self) -> list[tuple[str, np.ndarray]]:
        """All eight weight matrices with descriptive names."""
        result: list[tuple[str, np.ndarray]] = []
        for gate in LSTM_GATE_NAMES:
            result.append((f"W_{gate}", self.input_weights[gate]))
            result.append((f"U_{gate}", self.recurrent_weights[gate]))
        return result

    def gate_matrix(self, gate: str) -> np.ndarray:
        """One gate's ``[W_gate | U_gate]`` block matrix.

        Applied to the concatenated ``[x_t, h_{t-1}]`` vector this computes
        ``W x + U h`` as a *single* M x V of shape ``(hidden, input+hidden)``
        — the per-gate unit the model IR lowers an LSTM step to.
        """
        if gate not in LSTM_GATE_NAMES:
            raise ConfigurationError(
                f"unknown gate {gate!r}; expected one of {LSTM_GATE_NAMES}"
            )
        return np.concatenate(
            [self.input_weights[gate], self.recurrent_weights[gate]], axis=1
        )

    def stacked_matrix(self) -> np.ndarray:
        """Stack the eight matrices into one, as the NT-LSTM benchmark does.

        The four input-projection matrices and four recurrent matrices are
        stacked so a single M x V of shape ``(4 * hidden, input + hidden)``
        computes all gate pre-activations at once.  (NT-LSTM's 1201 x 2400
        entry in Table III corresponds to this stacked view, with the +1 from
        the bias column.)
        """
        input_block = np.concatenate([self.input_weights[g] for g in LSTM_GATE_NAMES], axis=0)
        recurrent_block = np.concatenate([self.recurrent_weights[g] for g in LSTM_GATE_NAMES], axis=0)
        return np.concatenate([input_block, recurrent_block], axis=1)

    # -- computation -----------------------------------------------------------

    def gate_pre_activations(self, inputs: np.ndarray, state: LSTMState) -> dict[str, np.ndarray]:
        """Compute the eight M x V products and sum them per gate."""
        inputs = np.asarray(require_vector("inputs", inputs), dtype=np.float64)
        if inputs.shape[0] != self.input_size:
            raise ConfigurationError(
                f"input length {inputs.shape[0]} does not match cell input size {self.input_size}"
            )
        hidden = np.asarray(require_vector("hidden", state.hidden), dtype=np.float64)
        if hidden.shape[0] != self.hidden_size:
            raise ConfigurationError(
                f"hidden length {hidden.shape[0]} does not match cell hidden size {self.hidden_size}"
            )
        pre: dict[str, np.ndarray] = {}
        for gate in LSTM_GATE_NAMES:
            pre[gate] = (
                self.input_weights[gate] @ inputs
                + self.recurrent_weights[gate] @ hidden
                + self.biases[gate]
            )
        return pre

    def step(self, inputs: np.ndarray, state: LSTMState) -> LSTMState:
        """Advance the cell by one time step and return the new state."""
        pre = self.gate_pre_activations(inputs, state)
        input_gate = sigmoid(pre["input"])
        forget_gate = sigmoid(pre["forget"])
        output_gate = sigmoid(pre["output"])
        candidate = tanh(pre["cell"])
        new_cell = forget_gate * state.cell + input_gate * candidate
        new_hidden = output_gate * tanh(new_cell)
        return LSTMState(hidden=new_hidden, cell=new_cell)

    def run_sequence(self, sequence: np.ndarray, state: LSTMState | None = None) -> list[LSTMState]:
        """Run the cell over ``sequence`` (time-major 2-D array) of inputs."""
        sequence = np.asarray(sequence, dtype=np.float64)
        if sequence.ndim != 2:
            raise ConfigurationError(f"sequence must be 2-D (time, features), got {sequence.shape}")
        if state is None:
            state = LSTMState.zeros(self.hidden_size)
        states: list[LSTMState] = []
        for step_input in sequence:
            state = self.step(step_input, state)
            states.append(state)
        return states

    @classmethod
    def random(
        cls,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        scale: float = 0.1,
    ) -> "LSTMCell":
        """Create a cell with random Gaussian weights (for synthetic workloads)."""
        input_weights = {
            gate: rng.normal(0.0, scale, size=(hidden_size, input_size)) for gate in LSTM_GATE_NAMES
        }
        recurrent_weights = {
            gate: rng.normal(0.0, scale, size=(hidden_size, hidden_size)) for gate in LSTM_GATE_NAMES
        }
        return cls(input_weights=input_weights, recurrent_weights=recurrent_weights)
