"""Fully-connected layers and element-wise non-linearities.

Equation (1) of the paper: ``b = f(W a + v)`` where ``f`` is typically ReLU.
The dense :class:`FullyConnectedLayer` is the golden reference the EIE
functional simulator is checked against, and is also what the CPU/GPU
baseline timing models conceptually execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import require_matrix, require_vector

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "identity",
    "ACTIVATIONS",
    "FullyConnectedLayer",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit ``max(x, 0)``."""
    return np.maximum(np.asarray(x), 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(np.asarray(x, dtype=np.float64))


def identity(x: np.ndarray) -> np.ndarray:
    """Identity activation (no non-linearity)."""
    return np.asarray(x)


#: Registry of the supported non-linearities, keyed by name.
ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "identity": identity,
}


@dataclass
class FullyConnectedLayer:
    """A dense fully-connected layer ``b = f(W a + bias)``.

    Attributes:
        weight: weight matrix of shape ``(output_size, input_size)``.
        bias: bias vector of shape ``(output_size,)`` or ``None`` for no bias.
        activation: name of the non-linearity (one of :data:`ACTIVATIONS`).
        name: optional label used in reports.
    """

    weight: np.ndarray
    bias: np.ndarray | None = None
    activation: str = "relu"
    name: str = "fc"

    def __post_init__(self) -> None:
        self.weight = np.asarray(require_matrix("weight", self.weight), dtype=np.float64)
        if self.bias is not None:
            self.bias = np.asarray(require_vector("bias", self.bias), dtype=np.float64)
            if self.bias.shape[0] != self.weight.shape[0]:
                raise ConfigurationError(
                    f"bias length {self.bias.shape[0]} does not match "
                    f"output size {self.weight.shape[0]}"
                )
        if self.activation not in ACTIVATIONS:
            raise ConfigurationError(
                f"unknown activation {self.activation!r}; "
                f"expected one of {sorted(ACTIVATIONS)}"
            )

    @property
    def output_size(self) -> int:
        """Number of output activations (matrix rows)."""
        return self.weight.shape[0]

    @property
    def input_size(self) -> int:
        """Number of input activations (matrix columns)."""
        return self.weight.shape[1]

    @property
    def num_weights(self) -> int:
        """Number of weights in the dense matrix."""
        return self.weight.size

    @property
    def weight_density(self) -> float:
        """Fraction of non-zero weights."""
        return float(np.count_nonzero(self.weight)) / max(self.weight.size, 1)

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the dense computation."""
        return self.weight.size

    @property
    def flops(self) -> int:
        """Floating-point operation count (2 per weight: multiply and add)."""
        return 2 * self.weight.size

    def pre_activation(self, inputs: np.ndarray) -> np.ndarray:
        """Return ``W a + bias`` without the non-linearity."""
        inputs = require_vector("inputs", inputs)
        if inputs.shape[0] != self.input_size:
            raise ConfigurationError(
                f"input length {inputs.shape[0]} does not match layer "
                f"input size {self.input_size}"
            )
        result = self.weight @ np.asarray(inputs, dtype=np.float64)
        if self.bias is not None:
            result = result + self.bias
        return result

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute ``f(W a + bias)``."""
        return ACTIVATIONS[self.activation](self.pre_activation(inputs))

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)
