"""Reference dense and sparse matrix-vector kernels.

These are the software kernels the baseline platforms run (dense GEMV for the
uncompressed model, CSR-based sparse M x V for the compressed model) and the
golden reference the EIE simulators are validated against.  They are written
for clarity rather than speed; the vectorised numpy dense product is used as
the ground truth everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import require_matrix, require_vector

__all__ = [
    "dense_matrix_vector",
    "CSRMatrix",
    "csr_matrix_vector",
    "sparse_density",
]


def dense_matrix_vector(weight: np.ndarray, activation: np.ndarray) -> np.ndarray:
    """Dense ``W @ a`` used as the golden model."""
    weight = require_matrix("weight", weight)
    activation = require_vector("activation", activation)
    if weight.shape[1] != activation.shape[0]:
        raise ConfigurationError(
            f"matrix columns {weight.shape[1]} != vector length {activation.shape[0]}"
        )
    return np.asarray(weight, dtype=np.float64) @ np.asarray(activation, dtype=np.float64)


def sparse_density(array: np.ndarray) -> float:
    """Fraction of non-zero entries of ``array`` (0 for an empty array)."""
    array = np.asarray(array)
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(array)) / array.size


@dataclass
class CSRMatrix:
    """A compressed-sparse-row matrix (the format cuSPARSE/MKL baselines use).

    Attributes:
        values: non-zero values, row-major.
        col_indices: column index of each non-zero.
        row_ptr: length ``rows + 1`` offsets into ``values`` per row.
        shape: ``(rows, cols)`` of the dense matrix.
    """

    values: np.ndarray
    col_indices: np.ndarray
    row_ptr: np.ndarray
    shape: tuple[int, int]

    @classmethod
    def from_dense(cls, weight: np.ndarray) -> "CSRMatrix":
        """Build a CSR representation of ``weight``."""
        weight = np.asarray(require_matrix("weight", weight), dtype=np.float64)
        rows, cols = weight.shape
        values: list[float] = []
        col_indices: list[int] = []
        row_ptr = np.zeros(rows + 1, dtype=np.int64)
        for i in range(rows):
            nonzero_cols = np.nonzero(weight[i])[0]
            values.extend(weight[i, nonzero_cols].tolist())
            col_indices.extend(nonzero_cols.tolist())
            row_ptr[i + 1] = len(values)
        return cls(
            values=np.asarray(values, dtype=np.float64),
            col_indices=np.asarray(col_indices, dtype=np.int64),
            row_ptr=row_ptr,
            shape=(rows, cols),
        )

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.values.shape[0])

    @property
    def density(self) -> float:
        """Fraction of non-zeros relative to the dense size."""
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        """Expand back to a dense matrix."""
        rows, cols = self.shape
        dense = np.zeros((rows, cols), dtype=np.float64)
        for i in range(rows):
            start, end = self.row_ptr[i], self.row_ptr[i + 1]
            dense[i, self.col_indices[start:end]] = self.values[start:end]
        return dense


def csr_matrix_vector(matrix: CSRMatrix, activation: np.ndarray) -> np.ndarray:
    """Sparse ``W @ a`` over a CSR matrix (row-by-row dot products)."""
    activation = np.asarray(require_vector("activation", activation), dtype=np.float64)
    rows, cols = matrix.shape
    if activation.shape[0] != cols:
        raise ConfigurationError(
            f"matrix columns {cols} != vector length {activation.shape[0]}"
        )
    result = np.zeros(rows, dtype=np.float64)
    for i in range(rows):
        start, end = matrix.row_ptr[i], matrix.row_ptr[i + 1]
        if end > start:
            result[i] = np.dot(
                matrix.values[start:end], activation[matrix.col_indices[start:end]]
            )
    return result
