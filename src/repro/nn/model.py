"""Multi-layer feed-forward models built from fully-connected layers.

The paper's CNN benchmarks only exercise the fully-connected tail of AlexNet
and VGG-16 (FC6, FC7, FC8), so a simple sequential stack of
:class:`~repro.nn.layers.FullyConnectedLayer` objects is the model abstraction
EIE needs.  The network records the intermediate activations so that the
activation-sparsity statistics (the ``Act%`` column of Table III) can be
measured on real forward passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import FullyConnectedLayer
from repro.nn.reference import sparse_density
from repro.utils.validation import require_vector

__all__ = ["FeedForwardNetwork", "ForwardTrace"]


@dataclass
class ForwardTrace:
    """Record of one forward pass through a feed-forward network.

    Attributes:
        inputs: the network input vector.
        activations: output of each layer, in order.
    """

    inputs: np.ndarray
    activations: list[np.ndarray] = field(default_factory=list)

    @property
    def output(self) -> np.ndarray:
        """Final network output."""
        if not self.activations:
            return self.inputs
        return self.activations[-1]

    def layer_input(self, index: int) -> np.ndarray:
        """The vector fed into layer ``index``."""
        if index == 0:
            return self.inputs
        return self.activations[index - 1]

    def activation_density(self, index: int) -> float:
        """Density of the vector fed into layer ``index`` (dynamic sparsity)."""
        return sparse_density(self.layer_input(index))


class FeedForwardNetwork:
    """A sequential stack of fully-connected layers.

    The output size of every layer must match the input size of the next.
    """

    def __init__(self, layers: list[FullyConnectedLayer], name: str = "network") -> None:
        if not layers:
            raise ConfigurationError("a network needs at least one layer")
        for previous, current in zip(layers, layers[1:]):
            if previous.output_size != current.input_size:
                raise ConfigurationError(
                    f"layer {previous.name!r} output size {previous.output_size} does "
                    f"not match layer {current.name!r} input size {current.input_size}"
                )
        self.layers = list(layers)
        self.name = name

    @property
    def input_size(self) -> int:
        """Input vector length expected by the first layer."""
        return self.layers[0].input_size

    @property
    def output_size(self) -> int:
        """Output vector length produced by the last layer."""
        return self.layers[-1].output_size

    @property
    def num_parameters(self) -> int:
        """Total number of dense weights (plus biases) in the network."""
        total = 0
        for layer in self.layers:
            total += layer.num_weights
            if layer.bias is not None:
                total += layer.bias.shape[0]
        return total

    @property
    def total_flops(self) -> int:
        """FLOPs of one dense forward pass (2 per weight)."""
        return sum(layer.flops for layer in self.layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the network and return the final output."""
        return self.trace(inputs).output

    def trace(self, inputs: np.ndarray) -> ForwardTrace:
        """Run the network and return all intermediate activations."""
        inputs = np.asarray(require_vector("inputs", inputs), dtype=np.float64)
        if inputs.shape[0] != self.input_size:
            raise ConfigurationError(
                f"input length {inputs.shape[0]} does not match network "
                f"input size {self.input_size}"
            )
        trace = ForwardTrace(inputs=inputs)
        current = inputs
        for layer in self.layers:
            current = layer.forward(current)
            trace.activations.append(current)
        return trace

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)
