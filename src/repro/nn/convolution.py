"""Convolution lowering onto matrix-vector products (Section VII-C).

The paper notes that EIE "has the potential to support 1x1 convolution and
3x3 Winograd convolution by turning the channel-wise reduction into an M x V":

* a **1x1 convolution** over a ``C_in x H x W`` feature map is exactly one
  ``C_out x C_in`` matrix applied independently to every spatial position —
  each position's channel vector is one EIE activation vector;
* a **3x3 Winograd convolution** (F(2x2, 3x3)) transforms 4x4 input tiles and
  3x3 kernels into the 4x4 Winograd domain, where the per-tile work becomes
  16 independent channel-wise reductions — i.e. 16 M x V operations per tile
  batch — saving 2.25x multiplications versus direct convolution.

This module provides the reference direct convolution, the im2col lowering,
the 1x1-as-M x V lowering, and a full F(2x2, 3x3) Winograd implementation,
all validated against each other in the test suite, plus helpers that count
the multiplications each approach needs (the 2.25x claim).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "direct_conv2d",
    "im2col",
    "conv2d_via_im2col",
    "conv1x1_as_matvec",
    "winograd_conv2d_3x3",
    "winograd_multiplication_savings",
    "ConvWorkload",
]

#: Winograd F(2x2, 3x3) transform matrices (Lavin & Gray).
_WINOGRAD_B_T = np.array(
    [
        [1.0, 0.0, -1.0, 0.0],
        [0.0, 1.0, 1.0, 0.0],
        [0.0, -1.0, 1.0, 0.0],
        [0.0, 1.0, 0.0, -1.0],
    ]
)
_WINOGRAD_G = np.array(
    [
        [1.0, 0.0, 0.0],
        [0.5, 0.5, 0.5],
        [0.5, -0.5, 0.5],
        [0.0, 0.0, 1.0],
    ]
)
_WINOGRAD_A_T = np.array(
    [
        [1.0, 1.0, 1.0, 0.0],
        [0.0, 1.0, -1.0, -1.0],
    ]
)


def _check_feature_map(feature_map: np.ndarray) -> np.ndarray:
    feature_map = np.asarray(feature_map, dtype=np.float64)
    if feature_map.ndim != 3:
        raise ConfigurationError(
            f"feature map must be (channels, height, width), got shape {feature_map.shape}"
        )
    return feature_map


def _check_kernels(kernels: np.ndarray) -> np.ndarray:
    kernels = np.asarray(kernels, dtype=np.float64)
    if kernels.ndim != 4:
        raise ConfigurationError(
            f"kernels must be (out_channels, in_channels, kh, kw), got shape {kernels.shape}"
        )
    return kernels


def direct_conv2d(
    feature_map: np.ndarray, kernels: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Reference valid/padded convolution (cross-correlation, as in DNNs)."""
    feature_map = _check_feature_map(feature_map)
    kernels = _check_kernels(kernels)
    in_channels, height, width = feature_map.shape
    out_channels, kernel_in, kernel_h, kernel_w = kernels.shape
    if kernel_in != in_channels:
        raise ConfigurationError(
            f"kernel expects {kernel_in} input channels, feature map has {in_channels}"
        )
    if stride < 1 or padding < 0:
        raise ConfigurationError("stride must be >= 1 and padding >= 0")
    padded = np.pad(feature_map, ((0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ConfigurationError("kernel does not fit in the (padded) feature map")
    output = np.zeros((out_channels, out_h, out_w))
    for out_channel in range(out_channels):
        for row in range(out_h):
            for col in range(out_w):
                patch = padded[
                    :,
                    row * stride: row * stride + kernel_h,
                    col * stride: col * stride + kernel_w,
                ]
                output[out_channel, row, col] = float(np.sum(patch * kernels[out_channel]))
    return output


def im2col(
    feature_map: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold a feature map into the ``(C_in*kh*kw, out_h*out_w)`` patch matrix."""
    feature_map = _check_feature_map(feature_map)
    in_channels, height, width = feature_map.shape
    padded = np.pad(feature_map, ((0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ConfigurationError("kernel does not fit in the (padded) feature map")
    columns = np.zeros((in_channels * kernel_h * kernel_w, out_h * out_w))
    position = 0
    for row in range(out_h):
        for col in range(out_w):
            patch = padded[
                :, row * stride: row * stride + kernel_h, col * stride: col * stride + kernel_w
            ]
            columns[:, position] = patch.reshape(-1)
            position += 1
    return columns


def conv2d_via_im2col(
    feature_map: np.ndarray, kernels: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Convolution lowered to one matrix multiplication (a stack of M x V)."""
    feature_map = _check_feature_map(feature_map)
    kernels = _check_kernels(kernels)
    out_channels, in_channels, kernel_h, kernel_w = kernels.shape
    columns = im2col(feature_map, kernel_h, kernel_w, stride, padding)
    weight_matrix = kernels.reshape(out_channels, in_channels * kernel_h * kernel_w)
    height, width = feature_map.shape[1:]
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    return (weight_matrix @ columns).reshape(out_channels, out_h, out_w)


def conv1x1_as_matvec(feature_map: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """1x1 convolution: one ``C_out x C_in`` M x V per spatial position.

    Returns the same result as :func:`direct_conv2d` with 1x1 kernels.  The
    per-position channel vectors are exactly the activation vectors an EIE
    array would receive, so a compressed ``weight`` lets EIE accelerate the
    whole 1x1 layer as ``H*W`` M x V operations.
    """
    feature_map = _check_feature_map(feature_map)
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ConfigurationError(f"1x1 weights must be (out_channels, in_channels), got {weight.shape}")
    in_channels, height, width = feature_map.shape
    if weight.shape[1] != in_channels:
        raise ConfigurationError(
            f"weight expects {weight.shape[1]} input channels, feature map has {in_channels}"
        )
    flattened = feature_map.reshape(in_channels, height * width)
    return (weight @ flattened).reshape(weight.shape[0], height, width)


def winograd_conv2d_3x3(feature_map: np.ndarray, kernels: np.ndarray) -> np.ndarray:
    """F(2x2, 3x3) Winograd convolution (valid padding, stride 1).

    The input height and width must be even and at least 4 so the output
    tiles exactly; this matches how Winograd layers are used in practice
    (inputs are padded up to a multiple of the tile size).

    In the Winograd domain the element-wise products over the 4x4 tile
    positions are channel-wise reductions: for each of the 16 tile positions
    the contribution is a ``C_out x C_in`` matrix applied to a ``C_in``
    vector, which is the M x V EIE would execute (16 of them per tile batch).
    """
    feature_map = _check_feature_map(feature_map)
    kernels = _check_kernels(kernels)
    out_channels, in_channels, kernel_h, kernel_w = kernels.shape
    if (kernel_h, kernel_w) != (3, 3):
        raise ConfigurationError("Winograd F(2x2,3x3) needs 3x3 kernels")
    if kernels.shape[1] != feature_map.shape[0]:
        raise ConfigurationError("kernel/feature-map channel mismatch")
    channels, height, width = feature_map.shape
    out_h, out_w = height - 2, width - 2
    if out_h < 2 or out_w < 2 or out_h % 2 or out_w % 2:
        raise ConfigurationError(
            "Winograd F(2x2,3x3) needs an even output size of at least 2x2; pad the input"
        )
    # Transform all kernels: U[k, c] = G g G^T (4x4 per filter/channel pair).
    transformed_kernels = np.einsum("ij,ocjk,lk->ocil", _WINOGRAD_G, kernels, _WINOGRAD_G)
    output = np.zeros((out_channels, out_h, out_w))
    for tile_row in range(0, out_h, 2):
        for tile_col in range(0, out_w, 2):
            tile = feature_map[:, tile_row: tile_row + 4, tile_col: tile_col + 4]
            # V[c] = B^T d B for each input channel.
            transformed_tile = np.einsum("ij,cjk,lk->cil", _WINOGRAD_B_T, tile, _WINOGRAD_B_T)
            # Channel-wise reduction per Winograd position: M[o] = sum_c U*V.
            products = np.einsum("ocij,cij->oij", transformed_kernels, transformed_tile)
            # Inverse transform back to the 2x2 output tile.
            tile_output = np.einsum("ij,ojk,lk->oil", _WINOGRAD_A_T, products, _WINOGRAD_A_T)
            output[:, tile_row: tile_row + 2, tile_col: tile_col + 2] = tile_output
    return output


def winograd_multiplication_savings() -> float:
    """Multiplication savings of F(2x2, 3x3) over direct 3x3 convolution.

    Direct convolution needs ``2*2*3*3 = 36`` multiplications per 2x2 output
    tile and channel pair; Winograd needs ``4*4 = 16`` — a factor of 2.25,
    which is the number the paper quotes.
    """
    direct = 2 * 2 * 3 * 3
    winograd = 4 * 4
    return direct / winograd


@dataclass(frozen=True)
class ConvWorkload:
    """How a convolution maps onto EIE M x V operations.

    Attributes:
        matrix_shape: shape of the (compressible) weight matrix EIE holds.
        num_matvecs: number of M x V operations per input feature map.
        description: human-readable summary of the mapping.
    """

    matrix_shape: tuple[int, int]
    num_matvecs: int
    description: str

    @classmethod
    def for_conv1x1(cls, out_channels: int, in_channels: int, height: int, width: int) -> "ConvWorkload":
        """Mapping of a 1x1 convolution: one M x V per spatial position."""
        return cls(
            matrix_shape=(out_channels, in_channels),
            num_matvecs=height * width,
            description="1x1 convolution as per-pixel channel-wise M x V",
        )

    @classmethod
    def for_winograd_3x3(cls, out_channels: int, in_channels: int, height: int, width: int) -> "ConvWorkload":
        """Mapping of a 3x3 Winograd convolution: 16 M x V per tile batch."""
        tiles = ((height - 2) // 2) * ((width - 2) // 2)
        return cls(
            matrix_shape=(out_channels, in_channels),
            num_matvecs=16 * tiles,
            description="3x3 Winograd convolution: 16 channel-wise M x V per 4x4 tile",
        )
