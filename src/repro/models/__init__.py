"""repro.models: the whole-network model layer.

The third seam of the library (after :mod:`repro.engine` and
:mod:`repro.experiments`): a canonical model IR plus registry that lowers any
supported network — FC tails, LSTM gate stacks, convolutions via im2col,
imported ``.npz`` state dicts — to an ordered graph of matrix-vector nodes
the compression pipeline and every simulation engine already understand.

* :class:`ModelIR` / :class:`MatVecNode` — the IR and its lowering
  constructors (``from_network`` / ``from_lstm`` / ``from_conv`` /
  ``from_npz``) (:mod:`repro.models.ir`);
* :class:`ModelSpec` — frozen, JSON-round-tripping build description,
  mirroring :class:`~repro.experiments.spec.ExperimentSpec`
  (:mod:`repro.models.spec`);
* :class:`ModelRegistry` — string-keyed registry pre-populated with the
  paper's networks (``alexnet_fc``, ``vgg_fc``, ``neuraltalk_lstm``) at
  Table III densities (:mod:`repro.models.registry`,
  :mod:`repro.models.catalog`);
* :class:`CompressedModel` / :class:`ModelRunResult` — what
  ``Session.compress_model`` and ``Session.run_model`` return
  (:mod:`repro.models.compressed`).

Typical use::

    from repro import Session
    from repro.models import build_model

    model = build_model("neuraltalk_lstm", scale=16)
    session = Session()
    compressed = session.compress_model(model, num_pes=16)
    result = session.run_model("cycle", model, inputs)
    print(result.latency_s, result.energy_j)

See ``docs/ARCHITECTURE.md`` ("The model layer") for the lowering rules and
a worked "import your own .npz" example.
"""

from repro.models.catalog import BUILTIN_MODELS
from repro.models.compressed import CompressedModel, ModelRunResult, NodeRun
from repro.models.inputs import synthetic_model_inputs
from repro.models.ir import INPUT, MatVecNode, ModelIR, ModelTrace, conv_activation_batch
from repro.models.registry import (
    ModelRegistry,
    RegisteredModel,
    build_model,
    register_model,
)
from repro.models.spec import ModelSpec

__all__ = [
    "BUILTIN_MODELS",
    "CompressedModel",
    "INPUT",
    "MatVecNode",
    "ModelIR",
    "ModelRegistry",
    "ModelRunResult",
    "ModelSpec",
    "ModelTrace",
    "NodeRun",
    "RegisteredModel",
    "build_model",
    "conv_activation_batch",
    "register_model",
    "synthetic_model_inputs",
]
