"""Whole-model results: compressed models and model run records.

:class:`CompressedModel` is what :meth:`Session.compress_model
<repro.engine.session.Session.compress_model>` returns — one
:class:`~repro.compression.pipeline.CompressedLayer` per IR node (deduplicated
through the session's fingerprint-keyed layer cache) plus aggregate storage
accounting.  :class:`ModelRunResult` is what :meth:`Session.run_model
<repro.engine.session.Session.run_model>` returns — the per-node
:class:`~repro.engine.base.EngineResult` records, the propagated activation
values whose measured sparsity fed each node's broadcast set, and
whole-network latency/energy totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.compression.pipeline import CompressedLayer
from repro.core.cycle_model import CycleStats
from repro.engine.base import EngineResult
from repro.errors import SimulationError
from repro.hardware.area import chip_power_w
from repro.models.ir import ModelIR
from repro.nn.reference import sparse_density

__all__ = ["CompressedModel", "NodeRun", "ModelRunResult"]


@dataclass
class CompressedModel:
    """A model IR after per-node Deep Compression.

    Attributes:
        model: the source IR (wiring, activations, dense reference).
        num_pes: PE count every node is interleaved over.
        layers: one compressed layer per node, keyed by node name, in node
            order.  Nodes with identical weight matrices share the *same*
            :class:`CompressedLayer` object (session-level deduplication via
            ``weights_fingerprint``).
    """

    model: ModelIR
    num_pes: int
    layers: dict[str, CompressedLayer]

    def __post_init__(self) -> None:
        missing = [node.name for node in self.model if node.name not in self.layers]
        if missing:
            raise SimulationError(f"compressed model is missing layers for nodes: {missing}")

    @property
    def name(self) -> str:
        """The source model's name."""
        return self.model.name

    def layer(self, node_name: str) -> CompressedLayer:
        """The compressed layer of one node."""
        return self.layers[node_name]

    def __iter__(self):
        for node in self.model:
            yield node, self.layers[node.name]

    def storage_report(self) -> dict[str, Any]:
        """Aggregate storage/compression statistics plus per-node reports.

        Shared layers (deduplicated weights) are counted once in the
        aggregate, the way deployed weights would be stored.
        """
        per_node: list[dict[str, Any]] = []
        seen: set[int] = set()
        dense_bits = 0.0
        compressed_bits = 0.0
        huffman_bits = 0.0
        true_nonzeros = 0
        dense_weights = 0
        for node, layer in self:
            report = layer.storage_report()
            per_node.append({"node": node.name, "shared": id(layer) in seen, **report})
            if id(layer) in seen:
                continue
            seen.add(id(layer))
            dense_bits += report["dense_bits"]
            compressed_bits += report["compressed_bits"]
            huffman_bits += report["huffman_bits"]
            true_nonzeros += layer.num_nonzero_weights
            dense_weights += layer.dense_weight_count
        return {
            "model": self.model.name,
            "num_nodes": self.model.num_nodes,
            "num_unique_layers": len(seen),
            "dense_bits": dense_bits,
            "compressed_bits": compressed_bits,
            "huffman_bits": huffman_bits,
            "compression_ratio": dense_bits / compressed_bits if compressed_bits else float("inf"),
            "huffman_compression_ratio": dense_bits / huffman_bits if huffman_bits else float("inf"),
            "weight_density": true_nonzeros / dense_weights if dense_weights else 0.0,
            "per_node": per_node,
        }


@dataclass
class NodeRun:
    """One node's execution record inside a model run.

    Attributes:
        name: node name.
        layer: the compressed layer the node ran as.
        result: the engine's per-node result (cycles, outputs, counters).
        input_density: measured density of the activation batch fed to the
            node — the whole-model analogue of Table III's Act% column.
        output_density: measured density of the node's propagated outputs
            (what downstream nodes receive).
    """

    name: str
    layer: CompressedLayer
    result: EngineResult
    input_density: float
    output_density: float

    @property
    def stats(self) -> CycleStats:
        """First (or only) cycle-statistics record; errors for value engines."""
        return self.result.stats

    @property
    def total_cycles(self) -> int | None:
        """Cycles summed over the batch, or ``None`` for value-only engines."""
        if not self.result.cycles:
            return None
        return int(sum(stats.total_cycles for stats in self.result.cycles))

    @property
    def latency_s(self) -> float | None:
        """Wall-clock seconds summed over the batch, or ``None``."""
        if not self.result.cycles:
            return None
        return float(sum(stats.time_s for stats in self.result.cycles))


@dataclass
class ModelRunResult:
    """Outcome of running one input batch through a whole model.

    Attributes:
        model_name: name of the executed model.
        engine: registry name of the engine every node ran on.
        num_pes: PE count of the configuration.
        batch_size: number of input vectors executed.
        batched: whether the caller passed a matrix or a single vector.
        nodes: per-node execution records, in node order.
        node_outputs: propagated ``(batch, rows)`` activation values per
            node.  Propagation always uses the *compressed* layer's decoded
            weights plus the node's bias and non-linearity, so the measured
            inter-layer sparsity — and therefore every node's broadcast set
            and timing — is identical on every engine (and matches the
            functional engine's float output for bias-free nodes up to
            float summation order).
        outputs: the last node's propagated outputs (the network output).
    """

    model_name: str
    engine: str
    num_pes: int
    batch_size: int
    batched: bool
    nodes: tuple[NodeRun, ...]
    node_outputs: dict[str, np.ndarray] = field(default_factory=dict)
    outputs: np.ndarray | None = None

    def node(self, name: str) -> NodeRun:
        """Look up one node's run record."""
        for record in self.nodes:
            if record.name == name:
                return record
        raise SimulationError(f"model run has no node {name!r}")

    @property
    def output(self) -> np.ndarray:
        """The first (or only) network output vector."""
        if self.outputs is None:
            raise SimulationError("model run recorded no outputs")
        return self.outputs[0]

    # -- whole-network totals -----------------------------------------------------

    @property
    def has_timing(self) -> bool:
        """Whether every node produced cycle statistics."""
        return all(record.result.cycles for record in self.nodes)

    @property
    def total_cycles(self) -> int:
        """Cycles summed over all nodes and batch items."""
        self._require_timing()
        return int(sum(record.total_cycles for record in self.nodes))

    @property
    def latency_s(self) -> float:
        """Whole-network wall-clock seconds summed over the batch.

        Nodes execute sequentially (each consumes the previous node's
        outputs), so one item's network latency is the sum of its per-node
        latencies and the batch total is the sum over items.
        """
        self._require_timing()
        return float(sum(record.latency_s for record in self.nodes))

    @property
    def per_item_latency_s(self) -> np.ndarray:
        """Per-batch-item network latency in seconds (summed over nodes)."""
        self._require_timing()
        totals = np.zeros(self.batch_size, dtype=np.float64)
        for record in self.nodes:
            totals += np.asarray([stats.time_s for stats in record.result.cycles])
        return totals

    @property
    def energy_j(self) -> float:
        """Batch energy in joules: latency times the chip power for ``num_pes``."""
        return self.latency_s * chip_power_w(self.num_pes)

    def _require_timing(self) -> None:
        if not self.has_timing:
            raise SimulationError(
                f"engine {self.engine!r} does not model timing; "
                "run the model on the 'cycle' engine for latency/energy totals"
            )

    def summary(self) -> dict[str, Any]:
        """A JSON-friendly whole-run summary (CLI/report payload)."""
        record: dict[str, Any] = {
            "model": self.model_name,
            "engine": self.engine,
            "num_pes": self.num_pes,
            "batch_size": self.batch_size,
            "nodes": [
                {
                    "node": node.name,
                    "shape": [node.layer.rows, node.layer.cols],
                    "weight_density": node.layer.weight_density,
                    "input_density": node.input_density,
                    "output_density": node.output_density,
                    "total_cycles": node.total_cycles,
                    "latency_us": None if node.latency_s is None else node.latency_s * 1e6,
                }
                for node in self.nodes
            ],
        }
        if self.has_timing:
            record["total_cycles"] = self.total_cycles
            record["latency_us"] = self.latency_s * 1e6
            record["energy_uj"] = self.energy_j * 1e6
        return record


def measured_density(values: np.ndarray) -> float:
    """Fraction of non-zero entries of a batch (the measured Act%)."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    return float(sparse_density(values.reshape(-1)))
