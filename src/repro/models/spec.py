"""Declarative model specifications.

A :class:`ModelSpec` is the *data* form of one model build: which registered
model to construct, at which scale, with which seed and builder parameters.
It mirrors :class:`~repro.experiments.spec.ExperimentSpec` — frozen,
JSON-(de)serializable, validated eagerly, unknown keys rejected by name —
so the CLI, the experiment catalog and tests all describe models the same
way, and a stored ``model.json`` rebuilds the exact same network.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.utils.serialization import jsonable as _jsonable

__all__ = ["ModelSpec"]


@dataclass(frozen=True)
class ModelSpec:
    """One declarative model build.

    Attributes:
        model: registry name of the model (``"alexnet_fc"``,
            ``"neuraltalk_lstm"``, ...).
        scale: down-scaling factor for the network dimensions; ``None`` (the
            default for every scalar field, so partial specs merge cleanly
            over registry defaults) resolves to the registered default.
        seed: RNG seed for synthetic weights; ``None`` = registered default.
        params: builder-specific parameters (e.g. ``{"mode": "stacked"}``
            for the LSTM lowering), overlaid onto the registered defaults.
    """

    model: str
    scale: float | None = None
    seed: int | None = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.model or not isinstance(self.model, str):
            raise ConfigurationError("ModelSpec.model must be a non-empty string")
        if self.scale is not None and self.scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale}")
        object.__setattr__(self, "params", _jsonable(dict(self.params)))

    def merged(self, override: "ModelSpec | None") -> "ModelSpec":
        """Overlay ``override`` onto this (default) spec.

        ``params`` merges key-wise; scalar fields take the override's value
        whenever it is set (non-``None``).
        """
        if override is None:
            return self
        if override.model != self.model:
            raise ConfigurationError(
                f"cannot merge spec for {override.model!r} into defaults of {self.model!r}"
            )
        changes: dict[str, Any] = {"params": {**self.params, **override.params}}
        for name in ("scale", "seed"):
            if getattr(override, name) is not None:
                changes[name] = getattr(override, name)
        return replace(self, **changes)

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The spec as a plain JSON-serializable dictionary."""
        return {
            "model": self.model,
            "scale": self.scale,
            "seed": self.seed,
            "params": _jsonable(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelSpec":
        """Build a spec from a mapping, rejecting unknown keys by name."""
        known = {spec.name for spec in fields(cls)}
        for key in data:
            if key not in known:
                raise ConfigurationError(
                    f"ModelSpec has no field {key!r}; "
                    f"valid fields: {', '.join(sorted(known))}"
                )
        return cls(**dict(data))

    def to_json(self, indent: int | None = 2) -> str:
        """The spec serialized as JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ModelSpec":
        """Parse a spec from JSON text produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"model spec is not valid JSON: {error}") from error
        if not isinstance(data, dict):
            raise ConfigurationError("model spec JSON must be an object")
        return cls.from_dict(data)
