"""String-keyed registry of whole-network models.

The model registry completes the library's three-seam pattern: engines
(:class:`~repro.engine.registry.EngineRegistry`), experiments
(:class:`~repro.experiments.registry.ExperimentRegistry`) and now models.
Every supported network registers a builder under a short name together with
its default :class:`~repro.models.spec.ModelSpec`; consumers build models by
name:

    from repro.models import build_model
    model = build_model("neuraltalk_lstm", scale=16)

Importing :mod:`repro.models` pre-populates the registry with the paper's
networks (``alexnet_fc``, ``vgg_fc``, ``neuraltalk_lstm``) at Table III
densities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.models.ir import ModelIR
from repro.models.spec import ModelSpec

__all__ = ["RegisteredModel", "ModelRegistry", "register_model", "build_model"]


@dataclass(frozen=True)
class RegisteredModel:
    """One registered model.

    Attributes:
        name: registry key (also the default model label).
        description: one-line summary shown by ``repro model list``.
        spec: the default spec (scale, seed, builder params).
        build: ``spec -> ModelIR`` — constructs the network for a fully
            merged spec.
    """

    name: str
    description: str
    spec: ModelSpec
    build: Callable[[ModelSpec], ModelIR]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("model name must be non-empty")
        if self.spec.model != self.name:
            raise ConfigurationError(
                f"model {self.name!r} has a default spec for {self.spec.model!r}"
            )


class ModelRegistry:
    """Maps model names to :class:`RegisteredModel` definitions.

    The class itself is the default global registry, mirroring
    :class:`~repro.engine.registry.EngineRegistry` and
    :class:`~repro.experiments.registry.ExperimentRegistry`.
    """

    _models: dict[str, RegisteredModel] = {}

    @classmethod
    def register(cls, model: RegisteredModel) -> RegisteredModel:
        """Register ``model`` under its name."""
        existing = cls._models.get(model.name)
        if existing is not None and existing is not model:
            raise ConfigurationError(f"model name {model.name!r} is already registered")
        cls._models[model.name] = model
        return model

    @classmethod
    def unregister(cls, name: str) -> None:
        """Remove a model (mainly for tests of custom models)."""
        cls._models.pop(name, None)

    @classmethod
    def get(cls, name: str) -> RegisteredModel:
        """The model registered under ``name``."""
        try:
            return cls._models[name]
        except KeyError:
            known = ", ".join(sorted(cls._models)) or "<none>"
            raise ConfigurationError(
                f"unknown model {name!r}; registered models: {known}"
            ) from None

    @classmethod
    def names(cls) -> tuple[str, ...]:
        """All registered model names, sorted."""
        return tuple(sorted(cls._models))

    @classmethod
    def build(cls, spec_or_name: "str | ModelSpec") -> ModelIR:
        """Build a model from its name or a (possibly partial) spec.

        A partial spec is merged over the registered defaults exactly like
        experiment specs: unset scalars keep the defaults, ``params`` merge
        key-wise and unknown parameters are rejected by name (the builders
        read known keys only, so a typo would otherwise no-op silently).
        """
        if isinstance(spec_or_name, ModelSpec):
            registered = cls.get(spec_or_name.model)
            spec = registered.spec.merged(spec_or_name)
        else:
            registered = cls.get(spec_or_name)
            spec = registered.spec
        unknown = set(spec.params) - set(registered.spec.params)
        if unknown:
            known = ", ".join(sorted(registered.spec.params)) or "<none>"
            raise ConfigurationError(
                f"model {registered.name!r} has no parameter "
                f"{', '.join(sorted(map(repr, unknown)))}; known parameters: {known}"
            )
        return registered.build(spec)

    @classmethod
    def describe(cls, name: str) -> dict[str, Any]:
        """A JSON-friendly description of one model (CLI ``describe``)."""
        registered = cls.get(name)
        model = cls.build(name)
        return {
            "name": registered.name,
            "description": registered.description,
            "default_spec": registered.spec.to_dict(),
            "default_build": model.describe(),
        }


def register_model(model: RegisteredModel) -> RegisteredModel:
    """Register ``model`` with the global :class:`ModelRegistry`."""
    return ModelRegistry.register(model)


def build_model(name: str, **overrides: Any) -> ModelIR:
    """One-shot convenience: merge ``overrides`` into the defaults and build.

    ``overrides`` accepts the :class:`ModelSpec` fields (``scale``, ``seed``,
    ``params``).
    """
    spec = ModelSpec(model=name, **overrides)
    return ModelRegistry.build(spec)
