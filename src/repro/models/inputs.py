"""Synthetic whole-model input batches.

One shared generator for every surface that needs deterministic model inputs
at the network's expected Act% density (the CLI ``model run`` command, the
``model_speedup`` experiment, tests).  Each row is drawn with
:func:`~repro.workloads.synthetic.generate_activations`, which also
guarantees at least one non-zero per vector so every batch item broadcasts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.models.ir import ModelIR
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.synthetic import generate_activations

__all__ = ["synthetic_model_inputs"]


def synthetic_model_inputs(
    model: ModelIR,
    batch: int = 1,
    seed: int = 1,
    density: float | None = None,
) -> np.ndarray:
    """A deterministic ``(batch, input_size)`` activation batch for ``model``.

    ``density`` defaults to the model's expected input Act%
    (:attr:`ModelIR.input_density`); the seed stream is derived per model
    name, so different models draw independent inputs from the same seed.
    """
    if batch < 1:
        raise WorkloadError(f"batch must be >= 1, got {batch}")
    density = model.input_density if density is None else float(density)
    rng = make_rng(derive_seed(int(seed), "model-input", model.name))
    return np.stack(
        [generate_activations(model.input_size, density, rng) for _ in range(batch)]
    )
