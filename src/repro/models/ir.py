"""The canonical model IR: an ordered graph of matrix-vector nodes.

The paper evaluates EIE on nine *layers* (Table III), but every network it
draws them from — the FC tails of AlexNet/VGG-16, the NeuralTalk LSTM, and
the convolutions of Section VII-C — is ultimately a sequence of M x V
operations, which is exactly the unit the rest of this library understands
(:class:`~repro.compression.pipeline.CompressedLayer`, the engine seam, the
cycle model).  :class:`ModelIR` is the whole-network form of that unit: an
ordered list of :class:`MatVecNode` objects, each carrying a dense weight
matrix, an activation function, and edge wiring (which earlier node — or the
model input — feeds it, optionally through a slice).

Lowering rules (the ``from_*`` constructors):

* ``from_network`` — each :class:`~repro.nn.model.FeedForwardNetwork` layer
  becomes one node chained onto the previous layer's output.
* ``from_lstm`` — one time step of an :class:`~repro.nn.lstm.LSTMCell` over
  the concatenated ``[x_t, h_{t-1}]`` input vector.  ``mode="per_gate"``
  lowers each gate to one node with the ``[W_gate | U_gate]`` block matrix
  (``W g x + U g h`` as a single M x V, four nodes total, matching the
  layer-at-a-time gate runs); ``mode="stacked"`` stacks all gates into the
  single ``(4*hidden, input+hidden)`` matrix of the paper's NT-LSTM
  benchmark row.  Gate non-linearities are *not* part of the nodes (EIE
  computes M x V only; the sigmoids/tanh run in software), so every LSTM
  node uses the identity activation.
* ``from_conv`` — an im2col lowering: the ``(C_out, C_in, kh, kw)`` kernel
  bank becomes one ``(C_out, C_in*kh*kw)`` node and every output position's
  receptive field is one activation vector (use :func:`conv_activation_batch`
  to build the batch).  1x1 kernels degenerate to the per-pixel channel-wise
  M x V the paper describes.
* ``from_npz`` — state-dict import: a ``.npz`` archive with ``<name>.weight``
  (and optional ``<name>.bias`` / ``<name>.activation``) members becomes a
  chain of nodes in archive order.  ``to_npz`` writes the same convention.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.convolution import im2col
from repro.nn.layers import ACTIVATIONS, FullyConnectedLayer
from repro.nn.lstm import LSTM_GATE_NAMES, LSTMCell
from repro.nn.model import FeedForwardNetwork
from repro.utils.validation import require_matrix, require_vector

__all__ = ["INPUT", "MatVecNode", "ModelTrace", "ModelIR", "conv_activation_batch"]

#: Reserved source name designating the model's external input vector.
INPUT = "input"


def _freeze_array(array: np.ndarray) -> None:
    """Make ``array`` — and the base arrays a view exposes — read-only.

    Freezing only a view is ineffective (writes through the still-writeable
    base bypass the view's flag), so the whole base chain is frozen too.
    """
    target: np.ndarray | None = array
    while isinstance(target, np.ndarray):
        try:
            target.setflags(write=False)
        except ValueError:  # pragma: no cover - foreign/read-only-base memory
            break
        target = target.base


@dataclass
class MatVecNode:
    """One matrix-vector operation of a lowered model.

    Attributes:
        name: unique node label (used in reports and as wiring target).
        weight: dense weight matrix of shape ``(rows, cols)``.
        activation: non-linearity applied after the M x V (a key of
            :data:`~repro.nn.layers.ACTIVATIONS`).
        bias: optional ``(rows,)`` bias added before the non-linearity.  EIE
            itself computes M x V only; biases are applied in software when
            the model is executed, exactly like the LSTM non-linearities.
        source: which vector feeds this node — :data:`INPUT` or the name of
            an earlier node.
        input_slice: optional ``(start, stop)`` half-open slice of the source
            vector; ``None`` consumes the whole vector.
        metadata: free-form lowering details (gate names, conv geometry, ...).
    """

    name: str
    weight: np.ndarray
    activation: str = "relu"
    bias: np.ndarray | None = None
    source: str = INPUT
    input_slice: tuple[int, int] | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or self.name == INPUT:
            raise ConfigurationError(
                f"node name must be non-empty and not {INPUT!r}, got {self.name!r}"
            )
        self.weight = np.asarray(require_matrix(f"{self.name}.weight", self.weight),
                                 dtype=np.float64)
        if self.bias is not None:
            self.bias = np.asarray(require_vector(f"{self.name}.bias", self.bias),
                                   dtype=np.float64)
            if self.bias.shape[0] != self.weight.shape[0]:
                raise ConfigurationError(
                    f"node {self.name!r}: bias length {self.bias.shape[0]} does not "
                    f"match output size {self.weight.shape[0]}"
                )
        if self.activation not in ACTIVATIONS:
            raise ConfigurationError(
                f"node {self.name!r}: unknown activation {self.activation!r}; "
                f"expected one of {sorted(ACTIVATIONS)}"
            )
        if self.input_slice is not None:
            start, stop = (int(self.input_slice[0]), int(self.input_slice[1]))
            if start < 0 or stop <= start:
                raise ConfigurationError(
                    f"node {self.name!r}: input_slice must satisfy 0 <= start < stop, "
                    f"got ({start}, {stop})"
                )
            if stop - start != self.cols:
                raise ConfigurationError(
                    f"node {self.name!r}: input_slice spans {stop - start} elements "
                    f"but the weight matrix has {self.cols} columns"
                )
            self.input_slice = (start, stop)

    @property
    def rows(self) -> int:
        """Output size of the node (weight-matrix rows)."""
        return self.weight.shape[0]

    @property
    def cols(self) -> int:
        """Input size of the node (weight-matrix columns)."""
        return self.weight.shape[1]

    @property
    def num_weights(self) -> int:
        """Dense weight count of the node."""
        return self.weight.size

    @property
    def weight_density(self) -> float:
        """Fraction of non-zero weights."""
        return float(np.count_nonzero(self.weight)) / max(self.weight.size, 1)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """``f(W a + bias)`` for one vector or a ``(batch, cols)`` matrix."""
        inputs = np.asarray(inputs, dtype=np.float64)
        pre = inputs @ self.weight.T if inputs.ndim == 2 else self.weight @ inputs
        if self.bias is not None:
            pre = pre + self.bias
        return ACTIVATIONS[self.activation](pre)


@dataclass
class ModelTrace:
    """Record of one (possibly batched) forward pass through a model.

    Attributes:
        inputs: the external input — ``(input_size,)`` or ``(batch, input_size)``.
        node_outputs: output of every node, keyed by node name, in node order.
    """

    inputs: np.ndarray
    node_outputs: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def output(self) -> np.ndarray:
        """The last node's output (the conventional network output)."""
        if not self.node_outputs:
            return self.inputs
        return next(reversed(list(self.node_outputs.values())))

    def node_output(self, name: str) -> np.ndarray:
        """Output of the named node."""
        return self.node_outputs[name]


class ModelIR:
    """A whole network lowered to an ordered graph of M x V nodes.

    Nodes execute in list order; each node reads the model input or an
    earlier node's output (optionally sliced), so the IR is a DAG with a
    deterministic schedule.  The IR carries the *dense float* weights — it is
    the form that flows into :meth:`~repro.engine.session.Session.compress_model`
    (per-node Deep Compression) and
    :meth:`~repro.engine.session.Session.run_model` (whole-model execution on
    any registered engine).

    Args:
        nodes: the M x V nodes in execution order.
        name: model label used in reports and cache keys.
        input_density: expected density of the external input vector (the
            Act% of the first layer — used by callers that synthesize inputs).
        metadata: free-form provenance (source builder, scale, ...).
    """

    def __init__(
        self,
        nodes: "Iterable[MatVecNode]",
        name: str = "model",
        input_density: float = 1.0,
        metadata: dict | None = None,
    ) -> None:
        self.nodes = list(nodes)
        if not self.nodes:
            raise ConfigurationError("a model needs at least one node")
        if not 0.0 < input_density <= 1.0:
            raise ConfigurationError(
                f"input_density must be in (0, 1], got {input_density}"
            )
        self.name = name
        self.input_density = float(input_density)
        self.metadata = dict(metadata or {})
        self._by_name: dict[str, MatVecNode] = {}
        sizes: dict[str, int] = {}
        # Full-input nodes fix the model input size; sliced input nodes only
        # demand a minimum.  Collected first, reconciled after the loop, so
        # validation does not depend on node order.
        full_input_cols: int | None = None
        sliced_input_need = 0
        for node in self.nodes:
            if node.name in self._by_name:
                raise ConfigurationError(f"duplicate node name {node.name!r}")
            if node.source == INPUT:
                span = node.input_slice
                if span is None:
                    if full_input_cols is not None and full_input_cols != node.cols:
                        raise ConfigurationError(
                            f"node {node.name!r} consumes the full model input of size "
                            f"{node.cols}, but another node fixed it to {full_input_cols}"
                        )
                    full_input_cols = node.cols
                else:
                    sliced_input_need = max(sliced_input_need, span[1])
            else:
                if node.source not in self._by_name:
                    raise ConfigurationError(
                        f"node {node.name!r} sources {node.source!r}, which is not "
                        f"{INPUT!r} or an earlier node"
                    )
                source_size = sizes[node.source]
                span = node.input_slice
                if span is None:
                    if node.cols != source_size:
                        raise ConfigurationError(
                            f"node {node.name!r} has {node.cols} columns but its source "
                            f"{node.source!r} produces {source_size} outputs"
                        )
                elif span[1] > source_size:
                    raise ConfigurationError(
                        f"node {node.name!r} slices [{span[0]}, {span[1]}) of source "
                        f"{node.source!r}, which only produces {source_size} outputs"
                    )
            self._by_name[node.name] = node
            sizes[node.name] = node.rows
        if full_input_cols is not None:
            if sliced_input_need > full_input_cols:
                raise ConfigurationError(
                    f"an input slice reaches element {sliced_input_need}, past the "
                    f"model input size {full_input_cols} fixed by a full-input node"
                )
            input_size = full_input_cols
        elif sliced_input_need:
            input_size = sliced_input_need
        else:
            raise ConfigurationError("no node consumes the model input")
        self._input_size = int(input_size)
        consumed = {node.source for node in self.nodes}
        self.output_names: tuple[str, ...] = tuple(
            node.name for node in self.nodes if node.name not in consumed
        )

    # -- structure ---------------------------------------------------------------

    @property
    def input_size(self) -> int:
        """Length of the external input vector the model expects."""
        return self._input_size

    @property
    def output_size(self) -> int:
        """Output length of the last node (the conventional network output)."""
        return self.nodes[-1].rows

    @property
    def num_nodes(self) -> int:
        """Number of M x V nodes."""
        return len(self.nodes)

    @property
    def num_parameters(self) -> int:
        """Total dense weights (plus biases) across all nodes."""
        total = 0
        for node in self.nodes:
            total += node.num_weights
            if node.bias is not None:
                total += node.bias.shape[0]
        return total

    @property
    def total_macs(self) -> int:
        """Multiply-accumulates of one dense forward pass."""
        return sum(node.num_weights for node in self.nodes)

    def node(self, name: str) -> MatVecNode:
        """Look up a node by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(
                f"model {self.name!r} has no node {name!r}; "
                f"nodes: {[n.name for n in self.nodes]}"
            ) from None

    def __iter__(self) -> Iterator[MatVecNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly structural summary (no weights)."""
        return {
            "name": self.name,
            "input_size": self.input_size,
            "output_size": self.output_size,
            "num_nodes": self.num_nodes,
            "num_parameters": self.num_parameters,
            "input_density": self.input_density,
            "outputs": list(self.output_names),
            "nodes": [
                {
                    "name": node.name,
                    "shape": [node.rows, node.cols],
                    "activation": node.activation,
                    "bias": node.bias is not None,
                    "source": node.source,
                    "input_slice": list(node.input_slice) if node.input_slice else None,
                    "weight_density": node.weight_density,
                }
                for node in self.nodes
            ],
            "metadata": dict(self.metadata),
        }

    def fingerprint(self) -> str:
        """Content hash over every node's weights, wiring and activations.

        Mirrors :func:`~repro.compression.pipeline.weights_fingerprint` at the
        model level; :class:`~repro.engine.session.Session` keys its
        compressed-model cache on it.  Computed once and memoized — node
        weights are treated as immutable after construction (the same
        contract ``CompressedLayer.dense_weights`` caching relies on), and
        hashing every weight byte per lookup would dominate cached
        ``run_model`` loops.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        # Freeze what we hash: a later in-place weight edit would otherwise
        # serve stale cached fingerprints (and stale compressed models).
        for node in self.nodes:
            _freeze_array(node.weight)
            if node.bias is not None:
                _freeze_array(node.bias)
        for node in self.nodes:
            digest.update(
                f"{node.name}|{node.activation}|{node.source}|{node.input_slice}|"
                f"{node.weight.shape}".encode()
            )
            digest.update(np.ascontiguousarray(node.weight).tobytes())
            if node.bias is not None:
                digest.update(np.ascontiguousarray(node.bias).tobytes())
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # -- execution (dense float reference) ----------------------------------------

    def node_input(
        self,
        node: MatVecNode,
        inputs: np.ndarray,
        node_outputs: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """The vector(s) feeding ``node`` given the model input and prior outputs.

        ``inputs`` and the entries of ``node_outputs`` may be single vectors
        or ``(batch, size)`` matrices; the slice (if any) is applied to the
        last axis.  This is the single wiring rule shared by the dense
        reference (:meth:`trace`) and the engine-backed execution
        (``Session.run_model``), so both see identical broadcast sets.
        """
        source = inputs if node.source == INPUT else node_outputs[node.source]
        if node.input_slice is None:
            return source
        start, stop = node.input_slice
        return source[..., start:stop]

    def trace(self, inputs: np.ndarray) -> ModelTrace:
        """Dense float forward pass recording every node's output."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim not in (1, 2) or inputs.shape[-1] != self.input_size:
            raise ConfigurationError(
                f"model input must be ({self.input_size},) or (batch, "
                f"{self.input_size}), got shape {inputs.shape}"
            )
        trace = ModelTrace(inputs=inputs)
        for node in self.nodes:
            trace.node_outputs[node.name] = node.forward(
                self.node_input(node, inputs, trace.node_outputs)
            )
        return trace

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Dense float forward pass returning the last node's output."""
        return self.trace(inputs).output

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # -- lowering constructors ------------------------------------------------------

    @classmethod
    def from_network(cls, network: FeedForwardNetwork, name: str | None = None,
                     input_density: float = 1.0) -> "ModelIR":
        """Lower a sequential :class:`FeedForwardNetwork` to a node chain."""
        nodes: list[MatVecNode] = []
        previous = INPUT
        seen: dict[str, int] = {}
        for layer in network.layers:
            node_name = layer.name
            count = seen.get(node_name, 0)
            seen[node_name] = count + 1
            if count:
                node_name = f"{node_name}#{count + 1}"
            nodes.append(
                MatVecNode(
                    name=node_name,
                    weight=layer.weight,
                    activation=layer.activation,
                    bias=layer.bias,
                    source=previous,
                )
            )
            previous = node_name
        return cls(
            nodes,
            name=name or network.name,
            input_density=input_density,
            metadata={"lowered_from": "FeedForwardNetwork"},
        )

    @classmethod
    def from_lstm(cls, cell: LSTMCell, mode: str = "per_gate",
                  name: str = "lstm", input_density: float = 1.0) -> "ModelIR":
        """Lower one LSTM time step over the concatenated ``[x, h]`` input.

        ``mode="per_gate"`` emits one node per gate whose matrix is the
        ``[W_gate | U_gate]`` block (``W x + U h`` as a single M x V over the
        concatenated input) — four nodes whose *set* of weights is exactly
        ``cell.matrices()``.  ``mode="stacked"`` emits a single node with
        ``cell.stacked_matrix()``, the NT-LSTM benchmark view.  All nodes use
        the identity activation: EIE computes the gate pre-activations and
        software applies the LSTM non-linearities.
        """
        if mode == "per_gate":
            nodes = [
                MatVecNode(
                    name=f"gate_{gate}",
                    weight=cell.gate_matrix(gate),
                    activation="identity",
                    bias=cell.biases[gate],
                    source=INPUT,
                    metadata={"gate": gate},
                )
                for gate in LSTM_GATE_NAMES
            ]
        elif mode == "stacked":
            bias = np.concatenate([cell.biases[gate] for gate in LSTM_GATE_NAMES])
            nodes = [
                MatVecNode(
                    name="gates_stacked",
                    weight=cell.stacked_matrix(),
                    activation="identity",
                    bias=bias,
                    source=INPUT,
                    metadata={"gates": list(LSTM_GATE_NAMES)},
                )
            ]
        else:
            raise ConfigurationError(
                f"unknown LSTM lowering mode {mode!r}; expected 'per_gate' or 'stacked'"
            )
        return cls(
            nodes,
            name=name,
            input_density=input_density,
            metadata={
                "lowered_from": "LSTMCell",
                "mode": mode,
                "input_size": cell.input_size,
                "hidden_size": cell.hidden_size,
            },
        )

    @classmethod
    def from_conv(cls, kernels: np.ndarray, height: int, width: int,
                  stride: int = 1, padding: int = 0, activation: str = "relu",
                  name: str = "conv", input_density: float = 1.0) -> "ModelIR":
        """Lower a convolution to one im2col M x V node.

        ``kernels`` is the ``(C_out, C_in, kh, kw)`` bank; ``height``/``width``
        describe the input feature map the layer will see.  The node's matrix
        is ``(C_out, C_in*kh*kw)`` and one forward pass of the model consumes
        one im2col column (one output position); ``out_h * out_w`` positions
        make one feature map — build them with :func:`conv_activation_batch`.
        For 1x1 kernels this is exactly the per-pixel channel-wise M x V of
        Section VII-C.
        """
        kernels = np.asarray(kernels, dtype=np.float64)
        if kernels.ndim != 4:
            raise ConfigurationError(
                f"kernels must be (out_channels, in_channels, kh, kw), got {kernels.shape}"
            )
        if stride < 1 or padding < 0:
            raise ConfigurationError("stride must be >= 1 and padding >= 0")
        out_channels, in_channels, kernel_h, kernel_w = kernels.shape
        out_h = (height + 2 * padding - kernel_h) // stride + 1
        out_w = (width + 2 * padding - kernel_w) // stride + 1
        if out_h < 1 or out_w < 1:
            raise ConfigurationError("kernel does not fit in the (padded) feature map")
        node = MatVecNode(
            name=name,
            weight=kernels.reshape(out_channels, in_channels * kernel_h * kernel_w),
            activation=activation,
            metadata={
                "kernel_shape": list(kernels.shape),
                "input_hw": [int(height), int(width)],
                "stride": int(stride),
                "padding": int(padding),
                "num_matvecs": int(out_h * out_w),
            },
        )
        return cls(
            [node],
            name=name,
            input_density=input_density,
            metadata={"lowered_from": "conv2d", "num_matvecs": int(out_h * out_w)},
        )

    # -- state-dict import/export ---------------------------------------------------

    @classmethod
    def from_npz(cls, path: "str | Path", name: str | None = None,
                 input_density: float = 1.0) -> "ModelIR":
        """Import a chain model from a ``.npz`` state dict.

        Convention: every member ``<node>.weight`` defines one node, in
        archive order, chained onto the previous node's output; optional
        ``<node>.bias`` and ``<node>.activation`` (a 0-d string array)
        members attach to it.  ``to_npz`` writes the same layout, so
        ``ModelIR.from_npz(path)`` round-trips anything ``to_npz`` saved.
        """
        path = Path(path)
        with np.load(path, allow_pickle=False) as archive:
            members = list(archive.files)
            weight_keys = [key for key in members if key.endswith(".weight")]
            if not weight_keys:
                raise ConfigurationError(
                    f"{path}: no '<node>.weight' members found; "
                    f"archive members: {members}"
                )
            nodes: list[MatVecNode] = []
            previous = INPUT
            for key in weight_keys:
                node_name = key[: -len(".weight")]
                bias_key = f"{node_name}.bias"
                bias = archive[bias_key] if bias_key in members else None
                activation_key = f"{node_name}.activation"
                activation = (
                    str(archive[activation_key][()]) if activation_key in members else "relu"
                )
                nodes.append(
                    MatVecNode(
                        name=node_name,
                        weight=archive[key],
                        activation=activation,
                        bias=bias,
                        source=previous,
                    )
                )
                previous = node_name
        return cls(
            nodes,
            name=name or path.stem,
            input_density=input_density,
            metadata={"lowered_from": "npz", "path": str(path)},
        )

    def to_npz(self, path: "str | Path") -> Path:
        """Export the model as a ``.npz`` state dict (see :meth:`from_npz`).

        Only chain models (every node sourcing the previous one, no slices)
        can be exported — the npz convention has no wiring syntax.
        """
        previous = INPUT
        for node in self.nodes:
            if node.source != previous or node.input_slice is not None:
                raise ConfigurationError(
                    f"to_npz supports chain models only; node {node.name!r} "
                    f"sources {node.source!r} (slice {node.input_slice})"
                )
            previous = node.name
        arrays: dict[str, np.ndarray] = {}
        for node in self.nodes:
            arrays[f"{node.name}.weight"] = node.weight
            if node.bias is not None:
                arrays[f"{node.name}.bias"] = node.bias
            arrays[f"{node.name}.activation"] = np.array(node.activation)
        path = Path(path)
        # np.savez appends the suffix itself; return the path it wrote.
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        np.savez(path, **arrays)
        return path


def conv_activation_batch(feature_map: np.ndarray, model: ModelIR) -> np.ndarray:
    """The im2col activation batch a ``from_conv`` model consumes.

    Returns a ``(out_h * out_w, C_in*kh*kw)`` matrix — one activation vector
    per output position, ready for ``Session.run_model``.  To recover the
    feature-map view from the resulting ``(positions, C_out)`` outputs,
    transpose first: ``outputs.T.reshape(C_out, out_h, out_w)`` (positions
    run row-major over the output grid).
    """
    node = model.nodes[0]
    geometry = node.metadata
    if "kernel_shape" not in geometry:
        raise ConfigurationError(
            f"model {model.name!r} was not lowered with ModelIR.from_conv"
        )
    _, _, kernel_h, kernel_w = geometry["kernel_shape"]
    columns = im2col(
        feature_map,
        int(kernel_h),
        int(kernel_w),
        stride=int(geometry["stride"]),
        padding=int(geometry["padding"]),
    )
    return columns.T
