"""The built-in model catalog: the paper's networks at Table III densities.

Three models are registered when :mod:`repro.models` is imported:

=================  ==========================================================
Key                Network
=================  ==========================================================
alexnet_fc         AlexNet FC6 -> FC7 -> FC8 tail (9% / 9% / 25% weights)
vgg_fc             VGG-16 FC6 -> FC7 -> FC8 tail (4% / 4% / 23% weights)
neuraltalk_lstm    NeuralTalk LSTM step, per-gate or stacked lowering (10%)
=================  ==========================================================

Every builder honours the spec's ``scale`` (each dimension divided by it, so
``scale=1`` is the paper's full size) and ``seed``; the LSTM additionally
takes ``params={"mode": "per_gate" | "stacked"}``.  The default scales keep
CLI runs interactive; the synthetic weights follow the Table III densities
so compression ratios, padding behaviour and load balance stay
representative.
"""

from __future__ import annotations

from repro.models.ir import ModelIR
from repro.models.registry import ModelRegistry, RegisteredModel, register_model
from repro.models.spec import ModelSpec
from repro.workloads.benchmarks import ALL_BENCHMARKS
from repro.workloads.models import (
    build_alexnet_fc_network,
    build_neuraltalk_lstm,
    build_vgg_fc_network,
)

__all__ = ["BUILTIN_MODELS"]


def _build_alexnet(spec: ModelSpec) -> ModelIR:
    network = build_alexnet_fc_network(scale=float(spec.scale), seed=spec.seed)
    model = ModelIR.from_network(
        network,
        name="alexnet_fc",
        input_density=ALL_BENCHMARKS["Alex-6"].activation_density,
    )
    model.metadata.update({"spec": spec.to_dict()})
    return model


def _build_vgg(spec: ModelSpec) -> ModelIR:
    network = build_vgg_fc_network(scale=float(spec.scale), seed=spec.seed)
    model = ModelIR.from_network(
        network,
        name="vgg_fc",
        input_density=ALL_BENCHMARKS["VGG-6"].activation_density,
    )
    model.metadata.update({"spec": spec.to_dict()})
    return model


def _build_neuraltalk(spec: ModelSpec) -> ModelIR:
    cell = build_neuraltalk_lstm(scale=float(spec.scale), seed=int(spec.seed))
    model = ModelIR.from_lstm(
        cell,
        mode=str(spec.params.get("mode", "per_gate")),
        name="neuraltalk_lstm",
        input_density=ALL_BENCHMARKS["NT-LSTM"].activation_density,
    )
    model.metadata.update({"spec": spec.to_dict()})
    return model


BUILTIN_MODELS: tuple[RegisteredModel, ...] = (
    RegisteredModel(
        name="alexnet_fc",
        description="AlexNet FC6-FC8 tail at Table III densities (9%/9%/25% weights)",
        # seed=None keeps the benchmarks' canonical patterns; an explicit
        # --seed re-derives every layer's synthetic weights from it.
        spec=ModelSpec(model="alexnet_fc", scale=32.0),
        build=_build_alexnet,
    ),
    RegisteredModel(
        name="vgg_fc",
        description="VGG-16 FC6-FC8 tail at Table III densities (4%/4%/23% weights)",
        spec=ModelSpec(model="vgg_fc", scale=32.0),
        build=_build_vgg,
    ),
    RegisteredModel(
        name="neuraltalk_lstm",
        description="NeuralTalk LSTM step (10% gate weights; per-gate or stacked lowering)",
        spec=ModelSpec(
            model="neuraltalk_lstm", scale=8.0, seed=7, params={"mode": "per_gate"}
        ),
        build=_build_neuraltalk,
    ),
)

for _model in BUILTIN_MODELS:
    register_model(_model)
