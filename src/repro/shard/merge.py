"""Reassembly of shard artifacts into one :class:`ExperimentResult`.

:func:`merge_shards` loads every shard artifact of a plan from the shared
store, validates that the partials tile the expanded grid exactly (every
point covered once, no overlaps, coordinates and point ranges echoing the
plan), and hands the reassembled per-point records to the same
:func:`~repro.experiments.runner.assemble_result` path a serial run ends in
— including the experiment's cross-point finalization over the *full*
record list.  The output is therefore byte-identical to a single serial run
of the same spec (CI enforces this with ``cmp``, exactly like the process
backend).

Missing or corrupt partials (the store detects CRC/key mismatches on load
and reports them as misses) are recomputed **individually** by default —
never the whole sweep; ``recompute=False`` turns them into a typed
:class:`~repro.errors.ShardMergeError` instead, for drivers that want to
fail fast while other workers are still filling the store.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ShardMergeError
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentRunner, assemble_result
from repro.shard.plan import SHARD_FORMAT, ShardPlan
from repro.shard.run import run_shard
from repro.store.artifacts import ArtifactStore

__all__ = ["merge_shards"]


def _validate_payload(plan: ShardPlan, shard_id: int, payload: dict[str, Any]) -> bool:
    """Whether a loaded shard payload matches the plan's expectations.

    The store already rejected CRC/key corruption; this guards the logical
    contract — same format, same coordinates, the exact point range the
    plan assigns, and one record list per point.
    """
    chunk = plan.ranges[shard_id]
    return (
        payload.get("shard_format") == SHARD_FORMAT
        and payload.get("experiment") == plan.experiment.name
        and payload.get("shard_id") == shard_id
        and payload.get("shard_count") == plan.shard_count
        and payload.get("start") == chunk.start
        and payload.get("stop") == chunk.stop
        and isinstance(payload.get("records"), list)
        and len(payload["records"]) == len(chunk)
    )


def merge_shards(
    plan: ShardPlan,
    store: ArtifactStore,
    runner: ExperimentRunner | None = None,
    recompute: bool = True,
) -> ExperimentResult:
    """Merge a plan's shard artifacts into the full experiment result.

    Args:
        plan: the partition every worker executed against.
        store: the shared artifact store holding the partials.
        runner: session used for recomputed shards and finalization context
            (one attached to ``store`` is created if not given).
        recompute: recompute missing/corrupt shards in-process (default);
            when ``False`` they raise :class:`ShardMergeError` instead.

    Raises:
        ShardMergeError: shards missing with ``recompute=False``, or
            payloads whose ranges conflict with the plan's partition.
    """
    runner = runner or ExperimentRunner(store=store)
    keys = plan.keys()
    payloads: dict[int, dict[str, Any]] = {}
    # Pin the whole shard set while merging: a concurrent writer pushing the
    # store over its size budget must not evict a partial between our
    # presence check and its load.
    with store.pinned(f"merge-{keys[0][:16]}", plan.entry_paths(store)):
        missing: list[int] = []
        conflicting: list[int] = []
        for shard_id in range(plan.shard_count):
            payload = store.load_json("shards", keys[shard_id])
            if payload is None:
                missing.append(shard_id)
            elif not _validate_payload(plan, shard_id, payload):
                conflicting.append(shard_id)
            else:
                payloads[shard_id] = payload
        if conflicting:
            raise ShardMergeError(
                f"shard artifacts {conflicting} do not tile this plan "
                f"(stale format or conflicting point ranges); "
                f"re-run those shards with force=True",
                overlapping=tuple(conflicting),
            )
        if missing and not recompute:
            raise ShardMergeError(
                f"{len(missing)} of {plan.shard_count} shards absent from the "
                f"store: ids {missing}; run them first or merge with "
                f"recompute enabled",
                missing=tuple(missing),
            )
        for shard_id in missing:
            run_shard(plan, shard_id, store, runner=runner, force=True)
            payload = store.load_json("shards", keys[shard_id])
            if payload is None or not _validate_payload(plan, shard_id, payload):
                raise ShardMergeError(
                    f"shard {shard_id} could not be recomputed into the store",
                    missing=(shard_id,),
                )
            payloads[shard_id] = payload

    per_point: list[list[dict[str, Any]]] = []
    for shard_id in range(plan.shard_count):
        per_point.extend(payloads[shard_id]["records"])
    context = runner.context_for(plan.experiment, plan.spec, plan.layer_specs)
    return assemble_result(
        context,
        plan.points,
        per_point,
        plan.layer_specs,
        jobs=1,
        executor="serial",
    )
