"""Deterministic partitioning of an experiment grid into shards.

A :class:`ShardPlan` is a pure function of the merged spec and the shard
count: it re-resolves the experiment exactly like
:meth:`~repro.experiments.runner.ExperimentRunner.resolve` (same workload
resolution, same grid expansion, same point order) and splits the point list
into ``shard_count`` contiguous chunks in spec order — the same chunking
discipline the process executor uses, so each shard touches as few distinct
layers as possible.  Unlike the process executor's partitioner, the shard
count is **not** clamped to the point count: a plan is addressed by
``(shard_id, shard_count)`` from independent invocations that must all agree
on the partition, so ``shard_count > len(points)`` simply yields empty
trailing shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ShardCoordinateError
from repro.experiments.registry import Experiment
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import ExperimentSpec
from repro.store.artifacts import ArtifactStore
from repro.workloads.benchmarks import LayerSpec

__all__ = ["ShardPlan", "plan_shards", "shard_ranges", "validate_coords"]

#: Shard artifact payload format; bumped on any incompatible change.
SHARD_FORMAT = 1


def validate_coords(shard_id: int, shard_count: int) -> None:
    """Reject invalid ``(shard_id, shard_count)`` coordinates.

    Raises:
        ShardCoordinateError: when ``shard_count < 1`` or ``shard_id`` is
            outside ``[0, shard_count)``.
    """
    if shard_count < 1:
        raise ShardCoordinateError(
            f"shard count must be >= 1, got {shard_count}",
            shard_count=shard_count,
        )
    if not 0 <= shard_id < shard_count:
        raise ShardCoordinateError(
            f"shard id must satisfy 0 <= id < {shard_count}, got {shard_id}",
            shard_id=shard_id,
            shard_count=shard_count,
        )


def shard_ranges(count: int, shard_count: int) -> list[range]:
    """Split ``range(count)`` into exactly ``shard_count`` contiguous ranges.

    Sizes differ by at most one, larger chunks first; when ``shard_count``
    exceeds ``count`` the trailing ranges are empty.  Every invocation that
    agrees on ``(count, shard_count)`` gets the identical partition.
    """
    if shard_count < 1:
        raise ShardCoordinateError(
            f"shard count must be >= 1, got {shard_count}", shard_count=shard_count
        )
    base, extra = divmod(count, shard_count)
    bounds = [0]
    for part in range(shard_count):
        bounds.append(bounds[-1] + base + (1 if part < extra else 0))
    return [range(bounds[i], bounds[i + 1]) for i in range(shard_count)]


@dataclass
class ShardPlan:
    """The deterministic partition of one experiment sweep into shards.

    Attributes:
        experiment: the resolved registry experiment.
        spec: the fully merged spec every shard executes against.
        layer_specs: resolved benchmark specs, in workload order.
        points: the expanded grid in execution order (all shards agree).
        shard_count: how many contiguous chunks the points are split into.
    """

    experiment: Experiment
    spec: ExperimentSpec
    layer_specs: "dict[str, LayerSpec]"
    points: list[dict[str, Any]]
    shard_count: int
    _ranges: list[range] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._ranges = shard_ranges(len(self.points), self.shard_count)

    @property
    def ranges(self) -> list[range]:
        """Contiguous point ranges, one per shard id."""
        return list(self._ranges)

    def points_for(self, shard_id: int) -> list[dict[str, Any]]:
        """The grid points shard ``shard_id`` is responsible for."""
        validate_coords(shard_id, self.shard_count)
        return [self.points[index] for index in self._ranges[shard_id]]

    def shard_key(self, shard_id: int) -> str:
        """The content address of one shard's partial-result artifact.

        The key covers everything that shapes the shard's records: the
        experiment, the fully merged spec, the resolved workload selection,
        the shard coordinates and the shard payload format.  Two invocations
        of the same spec at the same coordinates collide on purpose — that
        collision *is* the cross-invocation reuse.
        """
        validate_coords(shard_id, self.shard_count)
        return ArtifactStore.content_key(
            {
                "artifact": "experiment-shard",
                "shard_format": SHARD_FORMAT,
                "experiment": self.experiment.name,
                "spec": self.spec.to_dict(),
                "workloads": list(self.layer_specs),
                "shard_id": int(shard_id),
                "shard_count": int(self.shard_count),
            }
        )

    def keys(self) -> list[str]:
        """Every shard key of the plan, in shard-id order."""
        return [self.shard_key(shard_id) for shard_id in range(self.shard_count)]

    def entry_paths(self, store: ArtifactStore) -> list[Any]:
        """Store entry paths for every shard of the plan (for pinning)."""
        return [store._entry_path("shards", key) for key in self.keys()]

    def describe(self, store: ArtifactStore | None = None) -> list[dict[str, Any]]:
        """One row per shard: coordinates, point range, key, store presence."""
        rows = []
        for shard_id, chunk in enumerate(self._ranges):
            key = self.shard_key(shard_id)
            row: dict[str, Any] = {
                "shard_id": shard_id,
                "start": chunk.start,
                "stop": chunk.stop,
                "points": len(chunk),
                "key": key,
            }
            if store is not None:
                row["present"] = store._entry_path("shards", key).exists()
            rows.append(row)
        return rows


def plan_shards(
    spec_or_name: "str | ExperimentSpec",
    shard_count: int,
    runner: ExperimentRunner | None = None,
    workloads: "Sequence[str | LayerSpec] | None" = None,
    **overrides: Any,
) -> ShardPlan:
    """Build the :class:`ShardPlan` for a spec at a given shard count.

    Uses :meth:`ExperimentRunner.resolve`, so the plan's spec, workloads and
    point order are exactly what a serial :meth:`~ExperimentRunner.run` of
    the same arguments would execute.
    """
    if shard_count < 1:
        raise ShardCoordinateError(
            f"shard count must be >= 1, got {shard_count}", shard_count=shard_count
        )
    runner = runner or ExperimentRunner()
    experiment, spec, layer_specs, points = runner.resolve(
        spec_or_name, workloads=workloads, **overrides
    )
    return ShardPlan(
        experiment=experiment,
        spec=spec,
        layer_specs=layer_specs,
        points=points,
        shard_count=int(shard_count),
    )
