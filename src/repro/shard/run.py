"""Execution of one shard of a planned sweep.

:func:`run_shard` is the worker half of the scale-out flow: it executes one
contiguous chunk of a :class:`~repro.shard.plan.ShardPlan` through a normal
:class:`~repro.experiments.runner.ExperimentRunner` session and publishes
the per-point records as a self-describing ``shards`` artifact in the
shared :class:`~repro.store.ArtifactStore`.  Records are stored
**pre-finalization** — cross-point derivations (speedups, geomeans, Pareto
marking) see the whole sweep only at merge time, which is what keeps the
merged result byte-identical to a serial run.

A shard that is already present in the store is a no-op (the artifact's
content address covers spec + coordinates, so a hit *is* the answer); the
store's shard hit counter is the proof that a re-run recomputed nothing.
While executing, the worker pins the plan's shard artifacts so a
size-budgeted store cannot evict sibling partials mid-sweep.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import _jsonable
from repro.shard.plan import SHARD_FORMAT, ShardPlan, validate_coords
from repro.store.artifacts import ArtifactStore

__all__ = ["run_shard", "shard_payload"]


def shard_payload(
    plan: ShardPlan, shard_id: int, per_point: list[list[dict[str, Any]]]
) -> dict[str, Any]:
    """The self-describing artifact payload for one executed shard."""
    chunk = plan.ranges[shard_id]
    return {
        "shard_format": SHARD_FORMAT,
        "experiment": plan.experiment.name,
        "spec": plan.spec.to_dict(),
        "workloads": list(plan.layer_specs),
        "shard_id": int(shard_id),
        "shard_count": int(plan.shard_count),
        "start": chunk.start,
        "stop": chunk.stop,
        "records": _jsonable(per_point),
    }


def run_shard(
    plan: ShardPlan,
    shard_id: int,
    store: ArtifactStore,
    runner: ExperimentRunner | None = None,
    force: bool = False,
) -> dict[str, Any]:
    """Execute one shard of ``plan`` and publish its partial records.

    Returns a summary: the shard ``key``, its point count, and whether the
    records were served from the store (``cached``) or computed now.  With
    ``force`` the shard recomputes and republishes even on a store hit.

    Raises:
        ShardCoordinateError: for coordinates outside the plan.
    """
    validate_coords(shard_id, plan.shard_count)
    key = plan.shard_key(shard_id)
    chunk = plan.ranges[shard_id]
    if not force:
        cached = store.load_json("shards", key)
        if cached is not None:
            return {
                "key": key,
                "shard_id": shard_id,
                "shard_count": plan.shard_count,
                "points": len(chunk),
                "cached": True,
            }
    runner = runner or ExperimentRunner(store=store)
    context = runner.context_for(plan.experiment, plan.spec, plan.layer_specs)
    per_point: list[list[dict[str, Any]]] = []
    # Pin every shard of the plan (not just this one) for the duration: a
    # size-budgeted store under concurrent-writer pressure must not evict a
    # sibling's already-published partial while the sweep is in flight.
    with store.pinned(f"shard-{key[:16]}", plan.entry_paths(store)):
        for point in plan.points_for(shard_id):
            outcome = plan.experiment.run_point(context, point)
            if isinstance(outcome, dict):
                outcome = [outcome]
            per_point.append([{**point, **record} for record in outcome])
        store.store_json("shards", key, shard_payload(plan, shard_id, per_point))
    return {
        "key": key,
        "shard_id": shard_id,
        "shard_count": plan.shard_count,
        "points": len(chunk),
        "cached": False,
    }
