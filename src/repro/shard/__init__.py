"""Scale-out execution: deterministic sharded sweeps over a shared store.

``--executor processes`` parallelizes one machine; :mod:`repro.shard`
parallelizes *invocations*.  A sweep's expanded point grid is partitioned
into ``shard_count`` contiguous chunks (:class:`ShardPlan`); each worker —
another process, another machine cron job, another CI matrix leg — runs one
chunk (:func:`run_shard`) and publishes its per-point records as an
``experiment-shard`` artifact in the shared
:class:`~repro.store.ArtifactStore`; a final :func:`merge_shards` reassembles
the partials into an :class:`~repro.experiments.result.ExperimentResult`
byte-identical to a single serial run of the same spec.

The determinism contract mirrors the process executor's: partitioning is a
pure function of ``(spec, shard_count)``, shard artifacts are keyed by
sha256 over the spec + resolved workloads + shard coordinates, per-shard
records are stored **pre-finalization**, and the merge runs the experiment's
cross-point finalization over the full reassembled record list through the
same :func:`~repro.experiments.runner.assemble_result` path the runner uses.
"""

from repro.shard.plan import ShardPlan, plan_shards, shard_ranges, validate_coords
from repro.shard.run import run_shard
from repro.shard.merge import merge_shards

__all__ = [
    "ShardPlan",
    "merge_shards",
    "plan_shards",
    "run_shard",
    "shard_ranges",
    "validate_coords",
]
