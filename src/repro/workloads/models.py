"""Model builders for the example applications.

These helpers construct the network structures the paper's benchmarks come
from — the fully-connected tails of AlexNet and VGG-16 and the NeuralTalk
LSTM — with synthetic weights at the Table III densities.  They are sized by
a scale factor so the examples run in seconds on a laptop while preserving
the structure (layer chaining, ReLU sparsity, LSTM gate decomposition).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.errors import WorkloadError
from repro.nn.layers import FullyConnectedLayer
from repro.nn.lstm import LSTM_GATE_NAMES, LSTMCell
from repro.nn.model import FeedForwardNetwork
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.benchmarks import ALL_BENCHMARKS, LayerSpec
from repro.workloads.synthetic import generate_dense_weights

__all__ = [
    "random_dense_layer",
    "build_alexnet_fc_network",
    "build_vgg_fc_network",
    "build_neuraltalk_lstm",
]


def random_dense_layer(
    spec: LayerSpec,
    activation: str = "relu",
    rng: np.random.Generator | int | None = None,
) -> FullyConnectedLayer:
    """A dense FC layer whose weights follow ``spec``'s sparsity pattern."""
    weights = generate_dense_weights(spec, rng=rng)
    return FullyConnectedLayer(weight=weights, activation=activation, name=spec.name)


def _chained_specs(names: list[str], scale: float) -> list[LayerSpec]:
    """Scaled specs for a layer chain, forcing adjacent sizes to match."""
    specs = [ALL_BENCHMARKS[name].scaled(scale) for name in names]
    chained: list[LayerSpec] = []
    for index, spec in enumerate(specs):
        if index == 0:
            chained.append(spec)
            continue
        previous = chained[-1]
        # Force the chain to be connectable after integer rounding.
        chained.append(
            LayerSpec(
                name=spec.name,
                input_size=previous.output_size,
                output_size=spec.output_size,
                weight_density=spec.weight_density,
                activation_density=spec.activation_density,
                description=spec.description,
                seed=spec.seed,
            )
        )
    return chained


def _fc_tail(names: list[str], scale: float, seed: int | None, name: str) -> FeedForwardNetwork:
    """Shared FC6 -> FC7 -> FC8 tail builder for AlexNet and VGG-16.

    ``seed=None`` keeps the benchmarks' canonical deterministic patterns;
    an explicit seed re-derives every layer's pattern from it (for variance
    studies across synthetic weight draws).
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be > 0, got {scale}")
    specs = _chained_specs(names, scale)
    if seed is not None:
        specs = [replace(spec, seed=derive_seed(seed, spec.name)) for spec in specs]
    layers = []
    for index, spec in enumerate(specs):
        activation = "relu" if index < len(specs) - 1 else "identity"
        layers.append(random_dense_layer(spec, activation=activation))
    return FeedForwardNetwork(layers, name=name)


def build_alexnet_fc_network(scale: float = 32.0, seed: int | None = None) -> FeedForwardNetwork:
    """The FC6 -> FC7 -> FC8 tail of compressed AlexNet, scaled by ``scale``."""
    return _fc_tail(["Alex-6", "Alex-7", "Alex-8"], scale, seed, f"alexnet-fc-x{scale:g}")


def build_vgg_fc_network(scale: float = 32.0, seed: int | None = None) -> FeedForwardNetwork:
    """The FC6 -> FC7 -> FC8 tail of compressed VGG-16, scaled by ``scale``."""
    return _fc_tail(["VGG-6", "VGG-7", "VGG-8"], scale, seed, f"vgg-fc-x{scale:g}")


def build_neuraltalk_lstm(scale: float = 8.0, seed: int = 7) -> LSTMCell:
    """A NeuralTalk-style LSTM cell with sparse gate matrices.

    The full NT-LSTM benchmark stacks the gate matrices into a 1201 x 2400
    layer; this builder produces the cell form (hidden size 600 / input size
    600 at scale 1) with each gate matrix pruned to the NT-LSTM density.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be > 0, got {scale}")
    spec = ALL_BENCHMARKS["NT-LSTM"]
    hidden = max(8, int(round(600 / scale)))
    inputs = max(8, int(round(600 / scale)))
    density = spec.weight_density
    input_weights: dict[str, np.ndarray] = {}
    recurrent_weights: dict[str, np.ndarray] = {}
    for gate in LSTM_GATE_NAMES:
        w_rng = make_rng(derive_seed(seed, "W", gate))
        u_rng = make_rng(derive_seed(seed, "U", gate))
        w = w_rng.normal(0.0, 0.1, size=(hidden, inputs))
        u = u_rng.normal(0.0, 0.1, size=(hidden, hidden))
        w[w_rng.random(w.shape) >= density] = 0.0
        u[u_rng.random(u.shape) >= density] = 0.0
        if not np.count_nonzero(w):
            w[0, 0] = 0.1
        if not np.count_nonzero(u):
            u[0, 0] = 0.1
        input_weights[gate] = w
        recurrent_weights[gate] = u
    return LSTMCell(input_weights=input_weights, recurrent_weights=recurrent_weights)
