"""Workload construction for the cycle-level simulator.

A :class:`LayerWorkload` packages everything the timing model needs for one
benchmark layer at full Table III scale: the per-(PE, column) entry counts of
the interleaved CSC encoding (including padding zeros), the broadcast order
of the non-zero input activations, and the bookkeeping totals used by the
energy model and the figures.

:class:`WorkloadBuilder` caches the expensive part — the Bernoulli sparsity
pattern of each benchmark — so that the design-space sweeps (varying FIFO
depth, PE count or SRAM width over the same layer) do not regenerate it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.csc import DEFAULT_MAX_RUN, interleaved_entry_counts
from repro.core.config import EIEConfig
from repro.core.cycle_model import CycleStats
from repro.errors import WorkloadError
from repro.utils.rng import make_rng
from repro.workloads.benchmarks import LayerSpec
from repro.workloads.synthetic import SparsePattern, generate_activations, generate_sparse_pattern

__all__ = ["LayerWorkload", "WorkloadBuilder"]


@dataclass
class LayerWorkload:
    """One benchmark layer prepared for the cycle-level simulator.

    Attributes:
        spec: the benchmark description.
        num_pes: number of PEs the matrix is interleaved over.
        work: shape ``(num_pes, broadcasts)`` — encoded entries each PE must
            process for each broadcast non-zero activation, in broadcast order.
        padding_work: same shape — padding-zero entries among ``work``.
        nonzero_columns: the input-vector indices that are broadcast.
        total_entries: stored entries of the whole matrix (all columns).
        total_padding: padding-zero entries of the whole matrix.
        true_nonzeros: genuine non-zero weights of the whole matrix.
    """

    spec: LayerSpec
    num_pes: int
    work: np.ndarray
    padding_work: np.ndarray
    nonzero_columns: np.ndarray
    total_entries: int
    total_padding: int
    true_nonzeros: int

    @property
    def broadcasts(self) -> int:
        """Number of non-zero activations broadcast."""
        return int(self.nonzero_columns.shape[0])

    @property
    def touched_entries(self) -> int:
        """Entries processed for this input (columns with non-zero activation)."""
        return int(self.work.sum())

    @property
    def real_work_fraction(self) -> float:
        """Useful entries / stored entries for the whole matrix (Figure 12)."""
        if self.total_entries == 0:
            return 1.0
        return 1.0 - self.total_padding / self.total_entries

    @property
    def dense_macs(self) -> int:
        """MACs of the equivalent dense computation."""
        return self.spec.dense_macs

    def per_pe_entries(self) -> np.ndarray:
        """Stored entries per PE for the touched columns."""
        return self.work.sum(axis=1)

    def simulate(self, config: EIEConfig) -> CycleStats:
        """Run the cycle-level timing model for this workload.

        Delegates to the ``"cycle"`` engine of :mod:`repro.engine` (imported
        lazily — the engine adapters accept workloads, so a module-level
        import would be circular).
        """
        from repro.engine import EngineRegistry

        if config.num_pes != self.num_pes:
            raise WorkloadError(
                f"workload was built for {self.num_pes} PEs, configuration has {config.num_pes}"
            )
        engine = EngineRegistry.create("cycle", config)
        return engine.run(engine.prepare(self)).stats


class WorkloadBuilder:
    """Builds (and caches) full-scale benchmark workloads.

    Args:
        max_run: largest zero run representable by the relative index.
    """

    def __init__(self, max_run: int = DEFAULT_MAX_RUN) -> None:
        self.max_run = int(max_run)
        self._pattern_cache: dict[tuple[str, int, int, float], SparsePattern] = {}
        self._activation_cache: dict[tuple[str, int, int, float], np.ndarray] = {}
        self._workload_cache: dict[tuple[str, int, int, float, float, int], LayerWorkload] = {}

    # -- cached primitives ---------------------------------------------------------

    def pattern(self, spec: LayerSpec) -> SparsePattern:
        """The (cached) weight sparsity pattern for ``spec``."""
        key = (spec.name, spec.rows, spec.cols, spec.weight_density)
        if key not in self._pattern_cache:
            rng = make_rng(spec.weight_seed)
            self._pattern_cache[key] = generate_sparse_pattern(
                spec.rows, spec.cols, spec.weight_density, rng
            )
        return self._pattern_cache[key]

    def activations(self, spec: LayerSpec) -> np.ndarray:
        """The (cached) input activation vector for ``spec``."""
        key = (spec.name, spec.cols, spec.rows, spec.activation_density)
        if key not in self._activation_cache:
            rng = make_rng(spec.activation_seed)
            self._activation_cache[key] = generate_activations(
                spec.cols, spec.activation_density, rng
            )
        return self._activation_cache[key]

    def clear_cache(self) -> None:
        """Drop all cached patterns, activation vectors and workloads."""
        self._pattern_cache.clear()
        self._activation_cache.clear()
        self._workload_cache.clear()

    # -- workload assembly ------------------------------------------------------------

    def build(self, spec: LayerSpec, num_pes: int) -> LayerWorkload:
        """Assemble the cycle-model workload for ``spec`` on ``num_pes`` PEs.

        Results are cached per (layer, PE count) pair: the design-space sweeps
        revisit the same combination many times (e.g. Figures 11 and 13 share
        every point of the PE sweep).
        """
        if num_pes < 1:
            raise WorkloadError(f"num_pes must be >= 1, got {num_pes}")
        cache_key = (
            spec.name, spec.rows, spec.cols, spec.weight_density, spec.activation_density,
            int(num_pes),
        )
        if cache_key in self._workload_cache:
            return self._workload_cache[cache_key]
        pattern = self.pattern(spec)
        activations = self.activations(spec)
        counts, padding = interleaved_entry_counts(
            pattern.row_indices,
            pattern.col_ptr,
            num_rows=spec.rows,
            num_pes=num_pes,
            max_run=self.max_run,
        )
        nonzero_columns = np.nonzero(activations)[0]
        work = counts[:, nonzero_columns]
        padding_work = padding[:, nonzero_columns]
        total_entries = int(counts.sum())
        total_padding = int(padding.sum())
        workload = LayerWorkload(
            spec=spec,
            num_pes=num_pes,
            work=work,
            padding_work=padding_work,
            nonzero_columns=nonzero_columns,
            total_entries=total_entries,
            total_padding=total_padding,
            true_nonzeros=total_entries - total_padding,
        )
        self._workload_cache[cache_key] = workload
        return workload
