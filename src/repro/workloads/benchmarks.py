"""The nine benchmark layers of Table III.

Each benchmark is a fully-connected layer from a compressed network:

========  =============  =======  ======  =========================================
Name      input, output  Weight%  Act%    Source network
========  =============  =======  ======  =========================================
Alex-6    9216 -> 4096   9%       35.1%   AlexNet FC6 (image classification)
Alex-7    4096 -> 4096   9%       35.3%   AlexNet FC7
Alex-8    4096 -> 1000   25%      37.5%   AlexNet FC8
VGG-6     25088 -> 4096  4%       18.3%   VGG-16 FC6 (classification/detection)
VGG-7     4096 -> 4096   4%       37.5%   VGG-16 FC7
VGG-8     4096 -> 1000   23%      41.1%   VGG-16 FC8
NT-We     4096 -> 600    10%      100%    NeuralTalk word embedding
NT-Wd     600 -> 8791    11%      100%    NeuralTalk word decoder
NT-LSTM   1201 -> 2400   10%      100%    NeuralTalk LSTM (stacked gate matrices)
========  =============  =======  ======  =========================================

``Weight%`` is the density of the pruned weight matrix and ``Act%`` the
density of the input activation vector; their product is approximately the
``FLOP%`` column of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError
from repro.utils.rng import derive_seed

__all__ = ["LayerSpec", "ALL_BENCHMARKS", "BENCHMARK_NAMES", "get_benchmark", "scaled_benchmarks"]

#: Base seed from which every benchmark derives its deterministic pattern.
BASE_SEED = 20160618


@dataclass(frozen=True)
class LayerSpec:
    """Statistical description of one benchmark FC layer.

    Attributes:
        name: benchmark name as used in the paper's figures.
        input_size: length of the input activation vector (matrix columns).
        output_size: length of the output activation vector (matrix rows).
        weight_density: fraction of non-zero weights after pruning.
        activation_density: fraction of non-zero input activations.
        description: source network / role of the layer.
        seed: RNG seed for the synthetic sparsity pattern.
    """

    name: str
    input_size: int
    output_size: int
    weight_density: float
    activation_density: float
    description: str = ""
    seed: int = BASE_SEED

    def __post_init__(self) -> None:
        if self.input_size < 1 or self.output_size < 1:
            raise WorkloadError(f"{self.name}: layer sizes must be >= 1")
        if not 0.0 < self.weight_density <= 1.0:
            raise WorkloadError(f"{self.name}: weight_density must be in (0, 1]")
        if not 0.0 < self.activation_density <= 1.0:
            raise WorkloadError(f"{self.name}: activation_density must be in (0, 1]")

    # -- matrix view ------------------------------------------------------------

    @property
    def rows(self) -> int:
        """Weight-matrix rows (output size)."""
        return self.output_size

    @property
    def cols(self) -> int:
        """Weight-matrix columns (input size)."""
        return self.input_size

    @property
    def dense_weights(self) -> int:
        """Number of weights in the uncompressed matrix."""
        return self.rows * self.cols

    @property
    def nonzero_weights(self) -> int:
        """Expected number of surviving weights after pruning."""
        return int(round(self.dense_weights * self.weight_density))

    @property
    def dense_macs(self) -> int:
        """Multiply-accumulates of the dense computation."""
        return self.dense_weights

    @property
    def dense_flops(self) -> int:
        """FLOPs of the dense computation (2 per weight)."""
        return 2 * self.dense_weights

    @property
    def expected_work(self) -> float:
        """Expected MACs on the compressed network (weights x activations)."""
        return self.dense_weights * self.weight_density * self.activation_density

    @property
    def flop_fraction(self) -> float:
        """The paper's FLOP% column: work remaining after both sparsities."""
        return self.weight_density * self.activation_density

    @property
    def weight_seed(self) -> int:
        """Seed used for the weight sparsity pattern."""
        return derive_seed(self.seed, self.name, "weights")

    @property
    def activation_seed(self) -> int:
        """Seed used for the input activation vector."""
        return derive_seed(self.seed, self.name, "activations")

    # -- derived workloads ----------------------------------------------------------

    def scaled(self, factor: float, min_size: int = 16) -> "LayerSpec":
        """A proportionally smaller version of this layer (for fast tests).

        Sizes are divided by ``factor`` (at least ``min_size``); densities are
        unchanged, so padding-zero and load-balance behaviour stays
        representative.
        """
        if factor <= 0:
            raise WorkloadError(f"scale factor must be > 0, got {factor}")
        return replace(
            self,
            name=f"{self.name}-x{factor:g}",
            input_size=max(min_size, int(round(self.input_size / factor))),
            output_size=max(min_size, int(round(self.output_size / factor))),
        )


#: Table III of the paper as LayerSpec records.
ALL_BENCHMARKS: dict[str, LayerSpec] = {
    spec.name: spec
    for spec in (
        LayerSpec(
            name="Alex-6",
            input_size=9216,
            output_size=4096,
            weight_density=0.09,
            activation_density=0.351,
            description="Compressed AlexNet FC6 for large scale image classification",
        ),
        LayerSpec(
            name="Alex-7",
            input_size=4096,
            output_size=4096,
            weight_density=0.09,
            activation_density=0.353,
            description="Compressed AlexNet FC7 for large scale image classification",
        ),
        LayerSpec(
            name="Alex-8",
            input_size=4096,
            output_size=1000,
            weight_density=0.25,
            activation_density=0.375,
            description="Compressed AlexNet FC8 for large scale image classification",
        ),
        LayerSpec(
            name="VGG-6",
            input_size=25088,
            output_size=4096,
            weight_density=0.04,
            activation_density=0.183,
            description="Compressed VGG-16 FC6 for image classification and object detection",
        ),
        LayerSpec(
            name="VGG-7",
            input_size=4096,
            output_size=4096,
            weight_density=0.04,
            activation_density=0.375,
            description="Compressed VGG-16 FC7 for image classification and object detection",
        ),
        LayerSpec(
            name="VGG-8",
            input_size=4096,
            output_size=1000,
            weight_density=0.23,
            activation_density=0.411,
            description="Compressed VGG-16 FC8 for image classification and object detection",
        ),
        LayerSpec(
            name="NT-We",
            input_size=4096,
            output_size=600,
            weight_density=0.10,
            activation_density=1.0,
            description="Compressed NeuralTalk word embedding (RNN/LSTM image captioning)",
        ),
        LayerSpec(
            name="NT-Wd",
            input_size=600,
            output_size=8791,
            weight_density=0.11,
            activation_density=1.0,
            description="Compressed NeuralTalk word decoder (RNN/LSTM image captioning)",
        ),
        LayerSpec(
            name="NT-LSTM",
            input_size=1201,
            output_size=2400,
            weight_density=0.10,
            activation_density=1.0,
            description="Compressed NeuralTalk LSTM gate matrices (image captioning)",
        ),
    )
}

#: Benchmark names in the order the paper's figures use.
BENCHMARK_NAMES: tuple[str, ...] = (
    "Alex-6",
    "Alex-7",
    "Alex-8",
    "VGG-6",
    "VGG-7",
    "VGG-8",
    "NT-We",
    "NT-Wd",
    "NT-LSTM",
)


def get_benchmark(name: str) -> LayerSpec:
    """Look up a benchmark layer by its paper name."""
    try:
        return ALL_BENCHMARKS[name]
    except KeyError as error:
        raise WorkloadError(
            f"unknown benchmark {name!r}; expected one of {sorted(ALL_BENCHMARKS)}"
        ) from error


def scaled_benchmarks(factor: float, min_size: int = 16) -> dict[str, LayerSpec]:
    """Proportionally scaled-down versions of all nine benchmarks."""
    return {name: ALL_BENCHMARKS[name].scaled(factor, min_size) for name in BENCHMARK_NAMES}


def resolve_spec(benchmark: "str | LayerSpec") -> LayerSpec:
    """Accept either a paper benchmark name or an explicit :class:`LayerSpec`.

    The analysis functions take this union so that the full-size Table III
    layers and scaled-down test layers can flow through the same code.
    """
    if isinstance(benchmark, LayerSpec):
        return benchmark
    return get_benchmark(benchmark)
