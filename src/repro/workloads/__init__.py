"""Benchmark workloads: the nine Table III layers and synthetic generators.

The paper evaluates EIE on nine fully-connected layers taken from compressed
AlexNet, VGG-16 and NeuralTalk models.  Because the trained/pruned weights
themselves are not needed to reproduce the accelerator's behaviour — only the
layer shapes, weight densities and activation densities matter — this package
describes each benchmark as a :class:`~repro.workloads.benchmarks.LayerSpec`
and generates deterministic synthetic sparsity patterns with those statistics
(see DESIGN.md, 'Substitutions').
"""

from repro.workloads.benchmarks import (
    ALL_BENCHMARKS,
    BENCHMARK_NAMES,
    LayerSpec,
    get_benchmark,
    scaled_benchmarks,
)
from repro.workloads.generator import LayerWorkload, WorkloadBuilder
from repro.workloads.models import (
    build_alexnet_fc_network,
    build_neuraltalk_lstm,
    build_vgg_fc_network,
    random_dense_layer,
)
from repro.workloads.synthetic import (
    SparsePattern,
    generate_activations,
    generate_dense_weights,
    generate_sparse_pattern,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARK_NAMES",
    "LayerSpec",
    "LayerWorkload",
    "SparsePattern",
    "WorkloadBuilder",
    "build_alexnet_fc_network",
    "build_neuraltalk_lstm",
    "build_vgg_fc_network",
    "generate_activations",
    "generate_dense_weights",
    "generate_sparse_pattern",
    "get_benchmark",
    "random_dense_layer",
    "scaled_benchmarks",
]
