"""Synthetic sparse matrices and activation vectors.

The paper notes (Section VII-A) that both the weight and the activation
sparsity of its workloads are approximately randomly distributed, so
Bernoulli-sampled patterns with the Table III densities exercise the same
code paths and produce the same load-balance and padding-zero behaviour as
the real pruned networks.  All generation is deterministic given the seed in
the :class:`~repro.workloads.benchmarks.LayerSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import make_rng
from repro.workloads.benchmarks import LayerSpec

__all__ = [
    "SparsePattern",
    "generate_sparse_pattern",
    "generate_activations",
    "generate_dense_weights",
]


@dataclass
class SparsePattern:
    """Column-compressed description of a sparsity pattern (no values).

    Attributes:
        row_indices: row index of every non-zero, grouped by column with rows
            sorted ascending within each column.
        col_ptr: length ``num_cols + 1`` offsets into ``row_indices``.
        shape: dense ``(rows, cols)``.
    """

    row_indices: np.ndarray
    col_ptr: np.ndarray
    shape: tuple[int, int]

    @property
    def rows(self) -> int:
        """Dense row count."""
        return self.shape[0]

    @property
    def cols(self) -> int:
        """Dense column count."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of non-zero positions."""
        return int(self.row_indices.shape[0])

    @property
    def density(self) -> float:
        """Fraction of non-zero positions."""
        total = self.rows * self.cols
        return self.nnz / total if total else 0.0

    def column_nnz(self) -> np.ndarray:
        """Non-zero count per column."""
        return np.diff(self.col_ptr)

    def column_rows(self, column: int) -> np.ndarray:
        """Row indices of the non-zeros in ``column``."""
        if not 0 <= column < self.cols:
            raise WorkloadError(f"column {column} out of range [0, {self.cols})")
        start, end = self.col_ptr[column], self.col_ptr[column + 1]
        return self.row_indices[start:end]

    def to_dense_mask(self) -> np.ndarray:
        """Boolean dense mask (only sensible for small patterns)."""
        mask = np.zeros(self.shape, dtype=bool)
        columns = np.repeat(np.arange(self.cols), self.column_nnz())
        mask[self.row_indices, columns] = True
        return mask


def generate_sparse_pattern(
    rows: int,
    cols: int,
    density: float,
    rng: np.random.Generator | int | None = None,
    column_block: int = 256,
) -> SparsePattern:
    """Sample a Bernoulli(``density``) sparsity pattern of shape (rows, cols).

    Columns are generated in blocks to bound peak memory for the large VGG-6
    matrix (25088 x 4096).
    """
    if rows < 1 or cols < 1:
        raise WorkloadError("rows and cols must be >= 1")
    if not 0.0 < density <= 1.0:
        raise WorkloadError(f"density must be in (0, 1], got {density}")
    rng = make_rng(rng)
    chunks: list[np.ndarray] = []
    column_counts = np.zeros(cols, dtype=np.int64)
    transposed = np.empty((min(column_block, cols), rows), dtype=bool)
    for start in range(0, cols, column_block):
        end = min(start + column_block, cols)
        block = rng.random((rows, end - start)) < density
        # A contiguous transpose copy (into a buffer reused across blocks)
        # groups the non-zeros by column with rows ascending — exactly the
        # ordering SparsePattern requires — and makes the non-zero scan run
        # over contiguous memory.
        block_t = transposed[: end - start]
        np.copyto(block_t, block.T)
        flat = np.flatnonzero(block_t)
        column_offsets, row_ids = np.divmod(flat, rows)
        chunks.append(row_ids)
        column_counts[start:end] = np.bincount(column_offsets, minlength=end - start)
    row_indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    col_ptr = np.zeros(cols + 1, dtype=np.int64)
    np.cumsum(column_counts, out=col_ptr[1:])
    return SparsePattern(row_indices=row_indices, col_ptr=col_ptr, shape=(rows, cols))


def generate_activations(
    size: int,
    density: float,
    rng: np.random.Generator | int | None = None,
    distribution: str = "uniform",
) -> np.ndarray:
    """Sample an activation vector with roughly ``density`` non-zeros.

    Non-zero values are positive (post-ReLU activations), drawn either
    uniformly from (0, 1] or from the positive half of a normal distribution.
    """
    if size < 1:
        raise WorkloadError(f"size must be >= 1, got {size}")
    if not 0.0 < density <= 1.0:
        raise WorkloadError(f"density must be in (0, 1], got {density}")
    rng = make_rng(rng)
    mask = rng.random(size) < density
    if not mask.any():
        mask[rng.integers(0, size)] = True
    if distribution == "uniform":
        values = rng.uniform(0.1, 1.0, size=size)
    elif distribution == "normal":
        values = np.abs(rng.normal(0.0, 1.0, size=size)) + 1e-3
    else:
        raise WorkloadError(f"unknown distribution {distribution!r}")
    return np.where(mask, values, 0.0)


def generate_dense_weights(
    spec: LayerSpec,
    rng: np.random.Generator | int | None = None,
    scale: float = 0.1,
) -> np.ndarray:
    """Materialise a dense weight matrix with the spec's sparsity pattern.

    Only intended for layers small enough to hold densely (tests, examples,
    and the scaled-down benchmark variants); values are Gaussian.
    """
    rng = make_rng(spec.weight_seed if rng is None else rng)
    pattern = generate_sparse_pattern(spec.rows, spec.cols, spec.weight_density, rng)
    weights = np.zeros((spec.rows, spec.cols), dtype=np.float64)
    columns = np.repeat(np.arange(spec.cols), pattern.column_nnz())
    weights[pattern.row_indices, columns] = rng.normal(0.0, scale, size=pattern.nnz)
    # Guarantee the matrix is not all-zero even at tiny sizes/densities.
    if not np.count_nonzero(weights):
        weights[0, 0] = scale
    return weights
