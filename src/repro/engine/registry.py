"""String-keyed registry of simulation backends.

The registry is the one place new EIE backends plug in: implement a
:class:`~repro.engine.base.SimulationEngine`, decorate it with
:func:`register_engine` (or call :meth:`EngineRegistry.register`), and every
consumer of the seam — the accelerator facade, the CLI ``run`` command, the
analysis sweeps and the benchmark harness — can select it by name.

The built-in backends are registered when :mod:`repro.engine` is imported:

============ ==============================================================
Key          Backend
============ ==============================================================
functional   bit-exact value simulation (:class:`FunctionalEIE` adapter)
cycle        broadcast/FIFO timing model (:class:`CycleAccurateEIE` adapter)
cycle-native the same timing model on the JIT kernel tier
             (:mod:`repro.kernels`; falls back to numpy when unusable)
rtl          two-phase RTL micro-simulation (:mod:`repro.core.rtl` adapter)
============ ==============================================================
"""

from __future__ import annotations

from typing import TypeVar

from repro.core.config import EIEConfig
from repro.engine.base import SimulationEngine
from repro.errors import ConfigurationError

__all__ = ["EngineRegistry", "register_engine"]

E = TypeVar("E", bound=type[SimulationEngine])


class EngineRegistry:
    """Maps short string keys (``"functional"``, ``"cycle"``, ...) to engines.

    The class itself is the default global registry; all methods are
    classmethods so callers can write ``EngineRegistry.get("cycle")`` without
    holding an instance.
    """

    _engines: dict[str, type[SimulationEngine]] = {}

    @classmethod
    def register(cls, engine_cls: type[SimulationEngine]) -> type[SimulationEngine]:
        """Register an engine class under its ``name`` attribute."""
        name = getattr(engine_cls, "name", "")
        if not name:
            raise ConfigurationError(
                f"engine class {engine_cls.__name__} must define a non-empty 'name'"
            )
        existing = cls._engines.get(name)
        if existing is not None and existing is not engine_cls:
            raise ConfigurationError(
                f"engine name {name!r} is already registered to {existing.__name__}"
            )
        cls._engines[name] = engine_cls
        return engine_cls

    @classmethod
    def unregister(cls, name: str) -> None:
        """Remove an engine (mainly for tests of custom backends)."""
        cls._engines.pop(name, None)

    @classmethod
    def get(cls, name: str) -> type[SimulationEngine]:
        """The engine class registered under ``name``."""
        try:
            return cls._engines[name]
        except KeyError:
            known = ", ".join(sorted(cls._engines)) or "<none>"
            raise ConfigurationError(
                f"unknown simulation engine {name!r}; registered engines: {known}"
            ) from None

    @classmethod
    def create(cls, name: str, config: EIEConfig | None = None) -> SimulationEngine:
        """Instantiate the engine registered under ``name`` for ``config``."""
        return cls.get(name)(config)

    @classmethod
    def names(cls) -> tuple[str, ...]:
        """All registered engine names, sorted."""
        return tuple(sorted(cls._engines))


def register_engine(engine_cls: E) -> E:
    """Class decorator registering ``engine_cls`` with :class:`EngineRegistry`."""
    EngineRegistry.register(engine_cls)
    return engine_cls
