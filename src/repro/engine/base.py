"""The simulation-engine seam: one protocol for every EIE backend.

Historically the repo exposed three disjoint entry points to "run a layer on
EIE" — :class:`~repro.core.functional.FunctionalEIE` (bit-exact values),
:class:`~repro.core.cycle_model.CycleAccurateEIE` (timing) and the RTL kernel
under :mod:`repro.core.rtl` — and every caller wired them up by hand.  This
module defines the single seam they now sit behind:

* :class:`SimulationEngine` — ``prepare(layer) -> PreparedLayer`` performs all
  per-layer work (building simulators, extracting work matrices) once, and
  ``run(prepared, activations) -> EngineResult`` executes one or many input
  vectors against the prepared state;
* :class:`PreparedLayer` — the engine-specific prepared form of a layer,
  cacheable across runs and (for the cycle engine) across configuration
  sweep points;
* :class:`EngineResult` — a uniform result record: stacked batch outputs plus
  per-item functional results and/or cycle statistics, depending on what the
  backend models.

``run`` accepts either a single activation vector of length ``n_in`` or a
``(batch, n_in)`` matrix; a batched run is defined to be element-wise
identical to a loop of single-vector runs (the parity test suite enforces
this).  Backends register themselves with
:class:`~repro.engine.registry.EngineRegistry` under a short string key.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.core.config import EIEConfig
from repro.core.cycle_model import CycleStats
from repro.core.functional import FunctionalResult
from repro.errors import SimulationError

__all__ = ["PreparedLayer", "EngineResult", "SimulationEngine"]


@dataclass
class PreparedLayer:
    """A layer transformed into one engine's ready-to-run form.

    Attributes:
        engine: registry name of the engine that prepared this layer.
        num_pes: PE count the layer is interleaved/prepared for.
        rows: output size of the layer.
        cols: input size of the layer (length of one activation vector).
        activation_name: non-linearity applied after the M x V.
        payload: engine-specific prepared state (simulator instances, work
            matrices, ...); opaque to callers.
        source: the object that was prepared (``CompressedLayer`` or
            ``LayerWorkload``), kept for re-preparation and diagnostics.
        cache_token: hashable token identifying the preparation inputs the
            payload depends on.  :class:`~repro.engine.session.Session` keys
            its prepared cache on it, and ``run`` rejects a prepared layer
            whose (non-empty) token does not match the engine's own
            ``prepare_token()`` — so state baked in at prepare time (e.g. a
            fixed-point format or SRAM geometry) cannot silently leak into an
            incompatible configuration.  An empty token opts out of the
            check.
    """

    engine: str
    num_pes: int
    rows: int
    cols: int
    activation_name: str
    payload: Any
    source: Any
    cache_token: tuple = ()


@dataclass
class EngineResult:
    """Outcome of running one (possibly batched) input through an engine.

    Attributes:
        engine: registry name of the engine that produced the result.
        batch_size: number of activation vectors executed.
        batched: whether the caller passed a matrix (``True``) or one vector.
        outputs: ``(batch, rows)`` output activations, or ``None`` for
            engines that model timing only (the ``"cycle"`` backend).
        cycles: per-item timing statistics (empty for value-only backends).
        functional: per-item functional results with access counters (empty
            for timing-only backends).
        extra: engine-specific additions (e.g. per-PE RTL run records).
    """

    engine: str
    batch_size: int
    batched: bool
    outputs: np.ndarray | None = None
    cycles: tuple[CycleStats, ...] = ()
    functional: tuple[FunctionalResult, ...] = ()
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def output(self) -> np.ndarray:
        """The first (or only) output vector; errors on timing-only results."""
        if self.outputs is None:
            raise SimulationError(
                f"engine {self.engine!r} models timing only and produces no output values"
            )
        return self.outputs[0]

    @property
    def stats(self) -> CycleStats:
        """The first (or only) cycle-statistics record."""
        if not self.cycles:
            raise SimulationError(f"engine {self.engine!r} does not model timing")
        return self.cycles[0]


class SimulationEngine(abc.ABC):
    """Base class of every EIE simulation backend.

    Subclasses set the class attribute ``name`` (their registry key) and
    implement :meth:`prepare` and :meth:`run`.  An engine instance is bound to
    one :class:`~repro.core.config.EIEConfig`; sweeps instantiate one engine
    per configuration point and share :class:`PreparedLayer` objects where the
    ``cache_token`` allows.
    """

    #: Registry key of the backend (e.g. ``"functional"``).
    name: ClassVar[str] = ""

    #: Compute tier the engine runs on: ``"numpy"`` for the pure-array
    #: implementations, ``"native"`` for the JIT kernel tier
    #: (:mod:`repro.kernels`).  Surfaced by ``repro engine list`` and the
    #: session cache statistics.
    backend: ClassVar[str] = "numpy"

    def __init__(self, config: EIEConfig | None = None) -> None:
        self.config = config or EIEConfig()

    @abc.abstractmethod
    def prepare(self, layer: Any) -> PreparedLayer:
        """Do all per-layer work once and return the prepared form."""

    @abc.abstractmethod
    def run(self, prepared: PreparedLayer, activations: np.ndarray | None = None) -> EngineResult:
        """Execute one vector or a ``(batch, n_in)`` matrix of activations."""

    # -- shared helpers ---------------------------------------------------------

    def prepare_token(self) -> tuple:
        """Configuration facets the prepared payload depends on.

        The default is the full configuration (always safe); engines whose
        payload depends on less override this so sessions can share prepared
        layers across sweep points (e.g. the cycle engine's work matrices only
        depend on the PE count, not on FIFO depth or clock).
        """
        return (self.name, self.config)

    def _check_prepared(self, prepared: PreparedLayer) -> None:
        if prepared.engine != self.name:
            raise SimulationError(
                f"prepared layer belongs to engine {prepared.engine!r}, not {self.name!r}"
            )
        if prepared.num_pes != self.config.num_pes:
            raise SimulationError(
                f"prepared layer targets {prepared.num_pes} PEs but the engine "
                f"configuration has {self.config.num_pes}"
            )
        if prepared.cache_token and prepared.cache_token != self.prepare_token():
            raise SimulationError(
                f"prepared layer was built under an incompatible configuration "
                f"(token {prepared.cache_token!r} != {self.prepare_token()!r}); "
                f"re-prepare the layer with this engine"
            )

    def _as_batch(
        self, prepared: PreparedLayer, activations: np.ndarray
    ) -> tuple[np.ndarray, bool]:
        """Normalise ``activations`` to ``(batch, n_in)`` float64.

        Returns the matrix and whether the input was already batched.
        """
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim == 1:
            matrix, batched = activations[np.newaxis, :], False
        elif activations.ndim == 2:
            matrix, batched = activations, True
        else:
            raise SimulationError(
                f"activations must be a vector or (batch, n_in) matrix, "
                f"got shape {activations.shape}"
            )
        if matrix.shape[1] != prepared.cols:
            raise SimulationError(
                f"activation length {matrix.shape[1]} does not match layer "
                f"input size {prepared.cols}"
            )
        if matrix.shape[0] == 0:
            raise SimulationError("activation batch must contain at least one vector")
        return matrix, batched
