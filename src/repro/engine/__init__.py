"""repro.engine: the unified simulation-engine layer.

One seam in front of every EIE backend (see ``docs/ARCHITECTURE.md``):

* :class:`SimulationEngine` / :class:`PreparedLayer` / :class:`EngineResult`
  — the two-method protocol every backend implements
  (:mod:`repro.engine.base`);
* :class:`EngineRegistry` — string-keyed backend registry, pre-populated
  with ``"functional"``, ``"cycle"`` and ``"rtl"``
  (:mod:`repro.engine.registry`, :mod:`repro.engine.adapters`);
* :class:`Session` — shared compression / preparation / engine caches so
  sweeps compress and prepare each layer once
  (:mod:`repro.engine.session`).
"""

from repro.engine.adapters import (
    CycleEngine,
    FunctionalEngine,
    NativeCycleEngine,
    RTLEngine,
)
from repro.engine.base import EngineResult, PreparedLayer, SimulationEngine
from repro.engine.registry import EngineRegistry, register_engine
from repro.engine.session import Session

__all__ = [
    "CycleEngine",
    "EngineRegistry",
    "EngineResult",
    "FunctionalEngine",
    "NativeCycleEngine",
    "PreparedLayer",
    "RTLEngine",
    "Session",
    "SimulationEngine",
    "register_engine",
]
